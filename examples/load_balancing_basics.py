#!/usr/bin/env python
"""The load-balancing view: why early stopping reveals clusters.

The heart of the paper is an observation about the *early* behaviour of load
balancing (Lemma 4.1): run the 1-dimensional random-matching process from a
single node's unit load and, after ``T = Θ(log n / (1 - λ_{k+1}))`` rounds,
the load is almost uniform **inside the starting node's cluster** but has not
yet leaked to the rest of the graph; only much later (at the global mixing
time) does it flatten everywhere.

This example prints, round by round, the distance of the load vector to the
cluster indicator ``χ_{S_j}`` and to the global uniform vector, showing the
"plateau" the algorithm exploits.

Run with::

    python examples/load_balancing_basics.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import cycle_of_cliques, theoretical_round_count
from repro.loadbalancing import LoadBalancingProcess


def main() -> None:
    instance = cycle_of_cliques(k=4, clique_size=25, seed=0)
    graph, truth = instance.graph, instance.partition
    start = 0
    cluster = truth.cluster(truth.label_of(start))
    chi_cluster = np.zeros(graph.n)
    chi_cluster[cluster] = 1.0 / cluster.size
    uniform = np.full(graph.n, 1.0 / graph.n)

    t_paper = theoretical_round_count(graph, truth.k)
    y0 = np.zeros(graph.n)
    y0[start] = 1.0
    process = LoadBalancingProcess(graph, y0, seed=3)

    print(f"instance: {graph};  paper round count T = {t_paper}")
    print(f"{'round':>6} {'‖y - χ_S‖':>12} {'‖y - uniform‖':>14}")
    checkpoints = sorted(set([0, 5, 10, 20, 40, t_paper, 2 * t_paper, 10 * t_paper, 50 * t_paper]))
    last = 0
    for checkpoint in checkpoints:
        process.run(checkpoint - last)
        last = checkpoint
        y = process.load
        print(
            f"{checkpoint:>6} {np.linalg.norm(y - chi_cluster):>12.4f} "
            f"{np.linalg.norm(y - uniform):>14.4f}"
        )
    print(
        "\nAt T the load matches the cluster indicator (small left column) while"
        "\nstill being far from globally uniform; much later the right column wins."
    )


if __name__ == "__main__":
    main()
