#!/usr/bin/env python
"""Tour of the extensions this repository adds beyond the paper.

Three engineering extensions are demonstrated on the same instance:

1. **Adaptive round count** — `AdaptiveClustering` stops when the labelling
   stabilises, so no eigenvalue estimate of ``λ_{k+1}`` is needed to pick T.
2. **Token-based messages** — `TokenClustering` replaces real-valued load by
   indivisible tokens (smaller messages); accuracy converges to the standard
   algorithm as the token budget grows.
3. **LFR-style instances** — heterogeneous degrees and community sizes, i.e.
   inputs *outside* the paper's assumptions, to see how gracefully the
   algorithm degrades.

Run with::

    python examples/extensions_tour.py
"""

from __future__ import annotations

from repro.core import (
    AdaptiveClustering,
    AlgorithmParameters,
    CentralizedClustering,
    TokenClustering,
)
from repro.evaluation import normalized_mutual_information
from repro.graphs import lfr_benchmark, ring_of_expanders


def main() -> None:
    instance = ring_of_expanders(k=3, cluster_size=40, d=8, seed=3)
    graph, truth = instance.graph, instance.partition
    oracle_params = AlgorithmParameters.from_instance(graph, truth)
    print(f"instance: {graph}; oracle T = {oracle_params.rounds}")

    # 1. Adaptive round count: only β is supplied.
    adaptive = AdaptiveClustering(graph, beta=truth.min_cluster_fraction(), seed=1).run()
    info = adaptive.diagnostics["adaptive"]
    print(
        f"adaptive  : error={adaptive.error_against(truth):.3f} "
        f"rounds={adaptive.rounds} (stopped early: {info.stopped_early})"
    )

    # 2. Token-based variant at several budgets vs the standard algorithm.
    standard = CentralizedClustering(graph, oracle_params, seed=1).run(keep_loads=False)
    print(f"standard  : error={standard.error_against(truth):.3f} rounds={standard.rounds}")
    for budget in (16, 128, 1024):
        tokens = TokenClustering(graph, oracle_params, tokens_per_seed=budget, seed=1).run()
        print(f"tokens({budget:>4}): error={tokens.error_against(truth):.3f}")

    # 3. An LFR instance: heterogeneous degrees and community sizes.
    lfr = lfr_benchmark(300, mu=0.08, average_degree=14, seed=5)
    lfr_params = AlgorithmParameters.from_instance(lfr.graph, lfr.partition)
    result = CentralizedClustering(lfr.graph, lfr_params, seed=2).run(keep_loads=False)
    nmi = normalized_mutual_information(result.partition, lfr.partition)
    print(
        f"LFR (mu=0.08, {lfr.partition.k} communities): "
        f"error={result.error_against(lfr.partition):.3f}  NMI={nmi:.3f}"
    )


if __name__ == "__main__":
    main()
