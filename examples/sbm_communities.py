#!/usr/bin/env python
"""Community detection on stochastic block models, against the baselines.

This is the workload the paper's introduction motivates — finding communities
in a network whose data is spread across sites — on the standard SBM test
bed.  The example sweeps the inter-community edge probability ``q`` (the
harder direction), runs the paper's algorithm and the baseline panel on the
same instances, and prints an accuracy/communication table.

Run with::

    python examples/sbm_communities.py
"""

from __future__ import annotations

from repro.baselines import AveragingDynamics, LabelPropagation, SpectralClustering
from repro.evaluation import (
    evaluate_baseline,
    evaluate_load_balancing_clustering,
    run_trials,
)
from repro.graphs import gap_parameter_upsilon, planted_partition


def main() -> None:
    n, k, p_in = 300, 3, 0.30
    q_values = [0.005, 0.02, 0.05]

    instances = []
    for q in q_values:
        instance = planted_partition(n, k, p_in, q, seed=hash(q) % 2**31, ensure_connected=True)
        upsilon = gap_parameter_upsilon(instance.graph, instance.partition)
        print(f"q={q:<6} generated {instance.graph}  Upsilon={upsilon:.2f}")
        instances.append(({"q": q}, instance))

    algorithms = {
        "load-balancing (ours)": evaluate_load_balancing_clustering(),
        "spectral": evaluate_baseline(SpectralClustering()),
        "averaging-dynamics": evaluate_baseline(AveragingDynamics()),
        "label-propagation": evaluate_baseline(LabelPropagation()),
    }
    result = run_trials(instances, algorithms, trials=3, base_seed=7)
    print()
    print(
        result.table(
            ["q", "algorithm"],
            ["q", "algorithm", "error", "ari", "nmi", "rounds", "trials"],
            title=f"SBM: n={n}, k={k}, p_in={p_in}, sweep over q",
        )
    )


if __name__ == "__main__":
    main()
