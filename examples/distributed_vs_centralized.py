#!/usr/bin/env python
"""Message-passing implementation vs. the centralised matrix implementation.

Section 3.1 of the paper gives the algorithm as a message-passing protocol;
Section 3.2 re-reads it as a multi-dimensional load-balancing process.  This
example runs both implementations on the same instance and shows:

* both recover the planted partition,
* the distributed run's *exact* communication accounting (messages, words,
  matched edges per round) versus the Theorem 1.1(2) bound ``O(T·n·k·log k)``,
* that at most ``⌊n/2⌋`` edges are matched in any round.

Run with::

    python examples/distributed_vs_centralized.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AlgorithmParameters, CentralizedClustering, DistributedClustering
from repro.graphs import ring_of_expanders


def main() -> None:
    instance = ring_of_expanders(k=3, cluster_size=40, d=8, seed=0)
    graph, truth = instance.graph, instance.partition
    params = AlgorithmParameters.from_instance(graph, truth)
    print(f"instance: {graph}")
    print(f"parameters: T={params.rounds}, s̄={params.num_seeding_trials}, β={params.beta:.3f}")

    central = CentralizedClustering(graph, params, seed=11).run()
    print(
        f"\ncentralised : error={central.error_against(truth):.3f} "
        f"seeds={central.num_seeds} rounds={central.rounds}"
    )

    distributed = DistributedClustering(graph, params, seed=11).run()
    comm = distributed.communication
    print(
        f"distributed : error={distributed.error_against(truth):.3f} "
        f"seeds={distributed.num_seeds} rounds={distributed.rounds}"
    )
    print(
        f"communication: {comm.total_messages} messages, {comm.total_words} words "
        f"({comm.total_words / graph.n:.1f} words per node)"
    )

    k = truth.k
    bound = params.rounds * graph.n * k * max(np.log2(k), 1.0)
    print(f"Theorem 1.1(2) bound T·n·k·log k = {bound:,.0f} words (measured is well below)")

    matched = distributed.diagnostics["matched_edges_per_round"]
    print(
        f"matched edges per round: max={max(matched)} "
        f"(paper bound ⌊n/2⌋ = {graph.n // 2}), mean={np.mean(matched):.1f}"
    )


if __name__ == "__main__":
    main()
