"""Clustering-as-a-service, end to end — also the CI service smoke test.

Boots the real thing, not mocks: a ``repro serve`` subprocess on an
ephemeral port (``--port 0`` prints the bound address), then drives it
through :class:`repro.service.client.ServiceClient` exactly the way a
remote consumer would:

1. health-check the REST frontend,
2. submit a small sbm sweep with ``keep_labels`` on,
3. poll the job to completion (the serve process's worker threads claim
   and run the digest-addressed tasks),
4. query the paper's primitive — "which cluster is node v in?" — from
   the mmap label store the workers produced, and cross-check the
   answers against a direct local :func:`repro.service.query_labels`
   read of the same store.

Run it::

    python examples/service_smoke.py

Exit status 0 means the whole loop (HTTP → job store → worker → label
store → HTTP) works.
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.evaluation import trial_seed
from repro.service import list_label_stores, query_labels
from repro.service.client import ServiceClient

SPEC = {
    "family": "sbm",
    "sizes": [90, 120],
    "k": 3,
    "p_in": 0.4,
    "p_out": 0.02,
    "algorithms": ["ours"],
    "trials": 2,
    "seed": 0,
    "keep_labels": True,
}


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    cache_dir = workdir / "cache"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--db",
            str(workdir / "jobs.sqlite"),
            "--cache-dir",
            str(cache_dir),
            "--port",
            "0",
            "--workers",
            "2",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        # The serve process prints its bound (ephemeral) address first.
        line = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, f"no bound address in serve output: {line!r}"
        client = ServiceClient(f"http://127.0.0.1:{match.group(1)}")

        assert client.health()["status"] == "ok"
        job_id = client.submit(SPEC)["job"]
        status = client.wait(job_id, timeout=120.0)
        print(f"job {job_id}: {status['state']} ({status['done']}/{status['tasks']} tasks)")
        records = client.records(job_id)
        assert len(records) == len(SPEC["sizes"]) * SPEC["trials"], records
        assert all("_labels" not in r["values"] for r in records)

        stores = list_label_stores(cache_dir)
        assert len(stores) == len(SPEC["sizes"]), [s.path.name for s in stores]
        seed = trial_seed("ours", 0, SPEC["seed"])
        for store in stores:
            nodes = [0, 1, 17]
            via_http = client.query(store.digest, nodes, algorithm="ours", seed=seed)
            local = query_labels(
                cache_dir, store.digest, nodes, algorithm="ours", seed=seed
            ).tolist()
            assert via_http == local, (via_http, local)
            print(f"digest {store.digest}: nodes {nodes} -> clusters {via_http}")
        print("service smoke ok")
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
