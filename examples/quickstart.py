#!/usr/bin/env python
"""Quickstart: cluster a well-clustered graph with the paper's algorithm.

Generates a small "cycle of cliques" instance (four cliques of 25 nodes
joined in a ring by single edges), derives the paper's parameters from the
graph spectrum, runs the load-balancing clustering algorithm and reports the
recovered partition against the planted ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import AlgorithmParameters, CentralizedClustering
from repro.evaluation import clustering_report
from repro.graphs import analyse_cluster_structure, cycle_of_cliques


def main() -> None:
    # 1. Generate a well-clustered instance with known ground truth.
    instance = cycle_of_cliques(k=4, clique_size=25, seed=0)
    graph, truth = instance.graph, instance.partition
    print(f"instance: {graph}")

    # 2. Inspect the structure the paper's assumptions talk about.
    structure = analyse_cluster_structure(graph, truth)
    print(
        f"lambda_k={structure.lambda_k:.3f}  lambda_k+1={structure.lambda_k_plus_1:.3f}  "
        f"rho(k)={structure.rho_k:.4f}  Upsilon={structure.upsilon:.1f}  T={structure.rounds_T}"
    )

    # 3. Derive parameters (beta from the true balance, T from the spectrum)
    #    and run the algorithm.
    params = AlgorithmParameters.from_instance(graph, truth)
    result = CentralizedClustering(graph, params, seed=1).run()
    print(
        f"seeds={result.num_seeds}  rounds={result.rounds}  "
        f"clusters found={result.num_clusters_found}  unlabelled={result.num_unlabelled}"
    )

    # 4. Score against the planted partition.
    report = clustering_report(result.partition, truth)
    print(
        f"misclassified={int(report['misclassified'])} / {graph.n}  "
        f"error={report['error']:.3f}  ARI={report['ari']:.3f}  NMI={report['nmi']:.3f}"
    )


if __name__ == "__main__":
    main()
