"""Cached, multi-process experiment sweeps, end to end.

The experiment layer treats parallelism and instance caching as pure
performance knobs: a sweep run serially with fresh instances, or across
eight worker processes against a warm npz cache, produces **bit-identical**
trial records.  This walk-through demonstrates all the pieces:

1. instance factories routed through :func:`repro.graphs.cached_instance`,
2. :func:`repro.evaluation.sweep` threading the cache directory,
3. :func:`repro.evaluation.run_trials` with the serial and the process
   executors, and
4. the parity check that makes the claim above concrete.

Run it::

    python examples/parallel_sweeps.py

(Equivalent CLI: ``python -m repro sweep sbm --sizes 300 600 --k 3
--trials 4 --workers 4 --cache-dir .instance-cache``.)
"""

from __future__ import annotations

import tempfile
import time

from repro.baselines import SpectralClustering
from repro.evaluation import (
    evaluate_baseline,
    evaluate_distributed_clustering,
    run_trials,
    sweep,
)
from repro.graphs import cached_instance, planted_partition


def make_instance(n: int, cache_dir: str | None = None):
    """Instance factory: a planted partition keyed by its own size.

    ``cached_instance`` makes the second sweep over the same sizes re-load
    finished CSR arrays (~100 ms at n = 10⁶) instead of regenerating.
    """
    return cached_instance(
        planted_partition,
        n=n, k=3, p_in=0.3, p_out=0.02, ensure_connected=True,
        seed=n, cache_dir=cache_dir,
    )


def main() -> None:
    sizes = [300, 600, 1200]
    algorithms = {
        # Dataclass-based adapters: picklable, so they cross process
        # boundaries (ad-hoc lambdas would work serially but not here).
        "ours (vectorized)": evaluate_distributed_clustering(),
        "spectral": evaluate_baseline(SpectralClustering()),
    }

    with tempfile.TemporaryDirectory() as cache_dir:
        # Cold pass: generates every instance and fills the cache.
        start = time.perf_counter()
        instances = list(sweep(sizes, make_instance, key="n", cache_dir=cache_dir))
        cold = time.perf_counter() - start

        # Warm pass: same configs, served from npz via Graph.from_csr.
        start = time.perf_counter()
        instances = list(sweep(sizes, make_instance, key="n", cache_dir=cache_dir))
        warm = time.perf_counter() - start
        print(f"instance construction: cold {cold:.3f}s, warm {warm:.3f}s "
              f"({cold / warm:.1f}x)")

        # Serial reference run.
        start = time.perf_counter()
        serial = run_trials(instances, algorithms, trials=4, base_seed=1)
        serial_s = time.perf_counter() - start

        # The same grid fanned across 4 worker processes.  Each trial's
        # randomness comes from its own crc32 trial seed, so scheduling
        # cannot change any record.
        start = time.perf_counter()
        parallel = run_trials(
            instances, algorithms, trials=4, base_seed=1,
            executor="process", workers=4,
        )
        parallel_s = time.perf_counter() - start

        identical = [
            (r.config, r.trial, r.values) for r in serial.records
        ] == [
            (r.config, r.trial, r.values) for r in parallel.records
        ]
        print(f"run_trials: serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s "
              f"({serial_s / parallel_s:.2f}x); records identical: {identical}")
        assert identical

        print()
        print(serial.table(
            ["n", "algorithm"],
            ["n", "algorithm", "trials", "error", "ari", "rounds"],
            title="parallel cached sweep (records shown from the serial run)",
        ))


if __name__ == "__main__":
    main()
