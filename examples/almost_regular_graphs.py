#!/usr/bin/env python
"""The Section 4.5 extension: clustering almost-regular graphs.

Generates a clustered graph whose node degrees vary by a bounded factor,
then compares

* the plain algorithm (which implicitly assumes regularity), and
* the degree-capped variant of Section 4.5 (equivalent to adding
  ``D - d_v`` self-loops so that every node behaves as if it had degree
  ``D``),

for a sweep of degree heterogeneity.  The degree-capped variant keeps the
matching unbiased, which matters most when the degree ratio grows.

Run with::

    python examples/almost_regular_graphs.py
"""

from __future__ import annotations

from repro.core import AlgorithmParameters, AlmostRegularClustering, CentralizedClustering
from repro.graphs import almost_regular_clustered_graph


def main() -> None:
    print(f"{'d_min..d_max':>14} {'Δ/δ':>6} {'plain error':>12} {'degree-capped error':>20}")
    for d_min, d_max in [(8, 8), (6, 12), (4, 16)]:
        instance = almost_regular_clustered_graph(
            k=3, cluster_size=40, d_min=d_min, d_max=d_max, seed=d_max
        )
        graph, truth = instance.graph, instance.partition
        params = AlgorithmParameters.from_instance(graph, truth)

        plain = CentralizedClustering(graph, params, seed=5).run(keep_loads=False)
        capped = AlmostRegularClustering(graph, params, seed=5).run(keep_loads=False)

        print(
            f"{f'{d_min}..{d_max}':>14} {graph.degree_ratio():>6.2f} "
            f"{plain.error_against(truth):>12.3f} {capped.error_against(truth):>20.3f}"
        )


if __name__ == "__main__":
    main()
