"""Node state of the distributed algorithm.

Section 3.1 of the paper describes the state of a node as a set of vectors
``(ID(w), x)``: the *prefix* identifies the seed node ``w`` that generated the
unit of load, the *suffix* ``x`` is the amount of that seed's load currently
held.  :class:`NodeState` implements exactly the update rule of the Averaging
Procedure: entries with matching prefixes are averaged, unmatched entries are
halved on both sides (which is the same thing as averaging with an implicit
zero entry on the other side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["NodeState"]


@dataclass
class NodeState:
    """A set of ``(prefix, value)`` pairs held by one node.

    The state is a mapping from seed identifier (prefix) to load value
    (suffix); absent prefixes implicitly carry the value 0, which is what the
    three-case update rule of the paper amounts to.
    """

    entries: dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls) -> "NodeState":
        return cls({})

    @classmethod
    def seeded(cls, identifier: int, value: float = 1.0) -> "NodeState":
        """Initial state of an active seed node: one unit of its own load.

        Note the formal description in Section 3.1 writes the initial state
        as ``{(ID(v), 0)}``; the abstract view of Section 3.2 makes clear the
        intended initial load is ``χ_v``, i.e. value 1 at ``v`` (a literal 0
        would make every state identically zero forever).  We follow the
        Section 3.2 semantics; EXPERIMENTS.md records this as an erratum
        interpretation.
        """
        return cls({int(identifier): float(value)})

    # ------------------------------------------------------------------ #
    # The averaging rule (Section 3.1)
    # ------------------------------------------------------------------ #

    def averaged_with(self, other: "NodeState") -> "NodeState":
        """The common state two matched nodes adopt after averaging.

        Implements the three bullet points of the Averaging Procedure: for
        every prefix present in either state, the new value is the average of
        the two values (missing values count as 0).  Both endpoints of a
        matched edge adopt the *same* resulting state.
        """
        result: dict[int, float] = {}
        for prefix in self.entries.keys() | other.entries.keys():
            x = self.entries.get(prefix, 0.0)
            y = other.entries.get(prefix, 0.0)
            result[prefix] = (x + y) / 2.0
        return NodeState(result)

    def prune(self, epsilon: float) -> "NodeState":
        """Drop entries below ``epsilon`` (optional message-size optimisation).

        The paper keeps all entries; pruning tiny entries reduces message
        size at a negligible accuracy cost and is exercised by the
        sensitivity benchmark (E11) as an engineering extension.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        return NodeState({p: v for p, v in self.entries.items() if v >= epsilon})

    # ------------------------------------------------------------------ #
    # Query procedure support
    # ------------------------------------------------------------------ #

    def label(self, threshold: float) -> int | None:
        """The Query Procedure: the smallest prefix whose value exceeds ``threshold``.

        Returns ``None`` when no entry qualifies (the paper then assigns an
        arbitrary label).
        """
        qualifying = [p for p, v in self.entries.items() if v >= threshold]
        return min(qualifying) if qualifying else None

    def heaviest_prefix(self) -> int | None:
        """Prefix with the largest value (used as the 'arbitrary' fallback label)."""
        if not self.entries:
            return None
        return max(self.entries.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def total_load(self) -> float:
        return float(sum(self.entries.values()))

    def value(self, prefix: int) -> float:
        return float(self.entries.get(prefix, 0.0))

    def prefixes(self) -> Iterable[int]:
        return self.entries.keys()

    def as_payload(self) -> list[tuple[int, float]]:
        """Serialisable form sent in messages: a list of (prefix, value) pairs."""
        return sorted((int(p), float(v)) for p, v in self.entries.items())

    @classmethod
    def from_payload(cls, payload: Iterable[tuple[int, float]]) -> "NodeState":
        return cls({int(p): float(v) for p, v in payload})

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(sorted(self.entries.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeState):
            return NotImplemented
        return self.entries == other.entries
