"""The Query Procedure (Section 3.1).

After ``T`` averaging rounds every node inspects its coordinates
``x^{(T,1)}(v), ..., x^{(T,s)}(v)`` and adopts as its label the *smallest seed
identifier* whose coordinate is at least the threshold ``1/(√(2β)·n)``.
Nodes with no qualifying coordinate receive an arbitrary label; the paper
charges these nodes to the ``o(n)`` misclassification budget.

Two fallback policies are provided for the no-qualifying-coordinate case:

* ``"argmax"`` (default) — use the seed with the largest coordinate; this is a
  natural "arbitrary" choice that keeps every node labelled and is what a
  practical deployment would do;
* ``"none"`` — leave the node unlabelled (label ``-1``), which makes the
  misclassification accounting maximally conservative.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assign_labels_from_loads"]


def assign_labels_from_loads(
    loads: np.ndarray,
    seed_ids: np.ndarray,
    threshold: float,
    *,
    fallback: str = "argmax",
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the query rule to a final ``(n, s)`` load configuration.

    Parameters
    ----------
    loads:
        Final configuration ``X`` with ``X[v, i] = x^{(T,i)}(v)``.
    seed_ids:
        Identifier (prefix) of each seed, shape ``(s,)``.
    threshold:
        The query threshold.
    fallback:
        Policy for nodes with no coordinate above the threshold
        (``"argmax"`` or ``"none"``).

    Returns
    -------
    labels, unlabelled:
        ``labels[v]`` is the chosen seed identifier (or ``-1``);
        ``unlabelled[v]`` is ``True`` when no coordinate reached the
        threshold.
    """
    loads = np.asarray(loads, dtype=np.float64)
    seed_ids = np.asarray(seed_ids, dtype=np.int64)
    if loads.ndim != 2 or loads.shape[1] != seed_ids.size:
        raise ValueError("loads must have shape (n, s) matching seed_ids")
    if fallback not in ("argmax", "none"):
        raise ValueError("fallback must be 'argmax' or 'none'")
    n, s = loads.shape
    labels = np.full(n, -1, dtype=np.int64)
    unlabelled = np.ones(n, dtype=bool)
    if s == 0:
        return labels, unlabelled

    qualifies = loads >= threshold
    has_qualifying = qualifies.any(axis=1)
    unlabelled = ~has_qualifying

    # Among qualifying coordinates pick the one with the smallest identifier.
    # Vectorised: replace non-qualifying identifiers by +inf and take argmin.
    ids_matrix = np.where(qualifies, seed_ids[np.newaxis, :], np.iinfo(np.int64).max)
    best = ids_matrix.min(axis=1)
    labels[has_qualifying] = best[has_qualifying]

    if fallback == "argmax":
        fallback_rows = np.flatnonzero(unlabelled)
        if fallback_rows.size:
            labels[fallback_rows] = seed_ids[np.argmax(loads[fallback_rows], axis=1)]
    return labels, unlabelled
