"""The paper's primary contribution: graph clustering by load balancing.

Public entry points
-------------------
* :func:`cluster_graph` — one-call API (derive parameters, run, return labels).
* :class:`CentralizedClustering` — the fast matrix implementation (Section 3.2 view).
* :class:`DistributedClustering` — the distributed implementation
  (Section 3.1), parameterized over a round-engine backend: the
  ``message-passing`` per-node simulator (exact communication accounting),
  the ``vectorized`` array backend (orders of magnitude faster) or the
  ``parallel`` threaded-kernel backend (multi-core via optional numba; see
  :mod:`repro.core.engines`).  All backends accept a
  :class:`~repro.distsim.failures.FailureModel` drawn from shared counter
  streams, so robustness runs agree across backends.
* :class:`AlmostRegularClustering` — the Section 4.5 extension.
* :class:`AlgorithmParameters` — the paper's parameters (β, T, s̄, threshold).
* :mod:`repro.core.theory` — computable versions of the analysis objects
  (χ̂ vectors, α_v, good nodes, error bound E).
"""

from .adaptive import AdaptiveClustering, AdaptiveRunInfo
from .almost_regular import AlmostRegularClustering, sample_degree_capped_matching
from .centralized import CentralizedClustering, cluster_graph
from .engines import (
    DEFAULT_BACKEND,
    MaskedMessagePassingEngine,
    MessagePassingEngine,
    ParallelEngine,
    VectorizedEngine,
    build_clustering_result,
    make_engine,
)
from .tokens import TokenClustering
from .distributed import DistributedClustering, LoadBalancingClusteringAlgorithm
from .parameters import AlgorithmParameters, query_threshold, round_count, seeding_trials
from .query import assign_labels_from_loads
from .result import ClusteringResult
from .seeding import assign_seed_identifiers, sample_seeds, seed_load_matrix
from .state import NodeState
from .theory import (
    StructureTheoryReport,
    alpha_values,
    error_bound_E,
    good_node_threshold,
    good_nodes_mask,
    structure_theory_report,
    structure_vectors,
)

__all__ = [
    "AdaptiveClustering",
    "AdaptiveRunInfo",
    "TokenClustering",
    "AlmostRegularClustering",
    "sample_degree_capped_matching",
    "CentralizedClustering",
    "cluster_graph",
    "DEFAULT_BACKEND",
    "MaskedMessagePassingEngine",
    "MessagePassingEngine",
    "ParallelEngine",
    "VectorizedEngine",
    "build_clustering_result",
    "make_engine",
    "DistributedClustering",
    "LoadBalancingClusteringAlgorithm",
    "AlgorithmParameters",
    "query_threshold",
    "round_count",
    "seeding_trials",
    "assign_labels_from_loads",
    "ClusteringResult",
    "assign_seed_identifiers",
    "sample_seeds",
    "seed_load_matrix",
    "NodeState",
    "StructureTheoryReport",
    "alpha_values",
    "error_bound_E",
    "good_node_threshold",
    "good_nodes_mask",
    "structure_theory_report",
    "structure_vectors",
]
