"""The almost-regular extension (Section 4.5).

The paper extends the algorithm to graphs whose degree ratio ``Δ/δ`` is
bounded by a constant by viewing the graph ``G`` as a ``D``-regular graph
``G*`` with ``D - d_v`` self-loops added at node ``v`` (for a known degree
bound ``D ≥ Δ`` with ``D/δ = Θ(Δ/δ)``).  Operationally the only change is in
the matching protocol: an active node's proposal travels along one of its
``D`` virtual incident edges, so with probability ``(D - d_v)/D`` it follows
a self-loop and the node stays unmatched for the round.

This module provides both sides of the reproduction:

* :func:`sample_degree_capped_matching` — a centralised sampler of the
  modified protocol (the distributed version is the ``degree_cap`` option of
  :class:`~repro.core.distributed.LoadBalancingClusteringAlgorithm`);
* :class:`AlmostRegularClustering` — the end-to-end algorithm for
  almost-regular graphs, used by benchmark E10.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..loadbalancing.matching import _resolve_proposals, sample_random_matching
from .centralized import CentralizedClustering
from .parameters import AlgorithmParameters
from .result import ClusteringResult

__all__ = ["sample_degree_capped_matching", "AlmostRegularClustering"]


def sample_degree_capped_matching(
    graph: Graph, degree_cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample one matching of the Section 4.5 protocol on ``G*``.

    Identical to :func:`~repro.loadbalancing.matching.sample_random_matching`
    except that an active node ``v`` proposes to a *real* neighbour only with
    probability ``d_v / D`` (otherwise its proposal follows a virtual
    self-loop and dies).  With ``D = d`` on a ``d``-regular graph this reduces
    exactly to the standard protocol.
    """
    if degree_cap < graph.max_degree:
        raise ValueError(
            f"degree cap D={degree_cap} must be at least the maximum degree {graph.max_degree}"
        )
    n = graph.n
    active = rng.random(n) < 0.5
    proposals_to = np.full(n, -1, dtype=np.int64)
    for v in np.flatnonzero(active):
        d_v = graph.degree(int(v))
        if d_v == 0:
            continue
        if rng.random() >= d_v / degree_cap:
            continue  # proposal follows a virtual self-loop
        proposals_to[v] = graph.random_neighbour(int(v), rng)

    proposers = np.flatnonzero(proposals_to >= 0)
    return _resolve_proposals(n, active, proposers, proposals_to[proposers])


class AlmostRegularClustering:
    """Clustering for almost-regular graphs via the degree-capped protocol.

    Parameters
    ----------
    graph:
        An almost-regular graph (bounded ``Δ/δ``).
    parameters:
        Algorithm parameters (same meaning as in the regular case).
    degree_cap:
        The known bound ``D ≥ Δ``; defaults to the true maximum degree.
    """

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        degree_cap: int | None = None,
        seed: int | None = None,
        fallback: str = "argmax",
    ):
        self.graph = graph
        self.parameters = parameters
        self.degree_cap = int(degree_cap) if degree_cap is not None else graph.max_degree
        if self.degree_cap < graph.max_degree:
            raise ValueError("degree_cap must be at least the maximum degree")
        self._seed = seed
        self._fallback = fallback

    def run(self, **kwargs) -> ClusteringResult:
        """Run the centralised implementation with the degree-capped matching."""
        cap = self.degree_cap

        def sampler(graph: Graph, rng: np.random.Generator) -> np.ndarray:
            if cap <= graph.max_degree and graph.is_regular():
                return sample_random_matching(graph, rng)
            return sample_degree_capped_matching(graph, cap, rng)

        # CentralizedClustering drives the averaging through
        # MultiDimensionalLoadBalancing, which accepts a custom sampler via a
        # thin wrapper model below.
        from ..loadbalancing.models import RandomMatchingModel
        from ..loadbalancing.matching import apply_matching, count_matched_edges

        class _CappedMatchingModel(RandomMatchingModel):
            name = "degree-capped-matching"

            def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
                partner = sampler(self.graph, rng)
                self.last_matched_edges = count_matched_edges(partner)
                return apply_matching(loads, partner)

        engine = CentralizedClustering(
            self.graph,
            self.parameters,
            seed=self._seed,
            averaging_model=_CappedMatchingModel(self.graph),
            fallback=self._fallback,
        )
        result = engine.run(**kwargs)
        result.diagnostics["degree_cap"] = cap
        return result
