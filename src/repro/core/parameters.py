"""Algorithm parameters derived from the paper's theory.

The algorithm of Section 3 is controlled by four quantities:

* ``β`` — a known lower bound on the balance ``min_i |S_i| / n`` (the paper
  stresses that the exact number of clusters ``k`` need not be known, only
  ``β``);
* ``s̄ = (3/β) ln(1/β)`` — the number of seeding trials;
* ``T = Θ(log n / (1 − λ_{k+1}))`` — the number of averaging rounds;
* the query threshold ``1 / (√(2β) · n)``.

:class:`AlgorithmParameters` bundles them and provides constructors that
derive them either from the spectral structure of a given instance (the
"oracle" setting used by benchmarks, where λ_{k+1} is computed exactly) or
from explicit user input (the honest distributed setting where ``T`` must be
guessed or supplied).

Note on the query threshold
---------------------------
The paper's query rule reads "``x ≥ 1/√2βn``"; dimensional analysis of the
misclassification condition ``|x^{(T,i)}(v) - χ_{S(v_i)}(v)|² ≥ 1/(2βn²)``
(Section 4.1) shows the intended reading is ``x ≥ 1/(√(2β) · n)``: load values
inside a cluster concentrate around ``1/|S_j| ∈ [k/n·(1/κ), 1/(βn)]`` while
values outside concentrate near 0, and ``1/(√(2β)·n)`` sits between the two.
EXPERIMENTS.md records this interpretation; benchmark E11 sweeps the
threshold and confirms it is the right order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..graphs.spectral import cluster_gap

__all__ = ["AlgorithmParameters", "seeding_trials", "query_threshold", "round_count"]

#: Default hidden constant of the Θ(·) in the round count T.
#:
#: The paper's T = Θ(log n / (1 - λ_{k+1})) counts *matching rounds*, and a
#: single matching round advances the expected configuration by only a
#: (d̄/4)-fraction of a lazy random-walk step (Lemma 2.1), so the hidden
#: constant absorbs a factor ≈ 4/d̄ ∈ [5, 7].  The value 16 was calibrated by
#: the E2 benchmark (see EXPERIMENTS.md): smaller constants under-mix inside
#: clusters, much larger ones slowly leak load across clusters (Remark 1).
DEFAULT_ROUND_CONSTANT = 16.0


def seeding_trials(beta: float) -> int:
    """The paper's ``s̄ = (3/β) ln(1/β)`` (at least 1)."""
    if not 0.0 < beta <= 1.0:
        raise ValueError("beta must lie in (0, 1]")
    if beta >= 1.0:
        return 1
    return max(1, int(np.ceil((3.0 / beta) * np.log(1.0 / beta))))


def query_threshold(beta: float, n: int) -> float:
    """The query threshold ``1 / (√(2β) · n)``."""
    if not 0.0 < beta <= 1.0:
        raise ValueError("beta must lie in (0, 1]")
    if n <= 0:
        raise ValueError("n must be positive")
    return 1.0 / (np.sqrt(2.0 * beta) * n)


def round_count(n: int, gap: float, *, constant: float = DEFAULT_ROUND_CONSTANT) -> int:
    """``T = constant · log n / gap`` where ``gap = 1 - λ_{k+1}``."""
    if gap <= 0:
        raise ValueError("spectral gap 1 - λ_{k+1} must be positive")
    return max(1, int(np.ceil(constant * np.log(max(n, 2)) / gap)))


@dataclass(frozen=True)
class AlgorithmParameters:
    """All tunables of the load-balancing clustering algorithm.

    Attributes
    ----------
    n:
        Number of nodes (known to every node, as assumed by the paper for
        the ID range and the activation probability ``1/n``).
    beta:
        Lower bound on the cluster balance ``min_i |S_i|/n``.
    rounds:
        Number of averaging rounds ``T``.
    num_seeding_trials:
        ``s̄``; defaults to the paper's value for the given ``β``.
    activation_probability:
        Per-trial activation probability (``1/n`` in the paper).
    threshold:
        Query threshold; defaults to ``1/(√(2β)·n)``.
    id_space:
        Node identifiers are drawn uniformly from ``[1, id_space]``
        (``n³`` in the paper, which makes collisions unlikely).
    """

    n: int
    beta: float
    rounds: int
    num_seeding_trials: int
    activation_probability: float
    threshold: float
    id_space: int

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(
        cls,
        n: int,
        beta: float,
        rounds: int,
        *,
        num_seeding_trials: int | None = None,
        activation_probability: float | None = None,
        threshold: float | None = None,
        id_space: int | None = None,
    ) -> "AlgorithmParameters":
        """Build parameters from explicit values (defaults follow the paper)."""
        if n <= 0:
            raise ValueError("n must be positive")
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must lie in (0, 1]")
        return cls(
            n=n,
            beta=float(beta),
            rounds=int(rounds),
            num_seeding_trials=(
                seeding_trials(beta) if num_seeding_trials is None else int(num_seeding_trials)
            ),
            activation_probability=(
                1.0 / n if activation_probability is None else float(activation_probability)
            ),
            threshold=query_threshold(beta, n) if threshold is None else float(threshold),
            id_space=n ** 3 if id_space is None else int(id_space),
        )

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        k: int,
        *,
        beta: float | None = None,
        round_constant: float = DEFAULT_ROUND_CONSTANT,
        **overrides,
    ) -> "AlgorithmParameters":
        """Derive parameters from a graph and a target number of clusters ``k``.

        Uses the exact spectral gap ``1 - λ_{k+1}`` of the instance to set
        ``T`` — the "oracle" configuration used throughout the benchmarks so
        that measured behaviour can be compared with the theory at the
        theoretically prescribed ``T``.
        """
        beta_val = float(beta) if beta is not None else 1.0 / (2.0 * k)
        gap = cluster_gap(graph, k)
        rounds = round_count(graph.n, gap, constant=round_constant)
        return cls.from_values(graph.n, beta_val, rounds, **overrides)

    @classmethod
    def from_instance(
        cls,
        graph: Graph,
        partition: Partition,
        *,
        round_constant: float = DEFAULT_ROUND_CONSTANT,
        **overrides,
    ) -> "AlgorithmParameters":
        """Derive parameters from a graph with known ground-truth partition.

        ``β`` is set to the instance's true balance and ``k`` to its true
        number of clusters; used by benchmarks that study the algorithm under
        the exact assumptions of Theorem 1.1.
        """
        beta = partition.min_cluster_fraction()
        return cls.from_graph(
            graph, partition.k, beta=beta, round_constant=round_constant, **overrides
        )

    # ------------------------------------------------------------------ #
    # Derived quantities and tweaks
    # ------------------------------------------------------------------ #

    @property
    def expected_seeds(self) -> float:
        """``E[s] = s̄ · n · p ≈ s̄`` for the paper's ``p = 1/n``."""
        return self.num_seeding_trials * self.n * self.activation_probability

    def with_rounds(self, rounds: int) -> "AlgorithmParameters":
        return replace(self, rounds=int(rounds))

    def with_threshold(self, threshold: float) -> "AlgorithmParameters":
        return replace(self, threshold=float(threshold))

    def with_seeding_trials(self, trials: int) -> "AlgorithmParameters":
        return replace(self, num_seeding_trials=int(trials))

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "beta": self.beta,
            "rounds": self.rounds,
            "num_seeding_trials": self.num_seeding_trials,
            "activation_probability": self.activation_probability,
            "threshold": self.threshold,
            "id_space": self.id_space,
        }
