"""The Seeding Procedure (Section 3.1).

Every node performs ``s̄`` independent trials, becoming *active* with
probability ``1/n`` in each (so the expected number of distinct active nodes
is just under ``s̄``).  Every node that was active at least once seeds one
unit of its own load, i.e. contributes the initial vector ``χ_v`` of the
multi-dimensional load balancing process.

The proof of Theorem 1.1 only needs two properties of this procedure, both of
which are checked by the test-suite:

* with probability ``≥ 1 - e^{-3}`` every cluster of size ``≥ βn`` contains at
  least one active node, and
* the number of active nodes is ``O(s̄)`` with constant probability.
"""

from __future__ import annotations

import numpy as np

from .parameters import AlgorithmParameters

__all__ = ["sample_seeds", "assign_seed_identifiers", "seed_load_matrix"]


def sample_seeds(params: AlgorithmParameters, rng: np.random.Generator) -> np.ndarray:
    """Run the seeding trials; returns the sorted array of active node ids."""
    n = params.n
    p = params.activation_probability
    trials = params.num_seeding_trials
    # Probability a node is active in at least one of the trials.
    p_any = 1.0 - (1.0 - p) ** trials
    active = rng.random(n) < p_any
    return np.flatnonzero(active)


def assign_seed_identifiers(
    seeds: np.ndarray, params: AlgorithmParameters, rng: np.random.Generator
) -> np.ndarray:
    """Draw the random identifiers ``ID(v) ∈ [1, n³]`` for the seed nodes.

    The full algorithm gives an identifier to *every* node, but only the
    identifiers of seed nodes ever travel through the network, so the
    centralised implementation draws only those.  Identifiers are resampled
    until they are distinct (the paper conditions on this high-probability
    event).
    """
    s = int(np.asarray(seeds).size)
    if s == 0:
        return np.empty(0, dtype=np.int64)
    for _ in range(64):
        ids = rng.integers(1, params.id_space + 1, size=s)
        if np.unique(ids).size == s:
            return ids.astype(np.int64)
    # Astronomically unlikely for id_space = n³; fall back to distinct values.
    return (np.arange(1, s + 1, dtype=np.int64) * (params.id_space // (s + 1) or 1)) + 1


def seed_load_matrix(n: int, seeds: np.ndarray) -> np.ndarray:
    """The initial configuration ``X₀`` with column ``i`` equal to ``χ_{v_i}``.

    ``χ_{v}`` is the normalised indicator of the singleton ``{v}``, i.e. the
    standard basis vector ``e_v``.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    x0 = np.zeros((n, seeds.size), dtype=np.float64)
    if seeds.size:
        x0[seeds, np.arange(seeds.size)] = 1.0
    return x0
