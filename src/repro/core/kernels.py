"""Fused kernels and the counter-based RNG behind the ``parallel`` backend.

The vectorised engine already removed Python-level per-node loops, but every
round still walks the whole graph several times (coin draw, slot draw, gather,
bincount resolution, fancy-indexed averaging), each pass streaming O(n) or
O(m) arrays through memory.  The kernels here fuse a full round — activity
coins, capped-slot proposal, proposal resolution and matched-pair load
averaging — into two tight loops over the CSR arrays, which numba's
``njit(parallel=True)`` turns into multi-core machine code.

Determinism contract
--------------------
Thread scheduling must not influence results, so no shared generator state is
consumed: every random draw is a *counter-based* hash.  A per-``(seed, round,
stream)`` key is derived with splitmix64-style mixing, and node ``v``'s draw
is ``mix64(key + (v+1)·γ)`` — a pure function of ``(seed, round, stream,
node)``.  The hash family itself lives in :mod:`repro._rng` (re-exported
here) so the failure layer can draw crash/drop decisions from sibling
streams of the same ``(seed, round)`` keys.  Consequences, pinned by
``tests/core/test_kernels.py``:

* results are bit-identical across thread counts and repeat runs;
* the numba kernels and the pure-numpy reference path below perform the
  *same* IEEE-754 operations per node, so they agree bit-for-bit — the
  reference path is not an approximation but the same function, slower.

The stream is deliberately different from the ``numpy.random.Generator``
stream of the vectorised backend: the two backends are equivalent in
distribution (same three-step protocol), not bit-for-bit, exactly like the
message-passing/vectorized pair (see ``tests/integration/test_backend_parity``).

Numba is optional (see :mod:`repro._accel`): without it,
:class:`ParallelMatchingKernel` runs the reference path and the ``parallel``
backend *factory* falls back to the vectorised engine instead.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from .._accel import HAVE_NUMBA
from .._rng import (
    _GAMMA,
    _INV_2POW53,
    _MIX1,
    _MIX2,
    MASK64 as _MASK64,
    STREAM_ACTIVITY,
    STREAM_SLOT,
    counter_uniforms,
    mix64,
    stream_key,
)
from ..loadbalancing.matching import (
    _blocked_neighbour_gather,
    _resolve_proposals,
    apply_matching,
)

__all__ = [
    "STREAM_ACTIVITY",
    "STREAM_SLOT",
    "mix64",
    "stream_key",
    "counter_uniforms",
    "matching_round_reference",
    "matching_round_blocked",
    "ParallelMatchingKernel",
]


def matching_round_reference(
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    key_active: int,
    key_slot: int,
    degree_cap: int = 0,
) -> np.ndarray:
    """One matching round from counter-based draws, in pure numpy.

    Same three-step protocol as
    :func:`~repro.loadbalancing.matching.sample_random_matching_fast`, but
    with the generator stream replaced by the per-node counter hashes — this
    is the function the numba matching kernel must agree with bit-for-bit.
    ``degree_cap = 0`` means uncapped; a positive value enables the
    Section 4.5 virtual-slot protocol.
    """
    n = int(degrees.shape[0])
    active, proposers, slots = _proposal_slots(degrees, key_active, key_slot, degree_cap)
    if proposers.size:
        targets = indices[indptr[proposers] + slots]
    else:
        targets = proposers
    return _resolve_proposals(n, active, proposers, targets)


def _proposal_slots(
    degrees: np.ndarray, key_active: int, key_slot: int, degree_cap: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Steps 1–2 of the protocol from counter-based draws.

    Returns ``(active, proposers, slots)``: the activity coins, the active
    positive-degree nodes whose proposal survived the (optional) virtual-slot
    cap, and each survivor's slot within its CSR row.  Pure O(n) — the
    adjacency is only needed afterwards, to gather ``indices[indptr[p] + slot]``,
    which is what lets the blocked path restrict every adjacency access to
    one row block at a time.
    """
    n = int(degrees.shape[0])
    active = counter_uniforms(key_active, n) < 0.5
    proposers = np.flatnonzero(active & (degrees > 0))
    if not proposers.size:
        return active, proposers, proposers
    u01 = counter_uniforms(key_slot, n)[proposers]
    if degree_cap > 0:
        slots = (u01 * float(degree_cap)).astype(np.int64)
        np.minimum(slots, degree_cap - 1, out=slots)
        real = slots < degrees[proposers]
        proposers = proposers[real]
        slots = slots[real]
    else:
        d = degrees[proposers]
        slots = (u01 * d.astype(np.float64)).astype(np.int64)
        np.minimum(slots, d - 1, out=slots)
    return active, proposers, slots


def matching_round_blocked(
    storage,
    degrees: np.ndarray,
    key_active: int,
    key_slot: int,
    degree_cap: int = 0,
    block_size: int | None = None,
) -> np.ndarray:
    """The reference round with every adjacency access block-sliced.

    Bit-identical to :func:`matching_round_reference` on the same CSR
    contents: the counter-based draws are pure functions of
    ``(key, node)`` so the proposal step never needs the adjacency, the
    target gather visits positions in ascending order one row block at a
    time (:func:`~repro.loadbalancing.matching._blocked_neighbour_gather`),
    and the resolution step is an O(n) bincount.  Peak adjacency residency
    is therefore one block, which is what makes the ``parallel`` backend
    safe on memory-mapped storage.
    """
    n = int(degrees.shape[0])
    active, proposers, slots = _proposal_slots(degrees, key_active, key_slot, degree_cap)
    if proposers.size:
        targets = _blocked_neighbour_gather(
            storage, storage.indptr, proposers, slots, block_size
        )
    else:
        targets = proposers
    return _resolve_proposals(n, active, proposers, targets)


# --------------------------------------------------------------------------- #
# Numba kernels (compiled lazily, only when numba is installed)
# --------------------------------------------------------------------------- #

_NUMBA_KERNELS: SimpleNamespace | None = None


def _build_numba_kernels() -> SimpleNamespace:  # pragma: no cover - needs numba
    from numba import njit, prange

    GAMMA = np.uint64(_GAMMA)
    MIX1 = np.uint64(_MIX1)
    MIX2 = np.uint64(_MIX2)
    S30 = np.uint64(30)
    S27 = np.uint64(27)
    S31 = np.uint64(31)
    S11 = np.uint64(11)
    INV53 = _INV_2POW53

    @njit(cache=True)
    def _uniform(key, counter):
        # splitmix64 finaliser of key + counter·γ; all-uint64 arithmetic so
        # numba never promotes to float64 mid-mix.
        x = key + counter * GAMMA
        x ^= x >> S30
        x *= MIX1
        x ^= x >> S27
        x *= MIX2
        x ^= x >> S31
        return np.float64(x >> S11) * INV53

    @njit(parallel=True, cache=True)
    def matching(indptr, indices, key_active, key_slot, degree_cap, active, prop, partner):
        n = partner.shape[0]
        # Pass 1 — coins + proposals: each thread writes only its own node's
        # slots, so the loop is embarrassingly parallel.
        for v in prange(n):
            partner[v] = -1
            prop[v] = -1
            counter = np.uint64(v + 1)
            is_active = _uniform(key_active, counter) < 0.5
            active[v] = is_active
            if is_active:
                lo = indptr[v]
                d = indptr[v + 1] - lo
                if d > 0:
                    u01 = _uniform(key_slot, counter)
                    cap = degree_cap if degree_cap > 0 else d
                    slot = np.int64(u01 * np.float64(cap))
                    if slot > cap - 1:
                        slot = cap - 1
                    if slot < d:
                        target = indices[lo + slot]
                        if target != v:
                            prop[v] = target
        # Pass 2 — resolution from the target side: a non-active node v scans
        # its (sorted) CSR row for active proposers aiming at it.  A proposer
        # u with prop[u] == v that wins is written only by v's thread (u
        # proposed to exactly one node), so the cross-writes are race-free.
        for v in prange(n):
            if active[v]:
                continue
            lo = indptr[v]
            hi = indptr[v + 1]
            count = 0
            winner = np.int64(-1)
            prev = np.int64(-1)
            for e in range(lo, hi):
                u = indices[e]
                if u == prev or u == v:
                    # Skip self-loops and (sorted-row) parallel arcs so a
                    # proposer is counted once, matching the bincount over
                    # proposers in the reference resolution.
                    continue
                prev = u
                if active[u] and prop[u] == v:
                    count += 1
                    if count > 1:
                        break
                    winner = u
            if count == 1:
                partner[v] = winner
                partner[winner] = v

    @njit(parallel=True, cache=True)
    def matching_pass1_block(
        indptr, block, row_start, row_stop, arc_base,
        key_active, key_slot, degree_cap, active, prop, partner,
    ):
        # Pass 1 of `matching`, restricted to rows [row_start, row_stop) whose
        # arcs live in `block` (global arc e at block[e - arc_base]).  The
        # counter-based draws make this slicing invisible: node v's coins are
        # functions of (key, v) alone, so running the pass block-by-block is
        # bit-identical to the monolithic kernel.
        for v in prange(row_start, row_stop):
            partner[v] = -1
            prop[v] = -1
            counter = np.uint64(v + 1)
            is_active = _uniform(key_active, counter) < 0.5
            active[v] = is_active
            if is_active:
                lo = indptr[v]
                d = indptr[v + 1] - lo
                if d > 0:
                    u01 = _uniform(key_slot, counter)
                    cap = degree_cap if degree_cap > 0 else d
                    slot = np.int64(u01 * np.float64(cap))
                    if slot > cap - 1:
                        slot = cap - 1
                    if slot < d:
                        target = block[lo - arc_base + slot]
                        if target != v:
                            prop[v] = target

    @njit(parallel=True, cache=True)
    def matching_pass2_block(
        indptr, block, row_start, row_stop, arc_base, active, prop, partner
    ):
        # Pass 2 of `matching` for rows [row_start, row_stop): runs only
        # after pass 1 has completed for *all* blocks, because a target scans
        # prop[u] of neighbours that may live in other blocks.  partner[u]
        # for a winner u outside the block is still race-free — u proposed to
        # exactly one node, so only this v writes it.
        for v in prange(row_start, row_stop):
            if active[v]:
                continue
            lo = indptr[v] - arc_base
            hi = indptr[v + 1] - arc_base
            count = 0
            winner = np.int64(-1)
            prev = np.int64(-1)
            for e in range(lo, hi):
                u = block[e]
                if u == prev or u == v:
                    continue
                prev = u
                if active[u] and prop[u] == v:
                    count += 1
                    if count > 1:
                        break
                    winner = u
            if count == 1:
                partner[v] = winner
                partner[winner] = v

    @njit(parallel=True, cache=True)
    def average(loads, partner):
        n = partner.shape[0]
        s = loads.shape[1]
        # Each matched pair is processed once, by its lower endpoint's
        # thread; 0.5·(a+b) is the exact expression of apply_matching, so
        # the two averaging paths agree bit-for-bit.
        for v in prange(n):
            p = partner[v]
            if p > v:
                for j in range(s):
                    mean = 0.5 * (loads[v, j] + loads[p, j])
                    loads[v, j] = mean
                    loads[p, j] = mean

    return SimpleNamespace(
        matching=matching,
        matching_pass1_block=matching_pass1_block,
        matching_pass2_block=matching_pass2_block,
        average=average,
    )


def _numba_kernels() -> SimpleNamespace:  # pragma: no cover - needs numba
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is None:
        _NUMBA_KERNELS = _build_numba_kernels()
    return _NUMBA_KERNELS


# --------------------------------------------------------------------------- #
# Engine-facing wrapper
# --------------------------------------------------------------------------- #

class ParallelMatchingKernel:
    """Per-run state of the fused round kernels.

    Holds the CSR source (contiguous int64 arrays, or any
    :class:`~repro.graphs.store.CSRStorage` via :meth:`from_storage`), the
    counter seed and the reusable output buffers, and dispatches each round
    to the numba kernels or the numpy reference path.  ``use_numba``:

    * ``"auto"`` — numba when installed, reference path otherwise;
    * ``True`` — require numba (raise if missing);
    * ``False`` — force the reference path (how the determinism tests pin
      the stream on machines without numba).

    Out-of-core storage (and any storage when ``block_size`` is forced) runs
    **block-sliced**: the same kernels are applied one ``iter_row_blocks``
    window at a time, which the counter-based draws make bit-identical to
    the monolithic execution — node ``v``'s randomness depends only on
    ``(seed, round, v)``, never on which slice of the adjacency was resident
    when it was computed.  All paths return the *same* partner arrays for
    the same seed, so which one ran is a pure performance fact — recorded in
    ``using_numba`` for the engine's metadata.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        *,
        seed: int,
        degree_cap: int | None = None,
        use_numba: bool | str = "auto",
    ):
        if use_numba not in ("auto", True, False):
            raise ValueError(f"use_numba must be 'auto', True or False, got {use_numba!r}")
        if use_numba is True and not HAVE_NUMBA:
            raise ValueError("use_numba=True but numba is not installed")
        self.using_numba = HAVE_NUMBA if use_numba == "auto" else bool(use_numba)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = (
            np.ascontiguousarray(indices, dtype=np.int64)
            if indices is not None
            else None
        )
        self.degrees = np.ascontiguousarray(degrees, dtype=np.int64)
        self.seed = int(seed)
        self.degree_cap = int(degree_cap) if degree_cap is not None else 0
        self._storage = None
        self._block_size: int | None = None
        if self.indices is None:
            raise ValueError("either CSR arrays or from_storage(...) must be used")
        if self.using_numba:  # pragma: no cover - needs numba
            self._alloc_buffers()

    @classmethod
    def from_storage(
        cls,
        storage,
        degrees: np.ndarray,
        *,
        seed: int,
        degree_cap: int | None = None,
        use_numba: bool | str = "auto",
        block_size: int | None = None,
    ) -> "ParallelMatchingKernel":
        """Kernel over a :class:`CSRStorage` backend.

        In-memory storage with no forced ``block_size`` takes the monolithic
        path zero-copy; anything else (memory-mapped shards, or an explicit
        ``block_size``) runs the kernels block-sliced over
        ``iter_row_blocks`` so at most one block of the adjacency is
        resident at a time.
        """
        if storage.in_memory and block_size is None:
            dense = storage.materialize()
            return cls(
                dense.indptr,
                dense.indices_array(),
                degrees,
                seed=seed,
                degree_cap=degree_cap,
                use_numba=use_numba,
            )
        self = cls.__new__(cls)
        if use_numba not in ("auto", True, False):
            raise ValueError(f"use_numba must be 'auto', True or False, got {use_numba!r}")
        if use_numba is True and not HAVE_NUMBA:
            raise ValueError("use_numba=True but numba is not installed")
        self.using_numba = HAVE_NUMBA if use_numba == "auto" else bool(use_numba)
        self.indptr = np.ascontiguousarray(storage.indptr, dtype=np.int64)
        self.indices = None
        self.degrees = np.ascontiguousarray(degrees, dtype=np.int64)
        self.seed = int(seed)
        self.degree_cap = int(degree_cap) if degree_cap is not None else 0
        self._storage = storage
        self._block_size = int(block_size) if block_size is not None else None
        if self.using_numba:  # pragma: no cover - needs numba
            self._alloc_buffers()
        return self

    @property
    def blocked(self) -> bool:
        """Whether rounds run block-sliced instead of over monolithic arrays."""
        return self._storage is not None

    def _alloc_buffers(self) -> None:  # pragma: no cover - needs numba
        n = self.degrees.shape[0]
        self._active = np.empty(n, dtype=np.bool_)
        self._prop = np.empty(n, dtype=np.int64)
        self._partner = np.empty(n, dtype=np.int64)

    def round(self, round_index: int) -> np.ndarray:
        """Partner array of round ``round_index`` (buffer reused across rounds)."""
        key_active = stream_key(self.seed, round_index, STREAM_ACTIVITY)
        key_slot = stream_key(self.seed, round_index, STREAM_SLOT)
        if self.using_numba:  # pragma: no cover - needs numba
            if self._storage is None:
                _numba_kernels().matching(
                    self.indptr,
                    self.indices,
                    np.uint64(key_active),
                    np.uint64(key_slot),
                    np.int64(self.degree_cap),
                    self._active,
                    self._prop,
                    self._partner,
                )
            else:
                self._round_numba_blocked(key_active, key_slot)
            return self._partner
        if self._storage is not None:
            return matching_round_blocked(
                self._storage,
                self.degrees,
                key_active,
                key_slot,
                self.degree_cap,
                self._block_size,
            )
        return matching_round_reference(
            self.indptr, self.indices, self.degrees,
            key_active, key_slot, self.degree_cap,
        )

    def proposals(self, round_index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pass 1 of round ``round_index``: ``(active, proposers, targets)``.

        The raw proposal step *before* resolution — exactly the coins and
        slot draws of :meth:`round`, exposed so the failure layer can mask
        dead or dropped proposals and run the resolution itself
        (:func:`~repro.loadbalancing.matching.resolve_proposals_masked`).
        ``targets`` may still contain self-proposals on the reference path
        (proposer drew its own virtual slot target == itself); the masked
        resolution filters them, matching pass 2's ``target != v`` skip.
        """
        key_active = stream_key(self.seed, round_index, STREAM_ACTIVITY)
        key_slot = stream_key(self.seed, round_index, STREAM_SLOT)
        if self.using_numba:  # pragma: no cover - needs numba
            if self._storage is None:
                _numba_kernels().matching_pass1_block(
                    self.indptr,
                    self.indices,
                    np.int64(0),
                    np.int64(self.degrees.shape[0]),
                    self.indptr[0],
                    np.uint64(key_active),
                    np.uint64(key_slot),
                    np.int64(self.degree_cap),
                    self._active,
                    self._prop,
                    self._partner,
                )
            else:
                kernels = _numba_kernels()
                for r0, r1, block in self._storage.iter_row_blocks(self._block_size):
                    kernels.matching_pass1_block(
                        self.indptr,
                        np.asarray(block),
                        np.int64(r0),
                        np.int64(r1),
                        self.indptr[r0],
                        np.uint64(key_active),
                        np.uint64(key_slot),
                        np.int64(self.degree_cap),
                        self._active,
                        self._prop,
                        self._partner,
                    )
            proposers = np.flatnonzero(self._prop >= 0)
            return self._active.copy(), proposers, self._prop[proposers]
        active, proposers, slots = _proposal_slots(
            self.degrees, key_active, key_slot, self.degree_cap
        )
        if not proposers.size:
            return active, proposers, proposers
        if self._storage is not None:
            targets = _blocked_neighbour_gather(
                self._storage, self.indptr, proposers, slots, self._block_size
            )
        else:
            targets = self.indices[self.indptr[proposers] + slots]
        return active, proposers, targets

    def _round_numba_blocked(self, key_active: int, key_slot: int) -> None:  # pragma: no cover - needs numba
        # Two sweeps over the storage: pass 2 reads prop[u] of neighbours
        # that may live in any block, so pass 1 must finish everywhere first.
        kernels = _numba_kernels()
        for r0, r1, block in self._storage.iter_row_blocks(self._block_size):
            kernels.matching_pass1_block(
                self.indptr,
                np.asarray(block),
                np.int64(r0),
                np.int64(r1),
                self.indptr[r0],
                np.uint64(key_active),
                np.uint64(key_slot),
                np.int64(self.degree_cap),
                self._active,
                self._prop,
                self._partner,
            )
        for r0, r1, block in self._storage.iter_row_blocks(self._block_size):
            kernels.matching_pass2_block(
                self.indptr,
                np.asarray(block),
                np.int64(r0),
                np.int64(r1),
                self.indptr[r0],
                self._active,
                self._prop,
                self._partner,
            )

    def average(self, loads: np.ndarray, partner: np.ndarray) -> None:
        """In-place matched-pair averaging ``x ← M(t) x`` on ``loads``."""
        if self.using_numba:  # pragma: no cover - needs numba
            _numba_kernels().average(loads, partner)
        else:
            apply_matching(loads, partner, out=loads)
