"""Structure theory behind the analysis (Section 4.3–4.4 of the paper).

This module makes the objects of the analysis computable so the benchmarks
can check the lemmas empirically:

* ``χ̃_i`` — the projection of the eigenvector ``f_i`` onto
  ``span{χ_{S_1}, ..., χ_{S_k}}`` (Lemma 4.4, imported from Peng et al.);
* ``χ̂_i`` — the Gram–Schmidt orthonormalisation of the ``χ̃_i``
  (Lemma 4.2), with the error bound ``E = Θ(k √(k/Υ))``;
* ``α_v`` — the per-node contribution to the total error (equation (4));
* the *good node* predicate and the bound on the number of bad nodes used by
  the proof of Theorem 1.1;
* the theoretical misclassification bound itself, for comparison with
  measured values in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..graphs.spectral import gap_parameter_upsilon, spectral_decomposition

__all__ = [
    "structure_vectors",
    "alpha_values",
    "error_bound_E",
    "good_node_threshold",
    "good_nodes_mask",
    "StructureTheoryReport",
    "structure_theory_report",
]


def structure_vectors(graph: Graph, partition: Partition) -> tuple[np.ndarray, np.ndarray]:
    """Compute the matrices of ``χ̃_i`` and ``χ̂_i`` (columns ``i = 1..k``).

    ``χ̃_i`` is the orthogonal projection of the eigenvector ``f_i`` onto the
    span of the normalised cluster indicators; ``χ̂_i`` is the Gram–Schmidt
    orthonormalisation of the ``χ̃_i`` (Lemma 4.2).  If some ``χ̃_i`` is (near)
    linearly dependent on the previous ones — possible only when the graph is
    far from well-clustered — the corresponding ``χ̂_i`` falls back to the
    normalised ``χ̃_i`` component, keeping the output well-defined.
    """
    k = partition.k
    dec = spectral_decomposition(graph, num=k)
    f = dec.top_k(k)  # (n, k)

    # Orthonormal basis of span{χ_S1, ..., χ_Sk}: the indicators are already
    # orthogonal (disjoint supports); normalise them.
    chi = partition.indicator_matrix(normalised=True)  # columns χ_Si (entries 1/|S_i|)
    basis = chi / np.linalg.norm(chi, axis=0, keepdims=True)

    # χ̃_i = projection of f_i on the span.
    coeffs = basis.T @ f  # (k, k)
    chi_tilde = basis @ coeffs

    # Gram–Schmidt on the columns of χ̃ to get the orthonormal set χ̂.
    chi_hat = np.zeros_like(chi_tilde)
    for i in range(k):
        v = chi_tilde[:, i].copy()
        for j in range(i):
            v -= (chi_hat[:, j] @ v) * chi_hat[:, j]
        norm = np.linalg.norm(v)
        if norm < 1e-12:
            # Degenerate direction: fall back to the i-th basis vector made
            # orthogonal to the previous χ̂.
            v = basis[:, i].copy()
            for j in range(i):
                v -= (chi_hat[:, j] @ v) * chi_hat[:, j]
            norm = np.linalg.norm(v)
        chi_hat[:, i] = v / norm
    return chi_tilde, chi_hat


def alpha_values(graph: Graph, partition: Partition) -> np.ndarray:
    """Per-node error contributions ``α_v = sqrt(Σ_i (f_i(v) - χ̂_i(v))²)`` (eq. (4))."""
    k = partition.k
    dec = spectral_decomposition(graph, num=k)
    f = dec.top_k(k)
    _, chi_hat = structure_vectors(graph, partition)
    return np.sqrt(np.sum((f - chi_hat) ** 2, axis=1))


def error_bound_E(k: int, upsilon: float) -> float:
    """The Lemma 4.2 error bound ``E = Θ(k √(k/Υ))`` with the constant set to 1."""
    if upsilon <= 0:
        return float("inf")
    return float(k * np.sqrt(k / upsilon))


def good_node_threshold(
    n: int, k: int, beta: float, upsilon: float, *, constant: float = 1.0
) -> float:
    """The good-node cutoff ``k · E · sqrt(C log n log(1/β) / (β n))`` (Section 4.1)."""
    e_bound = error_bound_E(k, upsilon)
    log_beta = np.log(1.0 / beta) if beta < 1.0 else 1.0
    return float(k * e_bound * np.sqrt(constant * np.log(max(n, 2)) * log_beta / (beta * n)))


def good_nodes_mask(
    graph: Graph,
    partition: Partition,
    *,
    constant: float = 1.0,
    upsilon: float | None = None,
) -> np.ndarray:
    """Boolean mask of *good* nodes (``α_v`` below the cutoff)."""
    alphas = alpha_values(graph, partition)
    ups = upsilon if upsilon is not None else gap_parameter_upsilon(graph, partition)
    cutoff = good_node_threshold(
        graph.n, partition.k, partition.min_cluster_fraction(), ups, constant=constant
    )
    return alphas <= cutoff


@dataclass(frozen=True)
class StructureTheoryReport:
    """Empirical check of Lemma 4.2 and the good-node argument on one instance."""

    k: int
    upsilon: float
    error_bound: float
    max_eigenvector_distance: float
    total_alpha_squared: float
    num_good_nodes: int
    num_bad_nodes: int
    bad_node_bound: float

    @property
    def lemma42_holds(self) -> bool:
        """Whether ``max_i ‖χ̂_i - f_i‖`` is within the (constant-1) bound ``E``."""
        return self.max_eigenvector_distance <= self.error_bound

    def as_dict(self) -> dict:
        return {
            "k": self.k,
            "upsilon": self.upsilon,
            "error_bound_E": self.error_bound,
            "max_eigenvector_distance": self.max_eigenvector_distance,
            "total_alpha_squared": self.total_alpha_squared,
            "num_good_nodes": self.num_good_nodes,
            "num_bad_nodes": self.num_bad_nodes,
            "bad_node_bound": self.bad_node_bound,
            "lemma42_holds": self.lemma42_holds,
        }


def structure_theory_report(
    graph: Graph, partition: Partition, *, constant: float = 1.0
) -> StructureTheoryReport:
    """Evaluate Lemma 4.2 / the good-node counting argument on a given instance."""
    k = partition.k
    upsilon = gap_parameter_upsilon(graph, partition)
    dec = spectral_decomposition(graph, num=k)
    f = dec.top_k(k)
    _, chi_hat = structure_vectors(graph, partition)
    distances = np.linalg.norm(chi_hat - f, axis=0)
    alphas = alpha_values(graph, partition)
    beta = partition.min_cluster_fraction()
    cutoff = good_node_threshold(graph.n, k, beta, upsilon, constant=constant)
    good = alphas <= cutoff
    # The averaging argument of the proof bounds the number of bad nodes by
    # kE² / cutoff² = βn / (C k log n log(1/β)).
    log_beta = np.log(1.0 / beta) if beta < 1.0 else 1.0
    bad_bound = beta * graph.n / (constant * k * np.log(max(graph.n, 2)) * log_beta)
    return StructureTheoryReport(
        k=k,
        upsilon=upsilon,
        error_bound=error_bound_E(k, upsilon),
        max_eigenvector_distance=float(distances.max()),
        total_alpha_squared=float(np.sum(alphas ** 2)),
        num_good_nodes=int(good.sum()),
        num_bad_nodes=int((~good).sum()),
        bad_node_bound=float(bad_bound),
    )
