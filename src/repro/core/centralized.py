"""Centralised (matrix) implementation of the clustering algorithm.

Section 3.2 of the paper observes that the distributed algorithm is exactly a
multi-dimensional load balancing process: ``s`` seed vectors evolve under the
same random matching in every round.  This module runs that process directly
with vectorised NumPy updates — the "natural centralised algorithm for graph
clustering" the introduction mentions — and is the work-horse of the
benchmarks (it is orders of magnitude faster than the message-level
simulation while provably computing the same distribution of outputs; the
test-suite cross-checks the two implementations on shared random matchings).

The heavy lifting per round is one fancy-indexed averaging over all matched
pairs and all ``s`` dimensions at once, so the total work is
``O(T · (n + m/d) · s)`` — matching the paper's near-linear running time
remark (Section 1.2).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..loadbalancing.matching import matching_to_edge_list, sample_random_matching
from ..loadbalancing.models import AveragingModel
from ..loadbalancing.process import MultiDimensionalLoadBalancing
from .parameters import AlgorithmParameters
from .query import assign_labels_from_loads
from .result import ClusteringResult
from .seeding import assign_seed_identifiers, sample_seeds, seed_load_matrix

__all__ = ["CentralizedClustering", "cluster_graph"]


class CentralizedClustering:
    """Run the load-balancing clustering algorithm as a matrix process.

    Parameters
    ----------
    graph:
        The input graph.
    parameters:
        Algorithm parameters (see :class:`~repro.core.parameters.AlgorithmParameters`).
    seed:
        Seed for all randomness (seeding trials, identifiers, matchings).
    averaging_model:
        Optional alternative averaging substrate (diffusion, maximal
        matching, ...) used by the E12 ablation; ``None`` uses the paper's
        random matching model.
    fallback:
        Query-procedure fallback policy (see :mod:`repro.core.query`).

    Examples
    --------
    >>> from repro.graphs import cycle_of_cliques
    >>> from repro.core import CentralizedClustering, AlgorithmParameters
    >>> instance = cycle_of_cliques(4, 25, seed=0)
    >>> params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
    >>> result = CentralizedClustering(instance.graph, params, seed=1).run()
    >>> result.error_against(instance.partition) < 0.1
    True
    """

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        averaging_model: AveragingModel | None = None,
        fallback: str = "argmax",
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        self.graph = graph
        self.parameters = parameters
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._averaging_model = averaging_model
        self._fallback = fallback

    # ------------------------------------------------------------------ #
    # The three procedures
    # ------------------------------------------------------------------ #

    def run(
        self,
        *,
        round_callback: Callable[[int, np.ndarray], None] | None = None,
        keep_loads: bool = True,
    ) -> ClusteringResult:
        """Execute seeding, averaging and query; returns a :class:`ClusteringResult`.

        ``round_callback(t, loads)`` is invoked after every averaging round
        with the current ``(n, s)`` configuration — used by benchmarks that
        track the per-round error (E2, E6).
        """
        params = self.parameters
        n = self.graph.n

        # --- Seeding procedure ------------------------------------------------
        seeds = sample_seeds(params, self._rng)
        seed_ids = assign_seed_identifiers(seeds, params, self._rng)
        loads = seed_load_matrix(n, seeds)

        # --- Averaging procedure ----------------------------------------------
        matched_edges: list[int] = []
        if seeds.size == 0:
            # Degenerate but possible: no node became active.  The query
            # procedure then labels every node arbitrarily; we return the
            # all-zero labelling and flag every node as unlabelled.
            labels = np.zeros(n, dtype=np.int64)
            return ClusteringResult(
                labels=labels,
                partition=Partition.from_labels(labels),
                seeds=seeds,
                seed_ids=seed_ids,
                rounds=0,
                parameters=params,
                loads=np.zeros((n, 0)) if keep_loads else None,
                unlabelled=np.ones(n, dtype=bool),
                diagnostics={"matched_edges_per_round": []},
            )

        if self._averaging_model is None:
            process = MultiDimensionalLoadBalancing(
                self.graph, loads, rng=self._rng, matching_sampler=sample_random_matching
            )
            for t in range(params.rounds):
                process.step()
                if round_callback is not None:
                    round_callback(t, process.loads)
            loads = process.loads
            matched_edges = process.matched_edges_per_round
        else:
            current = loads
            for t in range(params.rounds):
                current = self._averaging_model.step(current, self._rng)
                matched = getattr(self._averaging_model, "last_matched_edges", None)
                matched_edges.append(int(matched) if matched is not None else -1)
                if round_callback is not None:
                    round_callback(t, current)
            loads = current

        # --- Query procedure --------------------------------------------------
        labels, unlabelled = assign_labels_from_loads(
            loads, seed_ids, params.threshold, fallback=self._fallback
        )
        # Partition normalisation requires non-negative labels; map the
        # unlabelled marker -1 (only present with fallback="none") to a fresh
        # label so those nodes form their own "unknown" cluster.
        partition_labels = labels.copy()
        if np.any(partition_labels < 0):
            partition_labels[partition_labels < 0] = int(partition_labels.max()) + 1

        return ClusteringResult(
            labels=labels,
            partition=Partition.from_labels(partition_labels),
            seeds=seeds,
            seed_ids=seed_ids,
            rounds=params.rounds,
            parameters=params,
            loads=loads if keep_loads else None,
            unlabelled=unlabelled,
            diagnostics={"matched_edges_per_round": matched_edges},
        )


def cluster_graph(
    graph: Graph,
    k: int,
    *,
    beta: float | None = None,
    rounds: int | None = None,
    seed: int | None = None,
    fallback: str = "argmax",
) -> ClusteringResult:
    """One-call convenience API: cluster ``graph`` into (about) ``k`` clusters.

    Derives the paper's parameters from the graph spectrum (``T`` from
    ``1 - λ_{k+1}``, ``β`` defaulting to ``1/(2k)``) and runs the centralised
    implementation.  This is the entry point used by the quickstart example.
    """
    params = AlgorithmParameters.from_graph(graph, k, beta=beta)
    if rounds is not None:
        params = params.with_rounds(rounds)
    return CentralizedClustering(graph, params, seed=seed, fallback=fallback).run()
