"""Centralised (matrix) implementation of the clustering algorithm.

Section 3.2 of the paper observes that the distributed algorithm is exactly a
multi-dimensional load balancing process: ``s`` seed vectors evolve under the
same random matching in every round.  This driver runs that process directly
with vectorised NumPy updates — the "natural centralised algorithm for graph
clustering" the introduction mentions — by delegating to the shared
:class:`~repro.core.engines.VectorizedEngine` (the array round-engine
backend) and the backend-agnostic result assembly.

The heavy lifting per round is one fancy-indexed averaging over all matched
pairs and all ``s`` dimensions at once, so the total work is
``O(T · (n + m/d) · s)`` — matching the paper's near-linear running time
remark (Section 1.2).

One historical detail: this driver pins the engine's matching sampler to the
original :func:`~repro.loadbalancing.matching.sample_random_matching` (one
oracle draw per active node, in node order) so that every seeded experiment
recorded before the engine refactor reproduces bit-for-bit.  New code that
wants maximum throughput should use
:class:`~repro.core.distributed.DistributedClustering` with
``backend="vectorized"``, which uses the fully vectorised sampler.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..loadbalancing.matching import sample_random_matching
from ..loadbalancing.models import AveragingModel
from .engines import VectorizedEngine, build_clustering_result
from .parameters import AlgorithmParameters
from .result import ClusteringResult

__all__ = ["CentralizedClustering", "cluster_graph"]


class CentralizedClustering:
    """Run the load-balancing clustering algorithm as a matrix process.

    Parameters
    ----------
    graph:
        The input graph.
    parameters:
        Algorithm parameters (see :class:`~repro.core.parameters.AlgorithmParameters`).
    seed:
        Seed for all randomness (seeding trials, identifiers, matchings).
    averaging_model:
        Optional alternative averaging substrate (diffusion, maximal
        matching, ...) used by the E12 ablation; ``None`` uses the paper's
        random matching model.
    fallback:
        Query-procedure fallback policy (see :mod:`repro.core.query`).

    Examples
    --------
    >>> from repro.graphs import cycle_of_cliques
    >>> from repro.core import CentralizedClustering, AlgorithmParameters
    >>> instance = cycle_of_cliques(4, 25, seed=0)
    >>> params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
    >>> result = CentralizedClustering(instance.graph, params, seed=1).run()
    >>> result.error_against(instance.partition) < 0.1
    True
    """

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        averaging_model: AveragingModel | None = None,
        fallback: str = "argmax",
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        self.graph = graph
        self.parameters = parameters
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._averaging_model = averaging_model
        self._fallback = fallback

    def run(
        self,
        *,
        round_callback=None,
        keep_loads: bool = True,
    ) -> ClusteringResult:
        """Execute seeding, averaging and query; returns a :class:`ClusteringResult`.

        ``round_callback(t, loads)`` is invoked after every averaging round
        with a snapshot of the current ``(n, s)`` configuration — used by
        benchmarks that track the per-round error (E2, E6).
        """
        engine = VectorizedEngine(
            self.graph,
            self.parameters,
            rng=self._rng,
            fallback=self._fallback,
            # An averaging model owns its own matching step; otherwise pin
            # the legacy sampler for bit-for-bit seeded reproducibility.
            matching_sampler=(
                None if self._averaging_model is not None else sample_random_matching
            ),
            averaging_model=self._averaging_model,
        )
        return build_clustering_result(
            engine.run(round_callback=round_callback),
            self.parameters,
            fallback=self._fallback,
            keep_loads=keep_loads,
        )


def cluster_graph(
    graph: Graph,
    k: int,
    *,
    beta: float | None = None,
    rounds: int | None = None,
    seed: int | None = None,
    fallback: str = "argmax",
) -> ClusteringResult:
    """One-call convenience API: cluster ``graph`` into (about) ``k`` clusters.

    Derives the paper's parameters from the graph spectrum (``T`` from
    ``1 - λ_{k+1}``, ``β`` defaulting to ``1/(2k)``) and runs the centralised
    implementation.  This is the entry point used by the quickstart example.
    """
    params = AlgorithmParameters.from_graph(graph, k, beta=beta)
    if rounds is not None:
        params = params.with_rounds(rounds)
    return CentralizedClustering(graph, params, seed=seed, fallback=fallback).run()
