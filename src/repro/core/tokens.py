"""Token-based (indivisible-load) variant of the clustering algorithm.

An extension beyond the paper: the Averaging Procedure moves *real-valued*
load, which in a real system means shipping floating-point numbers.  The
discrete load balancing literature the paper builds on suggests an
alternative with even cheaper messages: every seed injects ``tokens_per_seed``
indivisible tokens at itself, matched nodes split each seed's tokens as
evenly as integers allow (randomised rounding for the odd token), and the
query step labels a node by the smallest seed identifier holding at least
``threshold · tokens_per_seed`` of that seed's tokens at the node.

With ``tokens_per_seed → ∞`` this converges to the paper's algorithm; with a
moderate budget (a few hundred tokens per seed) messages shrink to small
integers while accuracy is essentially unchanged on well-clustered graphs —
which is what the accompanying tests and the E12-style ablation verify.  This
module is marked as an extension in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..loadbalancing.matching import matching_to_edge_list, sample_random_matching
from .parameters import AlgorithmParameters
from .result import ClusteringResult
from .seeding import assign_seed_identifiers, sample_seeds

__all__ = ["TokenClustering"]


class TokenClustering:
    """Clustering by multi-dimensional *discrete* load balancing.

    Parameters
    ----------
    graph:
        Input graph.
    parameters:
        The usual :class:`~repro.core.parameters.AlgorithmParameters`; the
        query threshold is interpreted as a *fraction of the token budget*
        scaled by ``n`` (i.e. a node needs ``threshold · n · tokens_per_seed``
        tokens — the integer analogue of the continuous rule, where loads are
        measured in units of ``1/tokens_per_seed``).
    tokens_per_seed:
        Token budget injected by every seed node.
    """

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        tokens_per_seed: int = 256,
        seed: int | None = None,
        fallback: str = "argmax",
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        if tokens_per_seed < 1:
            raise ValueError("tokens_per_seed must be positive")
        self.graph = graph
        self.parameters = parameters
        self.tokens_per_seed = int(tokens_per_seed)
        self._seed = seed
        self._fallback = fallback

    def run(self) -> ClusteringResult:
        params = self.parameters
        rng = np.random.default_rng(self._seed)
        n = self.graph.n

        seeds = sample_seeds(params, rng)
        seed_ids = assign_seed_identifiers(seeds, params, rng)
        s = seeds.size
        if s == 0:
            labels = np.zeros(n, dtype=np.int64)
            return ClusteringResult(
                labels=labels,
                partition=Partition.from_labels(labels),
                seeds=seeds,
                seed_ids=seed_ids,
                rounds=0,
                parameters=params,
                unlabelled=np.ones(n, dtype=bool),
            )

        tokens = np.zeros((n, s), dtype=np.int64)
        tokens[seeds, np.arange(s)] = self.tokens_per_seed

        for _ in range(params.rounds):
            partner = sample_random_matching(self.graph, rng)
            pairs = matching_to_edge_list(partner)
            if pairs.shape[0] == 0:
                continue
            u, v = pairs[:, 0], pairs[:, 1]
            sums = tokens[u] + tokens[v]  # (pairs, s)
            low = sums // 2
            odd = sums - 2 * low  # 0 or 1 per (pair, seed)
            coin = rng.integers(0, 2, size=sums.shape)
            u_gets = low + odd * coin
            v_gets = sums - u_gets
            tokens[u] = u_gets
            tokens[v] = v_gets

        # Query: the integer analogue of "x >= threshold" in units of
        # 1/tokens_per_seed.
        token_threshold = params.threshold * self.tokens_per_seed * 1.0
        qualifies = tokens >= max(token_threshold, 1.0)
        has_qualifying = qualifies.any(axis=1)
        ids_matrix = np.where(qualifies, seed_ids[np.newaxis, :], np.iinfo(np.int64).max)
        labels = np.full(n, -1, dtype=np.int64)
        labels[has_qualifying] = ids_matrix.min(axis=1)[has_qualifying]
        unlabelled = ~has_qualifying
        if self._fallback == "argmax":
            rows = np.flatnonzero(unlabelled)
            if rows.size:
                labels[rows] = seed_ids[np.argmax(tokens[rows], axis=1)]

        partition_labels = labels.copy()
        if np.any(partition_labels < 0):
            partition_labels[partition_labels < 0] = int(partition_labels.max()) + 1

        return ClusteringResult(
            labels=labels,
            partition=Partition.from_labels(partition_labels),
            seeds=seeds,
            seed_ids=seed_ids,
            rounds=params.rounds,
            parameters=params,
            loads=tokens.astype(np.float64) / self.tokens_per_seed,
            unlabelled=unlabelled,
            diagnostics={"tokens_per_seed": self.tokens_per_seed},
        )
