"""The concrete round-engine backends and the shared result assembly.

This module implements the :class:`~repro.distsim.engine.RoundEngine`
contract three times:

* :class:`MessagePassingEngine` — the faithful per-node backend.  It drives
  the original :class:`~repro.distsim.network.SynchronousNetwork` simulator
  with the four-phase protocol of
  :class:`~repro.core.protocol.LoadBalancingClusteringAlgorithm`, and is the
  only backend with exact communication accounting.
* :class:`VectorizedEngine` — the array backend.  Seeding, matching and
  averaging are whole-graph array operations: matchings are generated in
  batches by the fully vectorised sampler
  (:func:`~repro.loadbalancing.matching.sample_random_matching_fast`) and a
  round is one in-place fancy-indexed averaging over all ``s`` seed
  dimensions at once (``X ← M(t) X`` without forming ``M(t)``).  This is
  what makes ``n = 10^5`` runs take seconds instead of hours.
* :class:`ParallelEngine` — the threaded backend.  Each round is two fused
  loops over the CSR arrays (proposal + resolution, then matched-pair
  averaging) compiled by numba's ``njit(parallel=True)``
  (:mod:`repro.core.kernels`); all randomness is counter-based, so results
  are bit-identical across thread counts and repeat runs.  numba is an
  optional extra — the ``parallel`` factory falls back to
  :class:`VectorizedEngine` (with a warning) when it is missing, as it does
  for memory-mapped graphs, which need the vectorised engine's blocked
  gathers.

All backends execute the *same protocol distribution*; the parity suite
(``tests/integration/test_backend_parity.py``) holds them to statistically
equivalent clusterings on the generator families.

Failure injection (:mod:`repro.distsim.failures`) is accepted by **every**
backend.  The array backends bind the model to the engine's counter seed and
route each round through the masked resolution
(:func:`~repro.loadbalancing.matching.resolve_proposals_masked`): an alive
mask filters crashed endpoints, delivery masks drop propose/accept/commit
messages, and a pair whose commit drops leaves the acceptor's load stale —
the same semantics, message for message, as the per-node simulator.  With
the vectorized engine in ``rng_mode="counter"`` (or the parallel engine,
whose round stream is always counter-based) and the
:class:`MaskedMessagePassingEngine` adapter, failure runs are **bit-identical
across backends** for the same seed — pinned by
``tests/integration/test_failure_parity.py``.

:func:`build_clustering_result` is the single, backend-agnostic path from an
:class:`~repro.distsim.engine.EngineResult` to the user-facing
:class:`~repro.core.result.ClusteringResult` — the query step, the partition
normalisation and the diagnostics wiring previously duplicated between the
centralised and distributed drivers live here now.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

import numpy as np

from .._accel import HAVE_NUMBA, numba, resolve_threads
from ..distsim.engine import (
    EngineResult,
    RoundCallback,
    RoundEngine,
    get_engine_factory,
    register_engine,
)
from ..distsim.failures import FailureModel
from ..distsim.network import SynchronousNetwork
from ..distsim.node import NodeContext
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..loadbalancing.matching import (
    apply_masked_matching,
    apply_matching,
    count_matched_edges,
    resolve_proposals_masked,
    sample_matching_proposals,
    sample_random_matchings,
)
from ..loadbalancing.models import AveragingModel
from .kernels import ParallelMatchingKernel
from .parameters import AlgorithmParameters
from .protocol import CounterDrivenClusteringAlgorithm, LoadBalancingClusteringAlgorithm
from .query import assign_labels_from_loads
from .result import ClusteringResult
from .seeding import assign_seed_identifiers, sample_seeds, seed_load_matrix
from .state import NodeState

__all__ = [
    "DEFAULT_BACKEND",
    "MessagePassingEngine",
    "MaskedMessagePassingEngine",
    "VectorizedEngine",
    "ParallelEngine",
    "make_engine",
    "build_clustering_result",
]


def _fresh_counter_seed(seed: int | None) -> int:
    """64-bit counter-stream base: the run seed, or fresh OS entropy."""
    if seed is not None:
        return int(seed)
    return int(np.random.SeedSequence().entropy) & ((1 << 64) - 1)


def _deliver_adapter(failures: FailureModel, round_index: int):
    """Adapt ``deliver_mask`` to the kind-keyed callable the resolver takes."""

    def deliver(kind: str, senders: np.ndarray, receivers: np.ndarray):
        return failures.deliver_mask(round_index, kind, senders, receivers)

    return deliver

#: Backend used by :class:`~repro.core.distributed.DistributedClustering`
#: when none is requested: the faithful simulator, because exact
#: communication accounting is the reason to run the distributed driver.
DEFAULT_BACKEND = "message-passing"


# --------------------------------------------------------------------------- #
# Per-node (message passing) backend
# --------------------------------------------------------------------------- #

def _seed_columns(contexts: list[NodeContext]) -> tuple[np.ndarray, np.ndarray]:
    """Seed node ids (ascending) and their identifiers from the node states."""
    seeds = np.asarray(
        [ctx.node_id for ctx in contexts if ctx.state.get("is_seed", False)],
        dtype=np.int64,
    )
    seed_ids = np.asarray(
        [contexts[int(v)].state["id"] for v in seeds], dtype=np.int64
    )
    return seeds, seed_ids


def _loads_from_contexts(
    contexts: list[NodeContext], seed_ids: np.ndarray
) -> np.ndarray:
    """Reconstruct the global ``(n, s)`` configuration from per-node states.

    A real deployment could not do this (no global view exists); the
    simulator does it for diagnostics and for cross-checking against the
    array backend.
    """
    n = len(contexts)
    loads = np.zeros((n, seed_ids.size), dtype=np.float64)
    id_to_column = {int(identifier): i for i, identifier in enumerate(seed_ids)}
    for v in range(n):
        load: NodeState = contexts[v].state["load"]
        for prefix, value in load:
            column = id_to_column.get(int(prefix))
            if column is not None:
                loads[v, column] = value
    return loads


class MessagePassingEngine(RoundEngine):
    """Round engine running the protocol on the per-node simulator.

    Every node is an isolated :class:`~repro.distsim.node.NodeContext` with
    its own random stream; the only inter-node channel is the message queue,
    so the recorded communication is exactly what a real deployment would
    send.  Supports failure injection.  Sequential Python under the hood —
    fidelity, not speed.
    """

    name = "message-passing"
    labels_locally = True

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        fallback: str = "argmax",
        degree_cap: int | None = None,
        failures: FailureModel | None = None,
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        self.graph = graph
        self.parameters = parameters
        self._seed = seed
        #: Query fallback the nodes apply locally in ``finalise``; public so
        #: a driver handed a pre-built engine can detect a conflicting
        #: fallback request (see :func:`make_engine`).
        self.fallback = fallback
        self._degree_cap = degree_cap
        self._failures = failures

    def run(self, *, round_callback: RoundCallback | None = None) -> EngineResult:
        self._claim_single_use()
        config: dict[str, Any] = {
            "parameters": self.parameters,
            "fallback": self.fallback,
        }
        if self._degree_cap is not None:
            config["degree_cap"] = int(self._degree_cap)
        network = SynchronousNetwork(
            self.graph,
            LoadBalancingClusteringAlgorithm(),
            seed=self._seed,
            config=config,
            failures=self._failures,
        )

        network_callback = None
        if round_callback is not None:
            # Seeds and identifiers are fixed after initialise; compute the
            # column layout once instead of per round.
            seed_ids_holder: list[np.ndarray] = []

            def network_callback(round_index: int, net: SynchronousNetwork) -> None:
                if not seed_ids_holder:
                    seed_ids_holder.append(_seed_columns(net.contexts)[1])
                round_callback(
                    round_index,
                    _loads_from_contexts(net.contexts, seed_ids_holder[0]),
                )

        sim = network.run(self.parameters.rounds, round_callback=network_callback)

        contexts = sim.contexts
        seeds, seed_ids = _seed_columns(contexts)
        labels = np.asarray(
            [ctx.state.get("label", -1) for ctx in contexts], dtype=np.int64
        )
        unlabelled = np.asarray(
            [bool(ctx.state.get("unlabelled", True)) for ctx in contexts], dtype=bool
        )
        matched_per_round = [
            stats.by_kind.get("accept", 0) for stats in sim.communication.rounds
        ]
        return EngineResult(
            rounds_executed=sim.rounds_executed,
            loads=_loads_from_contexts(contexts, seed_ids),
            seeds=seeds,
            seed_ids=seed_ids,
            matched_edges_per_round=matched_per_round,
            labels=labels,
            unlabelled=unlabelled,
            communication=sim.communication,
            trace=sim.trace,
            metadata={"backend": self.name, "fallback": self.fallback, **sim.metadata},
        )


class MaskedMessagePassingEngine(RoundEngine):
    """Per-node simulator driven by the counter streams of the array backends.

    The cross-backend failure parity adapter: the same four-phase protocol
    and the same :class:`~repro.distsim.network.SynchronousNetwork` as
    :class:`MessagePassingEngine`, but with every random decision replaced
    by its counter-stream twin so a run is **bit-identical** to
    :class:`VectorizedEngine` (``rng_mode="counter"``) and
    :class:`ParallelEngine` under the same integer ``seed``:

    * seeds and identifiers are computed centrally with the *same*
      ``default_rng(seed)`` calls as the array backends and injected into
      the node configuration;
    * protocol coins come from
      :class:`~repro.core.protocol.CounterDrivenClusteringAlgorithm` — the
      scalar twin of kernel pass 1;
    * the failure model is *bound* to the counter seed, so drop/crash
      decisions match the array backends' masks message for message;
    * the query runs centrally at result assembly (``labels_locally`` is
      false), on exactly the load matrix the array backends produce — the
      per-node argmax fallback breaks ties differently, so local labels
      would diverge on ties.

    Still sequential per-node Python under the hood: use it at cross-check
    sizes, not at n = 10⁶.  Communication accounting works as on the plain
    per-node backend.
    """

    name = "masked-message-passing"
    labels_locally = False

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        fallback: str = "argmax",
        degree_cap: int | None = None,
        failures: FailureModel | None = None,
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        if degree_cap is not None and degree_cap < graph.max_degree:
            raise ValueError(
                f"degree cap D={degree_cap} must be at least the maximum "
                f"degree {graph.max_degree}"
            )
        self.graph = graph
        self.parameters = parameters
        #: Declared query fallback, applied at result assembly (see class doc).
        self.fallback = fallback
        self._rng = np.random.default_rng(seed)
        self._counter_seed = _fresh_counter_seed(seed)
        self._degree_cap = degree_cap
        self._failures = failures

    def run(self, *, round_callback: RoundCallback | None = None) -> EngineResult:
        self._claim_single_use()
        params = self.parameters
        graph = self.graph

        # Seeding identical, call for call, to the array backends.
        seeds = sample_seeds(params, self._rng)
        seed_ids = assign_seed_identifiers(seeds, params, self._rng)

        config: dict[str, Any] = {
            "parameters": params,
            "fallback": self.fallback,
            "counter_seed": self._counter_seed,
            "seed_identifiers": {
                int(v): int(i) for v, i in zip(seeds, seed_ids)
            },
        }
        if self._degree_cap is not None:
            config["degree_cap"] = int(self._degree_cap)
        network = SynchronousNetwork(
            graph,
            CounterDrivenClusteringAlgorithm(),
            seed=self._counter_seed,
            config=config,
            failures=self._failures,
            failure_bind_seed=(
                self._counter_seed if self._failures is not None else None
            ),
        )

        network_callback = None
        if round_callback is not None:

            def network_callback(round_index: int, net: SynchronousNetwork) -> None:
                round_callback(
                    round_index, _loads_from_contexts(net.contexts, seed_ids)
                )

        sim = network.run(params.rounds, round_callback=network_callback)
        matched_per_round = [
            stats.by_kind.get("accept", 0) for stats in sim.communication.rounds
        ]
        metadata = {
            "backend": self.name,
            "fallback": self.fallback,
            "rng_mode": "counter",
            **sim.metadata,
        }
        if self._failures is not None:
            metadata["failures"] = type(self._failures).__name__
        return EngineResult(
            rounds_executed=sim.rounds_executed,
            loads=_loads_from_contexts(sim.contexts, seed_ids),
            seeds=seeds,
            seed_ids=seed_ids,
            matched_edges_per_round=matched_per_round,
            communication=sim.communication,
            trace=sim.trace,
            metadata=metadata,
        )


# --------------------------------------------------------------------------- #
# Vectorized (array) backend
# --------------------------------------------------------------------------- #

class VectorizedEngine(RoundEngine):
    """Round engine executing whole rounds as array operations.

    Parameters
    ----------
    graph, parameters:
        The instance and the paper's parameters (β, T, s̄, threshold).
    seed / rng:
        Randomness for seeding, identifiers and matchings (one global
        stream; the per-node backend uses one stream per node instead, so
        the two backends agree in distribution, not bit-for-bit).
    rng_mode:
        Where the *round* randomness comes from.  ``"generator"`` (default)
        consumes the global generator stream — the engine's historical
        behaviour, preserved bit-for-bit.  ``"counter"`` draws the activity
        and slot coins from the splitmix64 counter streams of
        :mod:`repro.core.kernels` instead (the numpy reference path of the
        fused kernels), which makes the round schedule bit-identical to
        :class:`ParallelEngine` and :class:`MaskedMessagePassingEngine`
        under the same integer ``seed`` — the mode the cross-backend failure
        parity suite runs in.  Seeding stays on the generator stream in both
        modes (it already matches the sibling backends call for call).
    failures:
        Optional :class:`~repro.distsim.failures.FailureModel`.  The engine
        binds it to the counter seed and routes every round through the
        masked resolution: crashed nodes neither propose nor accept (their
        loads freeze), dropped proposes/accepts kill the pair before any
        averaging, and a dropped commit leaves the acceptor stale after the
        proposer averaged — matching the per-node simulator's semantics.
        ``NoFailures`` (or masks that are all-``None``) leaves the output
        bit-identical to ``failures=None``.
    degree_cap:
        Optional degree bound ``D`` enabling the Section 4.5 almost-regular
        protocol (virtual self-loops).
    fallback:
        Declared query fallback policy.  The array backend runs the query
        centrally at result assembly, where this declaration is applied
        unless the caller of :func:`build_clustering_result` requests a
        policy explicitly.
    matching_sampler:
        Per-round matching sampler override.  ``None`` uses the fully
        vectorised :func:`~repro.loadbalancing.matching.sample_random_matching_fast`;
        the centralised driver passes the legacy per-node-oracle sampler to
        keep historical seeded experiments bit-for-bit reproducible.
    averaging_model:
        Optional alternative averaging substrate (diffusion, maximal
        matching, ...) used by the E12 ablation; bypasses the matching path.
    batch_rounds:
        Matchings are pre-generated in chunks of this many rounds (they are
        independent of the load configuration, so generation and application
        decouple); purely a throughput/memory knob — the chunk buffer is
        ``(batch_rounds, n)`` int64 and chunking never changes the random
        stream.  ``None`` (default) resolves from the storage backend: 32
        for in-RAM graphs (the historical default), 2 for memory-mapped
        graphs, where a 32-round buffer (256 MB at n = 10⁶) would dwarf the
        adjacency the out-of-core substrate just moved off-RAM.
    block_size:
        Row-block size of the neighbour gather inside each round.  ``None``
        (default) resolves from the graph's storage backend: in-RAM graphs
        run the classic unblocked gather, memory-mapped graphs pick a block
        matching their shard layout so a round's resident set is O(block)
        rather than O(m).  Any explicit value forces blocked gathers of at
        most that many rows.  Blocked and unblocked execution are
        **bit-identical** for the same seed — all random draws are global;
        only the order in which the adjacency is touched changes.
    """

    name = "vectorized"

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        fallback: str = "argmax",
        degree_cap: int | None = None,
        failures: FailureModel | None = None,
        rng_mode: str = "generator",
        matching_sampler: Callable[[Graph, np.random.Generator], np.ndarray] | None = None,
        averaging_model: AveragingModel | None = None,
        batch_rounds: int | None = None,
        block_size: int | None = None,
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        if rng_mode not in ("generator", "counter"):
            raise ValueError(
                f"rng_mode must be 'generator' or 'counter', got {rng_mode!r}"
            )
        if failures is not None and matching_sampler is not None:
            raise ValueError(
                "failures cannot be combined with a custom matching_sampler; "
                "the masked resolution needs the protocol's own proposal step"
            )
        if failures is not None and averaging_model is not None:
            raise ValueError(
                "failures cannot be combined with an averaging_model; "
                "alternative substrates have no propose/accept/commit to fail"
            )
        if rng_mode == "counter" and matching_sampler is not None:
            raise ValueError(
                "rng_mode='counter' cannot be combined with a custom "
                "matching_sampler; the counter streams define the sampler"
            )
        if rng_mode == "counter" and averaging_model is not None:
            raise ValueError(
                "rng_mode='counter' cannot be combined with an averaging_model; "
                "the model owns its own randomness"
            )
        if batch_rounds is not None and batch_rounds < 1:
            raise ValueError("batch_rounds must be at least 1")
        if degree_cap is not None and degree_cap < graph.max_degree:
            raise ValueError(
                f"degree cap D={degree_cap} must be at least the maximum "
                f"degree {graph.max_degree}"
            )
        if degree_cap is not None and matching_sampler is not None:
            raise ValueError(
                "degree_cap cannot be combined with a custom matching_sampler; "
                "apply the cap inside the sampler instead"
            )
        if degree_cap is not None and averaging_model is not None:
            raise ValueError(
                "degree_cap cannot be combined with an averaging_model; "
                "apply the cap inside the model's own matching step instead"
            )
        if matching_sampler is not None and averaging_model is not None:
            raise ValueError(
                "matching_sampler cannot be combined with an averaging_model; "
                "the model owns its own matching step"
            )
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if block_size is not None and matching_sampler is not None:
            raise ValueError(
                "block_size cannot be combined with a custom matching_sampler; "
                "the sampler owns its own gather strategy"
            )
        if block_size is not None and averaging_model is not None:
            raise ValueError(
                "block_size cannot be combined with an averaging_model; "
                "the model owns its own adjacency access"
            )
        self.graph = graph
        self.parameters = parameters
        #: Declared query fallback, applied at result assembly (see class doc).
        self.fallback = fallback
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._counter_seed = _fresh_counter_seed(seed)
        self._rng_mode = rng_mode
        self._failures = failures
        self._degree_cap = degree_cap
        self._matching_sampler = matching_sampler
        self._averaging_model = averaging_model
        if batch_rounds is None:
            # Out-of-core graphs keep the matching buffer small so the
            # per-round resident set the blocked gather bought is not spent
            # on pre-generated matchings instead (see class doc).
            batch_rounds = 32 if graph.storage.in_memory else 2
        self._batch_rounds = int(batch_rounds)
        if (
            block_size is None
            and matching_sampler is None
            and averaging_model is None
            and not graph.storage.in_memory
        ):
            # Out-of-core graph: default to the storage's native blocking so
            # the round loop never materialises the full indices array.
            block_size = graph.storage.suggested_block_rows()
        self._block_size = block_size
        self._kernel = None
        if rng_mode == "counter":
            # The counter streams live in the fused kernels; this backend
            # always runs their numpy reference path (bit-identical to the
            # compiled kernels — that is the ParallelEngine's contract).
            self._kernel = ParallelMatchingKernel.from_storage(
                graph.storage,
                graph.degrees,
                seed=self._counter_seed,
                degree_cap=degree_cap,
                use_numba=False,
                block_size=self._block_size,
            )

    def run(self, *, round_callback: RoundCallback | None = None) -> EngineResult:
        self._claim_single_use()
        params = self.parameters
        graph = self.graph
        rng = self._rng

        # --- Seeding procedure (vectorised over all nodes/trials) ----------
        seeds = sample_seeds(params, rng)
        seed_ids = assign_seed_identifiers(seeds, params, rng)
        loads = seed_load_matrix(graph.n, seeds)
        metadata = {
            "backend": self.name,
            "n": graph.n,
            "m": graph.num_edges,
            "fallback": self.fallback,
            "rng_mode": self._rng_mode,
        }
        if self._failures is not None:
            metadata["failures"] = type(self._failures).__name__

        matched_edges: list[int] = []
        if seeds.size == 0:
            # Degenerate but possible: no node became active; there is no
            # load to average, so no rounds are executed.
            return EngineResult(
                rounds_executed=0,
                loads=loads,
                seeds=seeds,
                seed_ids=seed_ids,
                metadata=metadata,
            )

        # --- Averaging procedure -------------------------------------------
        if self._averaging_model is not None:
            current = loads
            for t in range(params.rounds):
                current = self._averaging_model.step(current, rng)
                matched = getattr(self._averaging_model, "last_matched_edges", None)
                matched_edges.append(int(matched) if matched is not None else -1)
                if round_callback is not None:
                    # Defensive copy: the RoundCallback contract promises a
                    # snapshot, and a model is free to reuse its buffer.
                    round_callback(t, current.copy())
            loads = current
        elif self._failures is None and self._rng_mode == "generator":
            t = 0
            while t < params.rounds:
                chunk = min(self._batch_rounds, params.rounds - t)
                matchings = sample_random_matchings(
                    graph,
                    rng,
                    chunk,
                    sampler=self._matching_sampler,
                    degree_cap=self._degree_cap,
                    block_size=self._block_size,
                )
                for i in range(chunk):
                    partner = matchings[i]
                    apply_matching(loads, partner, out=loads)
                    matched_edges.append(count_matched_edges(partner))
                    if round_callback is not None:
                        # Hand out a snapshot: the buffer is updated in place,
                        # so callers recording per-round history would
                        # otherwise end up with T references to the final
                        # configuration.  The copy only costs when a callback
                        # is registered; the hot path stays allocation-free.
                        round_callback(t + i, loads.copy())
                t += chunk
        else:
            # Masked round loop: proposals first (counter streams or the
            # generator stream, drawn per round — chunking never changed the
            # stream, so the generator-mode schedule is the same as above),
            # then the resolution with alive/delivery masks.  With
            # failures=NoFailures the masks are all-None and this loop is
            # bit-identical to the fast path.
            n = graph.n
            if self._failures is not None:
                self._failures.bind(n, self._counter_seed)
            for t in range(params.rounds):
                if self._kernel is not None:
                    active, proposers, targets = self._kernel.proposals(t)
                else:
                    active, proposers, targets = sample_matching_proposals(
                        graph,
                        rng,
                        degree_cap=self._degree_cap,
                        block_size=self._block_size,
                    )
                alive = deliver = None
                if self._failures is not None:
                    alive = self._failures.alive_mask(t, n)
                    deliver = _deliver_adapter(self._failures, t)
                pair_u, pair_v, commit_ok = resolve_proposals_masked(
                    n, active, proposers, targets, alive=alive, deliver=deliver
                )
                apply_masked_matching(loads, pair_u, pair_v, commit_ok)
                matched_edges.append(int(pair_u.size))
                if round_callback is not None:
                    round_callback(t, loads.copy())

        return EngineResult(
            rounds_executed=params.rounds,
            loads=loads,
            seeds=seeds,
            seed_ids=seed_ids,
            matched_edges_per_round=matched_edges,
            metadata=metadata,
        )


# --------------------------------------------------------------------------- #
# Parallel (threaded kernel) backend
# --------------------------------------------------------------------------- #

class ParallelEngine(RoundEngine):
    """Round engine executing fused threaded kernels over the CSR arrays.

    Each round is two compiled loops (:mod:`repro.core.kernels`): proposal +
    resolution of the three-step matching protocol, then in-place
    matched-pair load averaging.  All randomness inside the round loop is
    counter-based — node ``v``'s draw in round ``t`` is a hash of
    ``(seed, t, v)`` — so results are **bit-identical across thread counts
    and repeat runs**, and equivalent in distribution (not bit-for-bit) to
    the other backends.

    Parameters
    ----------
    graph, parameters:
        The instance and the paper's parameters.  Any storage backend
        works: in-memory graphs run the monolithic fused kernels over the
        CSR arrays; memory-mapped graphs run the *same* kernels
        block-sliced over ``iter_row_blocks`` (bit-identical — the
        counter-based draws depend only on ``(seed, round, node)``), so at
        most one shard-sized block of the adjacency is resident per sweep.
    seed:
        Seeding randomness (via ``numpy.random.default_rng``) and the base
        of the counter-based round streams.  ``None`` draws a fresh counter
        base from OS entropy.
    degree_cap:
        Optional degree bound ``D`` enabling the Section 4.5 almost-regular
        protocol (virtual self-loop slots), as on the other backends.
    failures:
        Optional :class:`~repro.distsim.failures.FailureModel`, bound to the
        counter seed.  Failure rounds run kernel pass 1 (the proposal step —
        compiled when numba is available) and then the masked numpy
        resolution/averaging, so the injected decisions are bit-identical
        across thread counts, with/without numba, and across backends
        (vectorized in counter mode, the masked per-node adapter) — the
        masks are pure functions of ``(seed, round, kind, node/edge)``.
    fallback:
        Declared query fallback policy, applied at result assembly.
    threads:
        Compute threads for the numba kernels; ``None`` uses the full pool.
        Requests above the pool size are clamped.  A pure performance knob:
        the counter-based draws make the result independent of it.  Ignored
        (with the kernels falling back to their single-threaded numpy
        reference path) when numba is not installed.
    use_numba:
        ``"auto"`` (default) compiles when numba is available; ``False``
        forces the bit-identical numpy reference path; ``True`` requires
        numba.
    """

    name = "parallel"

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        fallback: str = "argmax",
        degree_cap: int | None = None,
        failures: FailureModel | None = None,
        threads: int | None = None,
        use_numba: bool | str = "auto",
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        if degree_cap is not None and degree_cap < graph.max_degree:
            raise ValueError(
                f"degree cap D={degree_cap} must be at least the maximum "
                f"degree {graph.max_degree}"
            )
        if threads is not None and threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.graph = graph
        self.parameters = parameters
        #: Declared query fallback, applied at result assembly (see class doc).
        self.fallback = fallback
        self._rng = np.random.default_rng(seed)
        self._counter_seed = _fresh_counter_seed(seed)
        self._failures = failures
        self._degree_cap = degree_cap
        self._threads = threads
        self._use_numba = use_numba
        # Build the kernel now so configuration errors (use_numba=True
        # without numba) surface at construction, like every other knob.
        # from_storage keeps out-of-core backends block-sliced instead of
        # materialising an O(m) index array.
        self._kernel = ParallelMatchingKernel.from_storage(
            graph.storage,
            graph.degrees,
            seed=self._counter_seed,
            degree_cap=degree_cap,
            use_numba=use_numba,
        )

    def run(self, *, round_callback: RoundCallback | None = None) -> EngineResult:
        self._claim_single_use()
        params = self.parameters
        graph = self.graph
        rng = self._rng
        kernel = self._kernel

        # --- Seeding procedure (identical machinery to the vectorised path) --
        seeds = sample_seeds(params, rng)
        seed_ids = assign_seed_identifiers(seeds, params, rng)
        loads = seed_load_matrix(graph.n, seeds)
        threads = resolve_threads(self._threads) if kernel.using_numba else 1
        metadata = {
            "backend": self.name,
            "n": graph.n,
            "m": graph.num_edges,
            "fallback": self.fallback,
            "kernel": "numba-parallel" if kernel.using_numba else "numpy-reference",
            "blocked": kernel.blocked,
            "threads": threads,
        }
        if self._failures is not None:
            metadata["failures"] = type(self._failures).__name__

        matched_edges: list[int] = []
        if seeds.size == 0:
            return EngineResult(
                rounds_executed=0,
                loads=loads,
                seeds=seeds,
                seed_ids=seed_ids,
                metadata=metadata,
            )

        # --- Averaging procedure: fused rounds --------------------------------
        previous_threads = None
        if kernel.using_numba:  # pragma: no cover - needs numba
            previous_threads = numba.get_num_threads()
            numba.set_num_threads(threads)
        if self._failures is not None:
            self._failures.bind(graph.n, self._counter_seed)
        try:
            for t in range(params.rounds):
                if self._failures is None:
                    partner = kernel.round(t)
                    kernel.average(loads, partner)
                    matched_edges.append(count_matched_edges(partner))
                else:
                    # Failure round: kernel pass 1 (possibly compiled), then
                    # the masked resolution and averaging in numpy — masks
                    # never enter the compiled pass 2, so compiled and
                    # reference runs inject identical failures.
                    active, proposers, targets = kernel.proposals(t)
                    pair_u, pair_v, commit_ok = resolve_proposals_masked(
                        graph.n,
                        active,
                        proposers,
                        targets,
                        alive=self._failures.alive_mask(t, graph.n),
                        deliver=_deliver_adapter(self._failures, t),
                    )
                    apply_masked_matching(loads, pair_u, pair_v, commit_ok)
                    matched_edges.append(int(pair_u.size))
                if round_callback is not None:
                    # Snapshot: loads is updated in place (see VectorizedEngine).
                    round_callback(t, loads.copy())
        finally:
            if previous_threads is not None:  # pragma: no cover - needs numba
                numba.set_num_threads(previous_threads)

        return EngineResult(
            rounds_executed=params.rounds,
            loads=loads,
            seeds=seeds,
            seed_ids=seed_ids,
            matched_edges_per_round=matched_edges,
            metadata=metadata,
        )


# --------------------------------------------------------------------------- #
# Shared result assembly (query + partition normalisation)
# --------------------------------------------------------------------------- #

def build_clustering_result(
    engine_result: EngineResult,
    parameters: AlgorithmParameters,
    *,
    fallback: str | None = None,
    keep_loads: bool = True,
) -> ClusteringResult:
    """Turn an :class:`EngineResult` into the user-facing :class:`ClusteringResult`.

    If the backend already computed per-node labels (the message-passing
    nodes run the Query Procedure locally in ``finalise``) those are kept;
    otherwise the query is applied centrally to the final load
    configuration with ``fallback`` — ``None`` (default) adopts the policy
    the engine declared in its metadata (falling back to ``"argmax"``), so
    an engine configured with ``fallback="none"`` is honoured without the
    caller having to repeat the choice.  Either way the partition
    normalisation maps the unlabelled marker ``-1`` (present with
    ``fallback="none"`` or when no seed exists) to a fresh label so those
    nodes form their own cluster.
    """
    er = engine_result
    if fallback is None:
        fallback = er.metadata.get("fallback") or "argmax"
    labels = er.labels
    unlabelled = er.unlabelled
    if labels is None:
        if er.seed_ids.size == 0:
            # No seeds: the query has nothing to inspect; every node gets the
            # same arbitrary label and counts as unlabelled.
            labels = np.zeros(parameters.n, dtype=np.int64)
            unlabelled = np.ones(parameters.n, dtype=bool)
        else:
            labels, unlabelled = assign_labels_from_loads(
                er.loads, er.seed_ids, parameters.threshold, fallback=fallback
            )

    partition_labels = labels.copy()
    if np.any(partition_labels < 0):
        partition_labels[partition_labels < 0] = (
            int(partition_labels.max()) + 1 if partition_labels.max() >= 0 else 0
        )

    diagnostics: dict[str, Any] = {
        "matched_edges_per_round": list(er.matched_edges_per_round)
    }
    if er.metadata:
        metadata = dict(er.metadata)
        if er.labels is None:
            # The query ran centrally: record the policy actually applied,
            # which may override the engine's declared default.
            metadata["fallback"] = fallback
        diagnostics["simulation_metadata"] = metadata

    return ClusteringResult(
        labels=labels,
        partition=Partition.from_labels(partition_labels),
        seeds=er.seeds,
        seed_ids=er.seed_ids,
        rounds=er.rounds_executed,
        parameters=parameters,
        loads=er.loads if keep_loads else None,
        communication=er.communication,
        unlabelled=unlabelled,
        diagnostics=diagnostics,
    )


# --------------------------------------------------------------------------- #
# Factory + registration
# --------------------------------------------------------------------------- #

def make_engine(
    backend: str | RoundEngine,
    graph: Graph | None = None,
    parameters: AlgorithmParameters | None = None,
    **options: Any,
) -> RoundEngine:
    """Build a round engine from a backend name (or pass one through).

    ``options`` are forwarded to the backend constructor (``seed``,
    ``fallback``, ``degree_cap``, ``failures``, and backend-specific knobs).
    A pre-built engine is passed through — but then no construction options
    may be supplied: silently dropping them would let e.g. a ``failures``
    model vanish from a robustness experiment.
    """
    if isinstance(backend, RoundEngine):
        conflicting = []
        for key, value in options.items():
            if value is None:
                continue
            if key == "fallback":
                # Engines that run the query locally (labels_locally) apply
                # their own configured fallback; a differing — or
                # unverifiable, for an engine that declares none — request
                # would be silently overridden by the node-computed labels.
                # Engines that leave the query to result assembly honour the
                # request there, so no conflict arises.
                if backend.labels_locally and value != getattr(backend, "fallback", None):
                    conflicting.append(key)
            else:
                conflicting.append(key)
        if conflicting:
            raise ValueError(
                f"options {sorted(conflicting)} have no effect on a pre-built "
                "engine; configure the engine instance itself"
            )
        return backend
    if graph is None or parameters is None:
        raise ValueError("graph and parameters are required to build an engine by name")
    return get_engine_factory(backend)(graph, parameters, **options)


def _parallel_engine_factory(
    graph: Graph, parameters: AlgorithmParameters, **options: Any
) -> RoundEngine:
    """Build a :class:`ParallelEngine`, degrading gracefully where promised.

    One situation falls back to :class:`VectorizedEngine` with a warning
    instead of erroring: numba not installed (unless the caller forced a
    path with ``use_numba``, in which case :class:`ParallelEngine` decides).
    Memory-mapped storage no longer triggers a fallback — the kernels run
    block-sliced over ``iter_row_blocks`` with bit-identical results.  The
    parallel-only knobs are stripped before the fallback so the vectorised
    constructor sees only options it owns.
    """
    reason = None
    if options.get("use_numba", "auto") == "auto" and not HAVE_NUMBA:
        reason = "numba is not installed"
    if reason is not None:
        warnings.warn(
            f"backend 'parallel' unavailable ({reason}); "
            "falling back to the vectorized backend",
            RuntimeWarning,
            stacklevel=2,
        )
        for key in ("threads", "use_numba"):
            options.pop(key, None)
        return VectorizedEngine(graph, parameters, **options)
    return ParallelEngine(graph, parameters, **options)


register_engine(
    MessagePassingEngine.name,
    MessagePassingEngine,
    aliases=("message", "per-node", "simulator"),
)
register_engine(
    MaskedMessagePassingEngine.name,
    MaskedMessagePassingEngine,
    aliases=("masked",),
)
register_engine(VectorizedEngine.name, VectorizedEngine, aliases=("array", "fast"))
register_engine(
    ParallelEngine.name, _parallel_engine_factory, aliases=("threaded", "jit")
)
