"""Result object shared by the centralised and distributed implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..distsim.accounting import CommunicationLog
from ..graphs.partition import Partition, misclassification_rate, misclassified_nodes
from .parameters import AlgorithmParameters

__all__ = ["ClusteringResult"]


@dataclass
class ClusteringResult:
    """Outcome of one run of the load-balancing clustering algorithm.

    Attributes
    ----------
    labels:
        Raw per-node labels (seed identifiers); ``-1`` marks nodes for which
        no coordinate exceeded the query threshold and no fallback was used.
    partition:
        The labels as a normalised :class:`~repro.graphs.partition.Partition`.
    seeds:
        Node ids of the active seed nodes, in seed order.
    seed_ids:
        The identifier (prefix) associated with each seed.
    rounds:
        Number of averaging rounds executed.
    parameters:
        The :class:`~repro.core.parameters.AlgorithmParameters` used.
    loads:
        Final ``(n, s)`` load configuration (centralised runs only; ``None``
        for distributed runs, where no global view exists).
    communication:
        Exact communication log (distributed runs only).
    unlabelled:
        Boolean mask of nodes whose state had no entry above the threshold.
    diagnostics:
        Free-form extras recorded by the implementation (e.g. per-round error
        series when a callback was attached).
    """

    labels: np.ndarray
    partition: Partition
    seeds: np.ndarray
    seed_ids: np.ndarray
    rounds: int
    parameters: AlgorithmParameters
    loads: np.ndarray | None = None
    communication: CommunicationLog | None = None
    unlabelled: np.ndarray | None = None
    diagnostics: dict[str, Any] = field(default_factory=dict)

    @property
    def num_seeds(self) -> int:
        return int(self.seeds.size)

    @property
    def num_clusters_found(self) -> int:
        return self.partition.k

    @property
    def num_unlabelled(self) -> int:
        return int(self.unlabelled.sum()) if self.unlabelled is not None else 0

    # ------------------------------------------------------------------ #
    # Scoring against ground truth
    # ------------------------------------------------------------------ #

    def misclassified_against(self, truth: Partition) -> int:
        """Number of misclassified nodes (Theorem 1.1(1) quantity)."""
        return misclassified_nodes(self.partition, truth)

    def error_against(self, truth: Partition) -> float:
        """Misclassification rate in [0, 1]."""
        return misclassification_rate(self.partition, truth)

    def total_words(self) -> int:
        """Total words exchanged (0 for centralised runs, which send nothing)."""
        return self.communication.total_words if self.communication is not None else 0

    def summary(self) -> dict[str, Any]:
        out = {
            "n": self.parameters.n,
            "rounds": self.rounds,
            "num_seeds": self.num_seeds,
            "num_clusters_found": self.num_clusters_found,
            "num_unlabelled": self.num_unlabelled,
        }
        if self.communication is not None:
            out.update(self.communication.summary())
        return out
