"""Adaptive choice of the round count ``T`` (engineering extension).

The paper sets ``T = Θ(log n / (1 - λ_{k+1}))``, which presumes an estimate of
``λ_{k+1}`` — easy for the benchmarks (we compute the spectrum of the
generated instance) but unrealistic in a deployment, where the whole point of
the algorithm is to avoid eigenvalue computations.

:class:`AdaptiveClustering` removes that requirement: it runs the averaging
procedure in *blocks* of rounds and stops once the labelling produced by the
query procedure stabilises across consecutive blocks (no more than a
``stability_tolerance`` fraction of nodes change label).  The stopping rule
exploits exactly the plateau behaviour proven in Lemma 4.1 / Remark 1: the
labelling is stable throughout the long window between local mixing (inside
clusters) and global mixing (across clusters), so detecting two consecutive
agreeing blocks lands inside that window with high probability.

In a distributed deployment the stability check is a cheap aggregate (count
of label changes), so the extension preserves the algorithm's communication
profile up to an additive ``O(n)`` words per block.  DESIGN.md lists this as
an extension beyond the paper; the tests verify it matches the oracle-``T``
configuration on well-clustered instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..loadbalancing.matching import sample_random_matching
from ..loadbalancing.process import MultiDimensionalLoadBalancing
from .parameters import AlgorithmParameters
from .query import assign_labels_from_loads
from .result import ClusteringResult
from .seeding import assign_seed_identifiers, sample_seeds, seed_load_matrix

__all__ = ["AdaptiveClustering", "AdaptiveRunInfo"]


@dataclass(frozen=True)
class AdaptiveRunInfo:
    """How the adaptive stopping rule behaved on one run."""

    rounds_executed: int
    blocks_executed: int
    stopped_early: bool
    label_change_history: tuple[float, ...]


class AdaptiveClustering:
    """The paper's algorithm with a label-stability stopping rule instead of a fixed T.

    Parameters
    ----------
    graph:
        Input graph.
    beta:
        Balance lower bound (the only structural parameter required).
    block_size:
        Number of averaging rounds between stability checks; ``None`` uses
        ``ceil(2·log n)``.
    stability_tolerance:
        Maximum fraction of nodes allowed to change label between consecutive
        blocks for the run to be declared stable.
    stable_blocks:
        Number of consecutive stable transitions required before stopping.
    max_rounds:
        Hard cap on the total number of rounds (a multiple of ``log² n`` by
        default, far above any realistic ``T``).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        beta: float,
        seed: int | None = None,
        block_size: int | None = None,
        stability_tolerance: float = 0.01,
        stable_blocks: int = 2,
        max_rounds: int | None = None,
        fallback: str = "argmax",
    ):
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must lie in (0, 1]")
        if stable_blocks < 1:
            raise ValueError("stable_blocks must be at least 1")
        if not 0.0 <= stability_tolerance < 1.0:
            raise ValueError("stability_tolerance must lie in [0, 1)")
        self.graph = graph
        self.beta = float(beta)
        self._seed = seed
        log_n = np.log(max(graph.n, 2))
        self.block_size = int(block_size) if block_size is not None else int(np.ceil(2 * log_n))
        if self.block_size < 1:
            raise ValueError("block_size must be positive")
        self.stability_tolerance = float(stability_tolerance)
        self.stable_blocks = int(stable_blocks)
        self.max_rounds = (
            int(max_rounds) if max_rounds is not None else int(np.ceil(40 * log_n ** 2))
        )
        self._fallback = fallback

    def run(self) -> ClusteringResult:
        rng = np.random.default_rng(self._seed)
        # Parameters: rounds is only an upper bound here; everything else is
        # derived from beta exactly as in the paper.
        params = AlgorithmParameters.from_values(self.graph.n, self.beta, self.max_rounds)

        seeds = sample_seeds(params, rng)
        seed_ids = assign_seed_identifiers(seeds, params, rng)
        loads = seed_load_matrix(self.graph.n, seeds)

        if seeds.size == 0:
            labels = np.zeros(self.graph.n, dtype=np.int64)
            return ClusteringResult(
                labels=labels,
                partition=Partition.from_labels(labels),
                seeds=seeds,
                seed_ids=seed_ids,
                rounds=0,
                parameters=params,
                unlabelled=np.ones(self.graph.n, dtype=bool),
                diagnostics={"adaptive": AdaptiveRunInfo(0, 0, False, ())},
            )

        process = MultiDimensionalLoadBalancing(
            self.graph, loads, rng=rng, matching_sampler=sample_random_matching
        )
        previous_labels: np.ndarray | None = None
        change_history: list[float] = []
        stable_streak = 0
        blocks = 0
        stopped_early = False

        while process.round < self.max_rounds:
            remaining = self.max_rounds - process.round
            for _ in range(min(self.block_size, remaining)):
                process.step()
            blocks += 1
            labels, _ = assign_labels_from_loads(
                process.loads, seed_ids, params.threshold, fallback="argmax"
            )
            if previous_labels is not None:
                changed = float(np.mean(labels != previous_labels))
                change_history.append(changed)
                if changed <= self.stability_tolerance:
                    stable_streak += 1
                    if stable_streak >= self.stable_blocks:
                        stopped_early = True
                        break
                else:
                    stable_streak = 0
            previous_labels = labels

        final_loads = process.loads
        labels, unlabelled = assign_labels_from_loads(
            final_loads, seed_ids, params.threshold, fallback=self._fallback
        )
        partition_labels = labels.copy()
        if np.any(partition_labels < 0):
            partition_labels[partition_labels < 0] = int(partition_labels.max()) + 1

        info = AdaptiveRunInfo(
            rounds_executed=process.round,
            blocks_executed=blocks,
            stopped_early=stopped_early,
            label_change_history=tuple(change_history),
        )
        return ClusteringResult(
            labels=labels,
            partition=Partition.from_labels(partition_labels),
            seeds=seeds,
            seed_ids=seed_ids,
            rounds=process.round,
            parameters=params.with_rounds(process.round),
            loads=final_loads,
            unlabelled=unlabelled,
            diagnostics={"adaptive": info, "matched_edges_per_round": process.matched_edges_per_round},
        )
