"""Driver for the distributed algorithm, parameterized over a round engine.

The per-node protocol itself (Section 3.1, four message phases per averaging
round) lives in :mod:`repro.core.protocol`; the interchangeable executors
live in :mod:`repro.core.engines`.  This module keeps the user-facing
driver: pick a backend, run the protocol, assemble the standard
:class:`~repro.core.result.ClusteringResult`.

Backends
--------
``"message-passing"`` (default)
    The faithful per-node simulator: exact communication accounting,
    failure injection, one isolated node object per processor.  This is the
    substitute for the paper's "parallel network with n processors".
``"vectorized"``
    The array backend: the same protocol distribution executed as batched
    matchings + in-place fancy-indexed averaging over all seed dimensions.
    Orders of magnitude faster (``n = 10^5`` in seconds), no message log.

The parity between the two is part of the test-suite contract
(``tests/integration/test_backend_parity.py``).
"""

from __future__ import annotations

from ..distsim.engine import RoundEngine
from ..distsim.failures import FailureModel
from ..graphs.graph import Graph
from .engines import DEFAULT_BACKEND, build_clustering_result, make_engine
from .parameters import AlgorithmParameters
from .protocol import LoadBalancingClusteringAlgorithm
from .result import ClusteringResult

__all__ = ["LoadBalancingClusteringAlgorithm", "DistributedClustering"]


class DistributedClustering:
    """Driver running the distributed algorithm on a selectable round engine.

    This is the distributed counterpart of
    :class:`~repro.core.centralized.CentralizedClustering`; it produces the
    same :class:`~repro.core.result.ClusteringResult` plus — on the
    message-passing backend — an exact communication log.

    Parameters
    ----------
    graph, parameters:
        The instance and the paper's parameters.
    seed:
        Root seed for all randomness of the chosen backend.
    fallback:
        Query fallback policy, ``"argmax"`` or ``"none"``.  ``None``
        (default) means unspecified: by-name backends use ``"argmax"``, a
        pre-built engine keeps its own declared policy.  An explicit value
        overrides a pre-built engine's declaration when the query runs
        centrally (vectorized), and raises when the engine labels locally
        (message passing) — there the nodes' own policy cannot be
        overridden after the fact.
    degree_cap:
        Optional degree bound ``D`` for the almost-regular extension.
    failures:
        Optional failure model.  Every registered backend accepts one: the
        per-node simulator applies it message by message, while the array
        backends draw the equivalent drop/crash masks from dedicated counter
        streams (see ``docs/architecture.md``, "Failure injection").
    backend:
        Round-engine backend: ``"message-passing"`` (default),
        ``"vectorized"``, or a pre-built
        :class:`~repro.distsim.engine.RoundEngine` instance.
    engine_options:
        Extra keyword options forwarded to the backend constructor (e.g.
        ``batch_rounds`` for the vectorized backend).
    """

    def __init__(
        self,
        graph: Graph,
        parameters: AlgorithmParameters,
        *,
        seed: int | None = None,
        fallback: str | None = None,
        degree_cap: int | None = None,
        failures: FailureModel | None = None,
        backend: str | RoundEngine = DEFAULT_BACKEND,
        **engine_options,
    ):
        if parameters.n != graph.n:
            raise ValueError("parameters were derived for a different graph size")
        self.graph = graph
        self.parameters = parameters
        self._seed = seed
        self._fallback = fallback
        self._degree_cap = degree_cap
        self._failures = failures
        self._backend = backend
        self._engine_options = engine_options

    def run(self) -> ClusteringResult:
        if isinstance(self._backend, RoundEngine):
            # A pre-built engine carries its own configuration; it must have
            # been built for this driver's instance, otherwise the protocol
            # would run on one graph while the result is assembled (query
            # threshold, metadata) with another's parameters.
            if getattr(self._backend, "graph", self.graph) != self.graph:
                raise ValueError(
                    "pre-built engine was constructed for a different graph"
                )
            if getattr(self._backend, "parameters", self.parameters) != self.parameters:
                raise ValueError(
                    "pre-built engine was constructed with different parameters"
                )
            # make_engine rejects conflicting options (including an explicit
            # fallback differing from a locally-labelling engine's own).
            engine = make_engine(
                self._backend,
                seed=self._seed,
                fallback=self._fallback,
                degree_cap=self._degree_cap,
                failures=self._failures,
                **self._engine_options,
            )
        else:
            engine = make_engine(
                self._backend,
                self.graph,
                self.parameters,
                seed=self._seed,
                fallback=self._fallback or "argmax",
                degree_cap=self._degree_cap,
                failures=self._failures,
                **self._engine_options,
            )
        # fallback=None lets result assembly adopt the engine's declaration.
        return build_clustering_result(
            engine.run(), self.parameters, fallback=self._fallback
        )
