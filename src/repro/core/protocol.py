"""Per-node message-passing protocol of the clustering algorithm (Section 3.1).

This is the algorithm exactly as a node would run it on a real network,
programmed against the :class:`~repro.distsim.node.NodeAlgorithm` interface:
nodes know only ``n``, ``β`` and ``T`` (the paper's assumptions), their own
neighbourhood and their private randomness, and everything else travels in
messages.  One averaging round of the paper is realised as four message
phases:

``propose``
    Matching step 1–2: every node flips the activity coin; active nodes send
    a proposal to one uniformly random neighbour.
``respond``
    Matching step 3: a non-active node that received exactly one proposal
    accepts it, sending its current state to the proposer.
``average``
    The proposer of an accepted proposal averages the two states (the
    three-case rule of the Averaging Procedure) and sends the result back.
``commit``
    The accepting node adopts the averaged state, completing the round.

Every matched edge therefore costs one proposal (1 word), one acceptance
carrying ``O(s)`` words and one commit carrying ``O(s)`` words — which is the
``O(k log k)`` words per matched pair of Theorem 1.1(2) when
``β = Θ(1/k)``.

The protocol class is consumed by the ``message-passing`` round engine
(:class:`~repro.core.engines.MessagePassingEngine`); the ``vectorized``
engine implements the same protocol distribution as array operations.
"""

from __future__ import annotations

from typing import Sequence

from .._rng import STREAM_ACTIVITY, STREAM_SLOT, counter_uniform, stream_key
from ..distsim.messages import Message
from ..distsim.node import NodeAlgorithm, NodeContext
from .parameters import AlgorithmParameters
from .state import NodeState

__all__ = ["LoadBalancingClusteringAlgorithm", "CounterDrivenClusteringAlgorithm"]


class LoadBalancingClusteringAlgorithm(NodeAlgorithm):
    """Per-node behaviour of the distributed clustering algorithm.

    Configuration keys read from the network's ``config`` dictionary:

    ``parameters``
        The :class:`~repro.core.parameters.AlgorithmParameters` instance.
    ``fallback``
        Query fallback policy, ``"argmax"`` (default) or ``"none"``.
    ``degree_cap``
        Optional degree bound ``D`` for the almost-regular extension
        (Section 4.5): an active node proposes along a *virtual self-loop*
        with probability ``(D - d_v)/D`` — equivalent to running the regular
        protocol on the ``D``-regular graph ``G*`` with self-loops added.
    """

    PHASES = ("propose", "respond", "average", "commit")

    def phases(self) -> Sequence[str]:
        return self.PHASES

    # ------------------------------------------------------------------ #
    # Initialisation: identifier + seeding procedure
    # ------------------------------------------------------------------ #

    def initialise(self, node: NodeContext) -> None:
        params: AlgorithmParameters = node.config["parameters"]
        rng = node.rng
        node.state["id"] = int(rng.integers(1, params.id_space + 1))
        # Seeding: active in at least one of the s̄ trials, each w.p. 1/n.
        p_any = 1.0 - (1.0 - params.activation_probability) ** params.num_seeding_trials
        is_seed = bool(rng.random() < p_any)
        node.state["is_seed"] = is_seed
        node.state["load"] = (
            NodeState.seeded(node.state["id"]) if is_seed else NodeState.empty()
        )
        node.state["label"] = None
        node.state["partner"] = -1

    # ------------------------------------------------------------------ #
    # One averaging round = four phases
    # ------------------------------------------------------------------ #

    def run_phase(
        self, node: NodeContext, round_index: int, phase: str, inbox: list[Message]
    ) -> None:
        if phase == "propose":
            self._phase_propose(node)
        elif phase == "respond":
            self._phase_respond(node, inbox)
        elif phase == "average":
            self._phase_average(node, inbox)
        elif phase == "commit":
            self._phase_commit(node, inbox)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown phase {phase!r}")

    def _phase_propose(self, node: NodeContext) -> None:
        node.state["partner"] = -1
        node.state["mm_active"] = bool(node.rng.random() < 0.5)
        if not node.state["mm_active"] or node.degree == 0:
            return
        degree_cap = node.config.get("degree_cap")
        if degree_cap is not None and degree_cap > node.degree:
            # Almost-regular extension: with probability (D - d_v)/D the
            # proposal goes along a virtual self-loop and is dropped.
            if node.rng.random() < (degree_cap - node.degree) / degree_cap:
                return
        target = node.random_neighbour()
        if target == node.node_id:
            # A real self-loop can never form a matched pair.
            return
        node.send(target, "propose", None, words=1)

    def _phase_respond(self, node: NodeContext, inbox: list[Message]) -> None:
        proposals = [m for m in inbox if m.kind == "propose"]
        if node.state.get("mm_active", False):
            return  # active nodes never accept
        if len(proposals) != 1:
            return  # chosen by zero or several neighbours: not matched
        proposer = proposals[0].sender
        node.state["partner"] = proposer
        load: NodeState = node.state["load"]
        node.send(proposer, "accept", load.as_payload())

    def _phase_average(self, node: NodeContext, inbox: list[Message]) -> None:
        accepts = [m for m in inbox if m.kind == "accept"]
        if not accepts:
            return
        # A node proposes to exactly one neighbour, so it can receive at most
        # one acceptance.
        accept = accepts[0]
        partner_state = NodeState.from_payload(accept.payload)
        own: NodeState = node.state["load"]
        averaged = own.averaged_with(partner_state)
        node.state["load"] = averaged
        node.state["partner"] = accept.sender
        node.send(accept.sender, "commit", averaged.as_payload())

    def _phase_commit(self, node: NodeContext, inbox: list[Message]) -> None:
        commits = [m for m in inbox if m.kind == "commit"]
        if not commits:
            # If this node accepted a proposal but the proposer's commit never
            # arrived (possible only under failure injection), it keeps its
            # old state — load is then no longer conserved, which the
            # robustness tests measure explicitly.
            return
        node.state["load"] = NodeState.from_payload(commits[0].payload)

    # ------------------------------------------------------------------ #
    # Query procedure
    # ------------------------------------------------------------------ #

    def finalise(self, node: NodeContext) -> None:
        params: AlgorithmParameters = node.config["parameters"]
        fallback = node.config.get("fallback", "argmax")
        load: NodeState = node.state["load"]
        label = load.label(params.threshold)
        node.state["unlabelled"] = label is None
        if label is None and fallback == "argmax":
            label = load.heaviest_prefix()
        node.state["label"] = -1 if label is None else int(label)


class CounterDrivenClusteringAlgorithm(LoadBalancingClusteringAlgorithm):
    """The same four-phase protocol, with counter-based randomness.

    The per-node adapter of the failure parity harness
    (:class:`~repro.core.engines.MaskedMessagePassingEngine`): instead of
    each node's private generator stream, the protocol coins are the exact
    splitmix64 counter hashes of the fused kernels
    (:mod:`repro.core.kernels`), and seed membership/identifiers are injected
    through the configuration instead of drawn locally.  Message routing,
    acceptance, averaging and commit are all inherited unchanged — only where
    the randomness comes from differs — so the engine result is bit-identical
    to the array backends running in counter mode under the same seed, one
    message at a time.

    Additional configuration keys (beyond the base class's):

    ``counter_seed``
        64-bit base of the counter streams (``stream_key(seed, round, ...)``).
    ``seed_identifiers``
        ``{node_id: identifier}`` for the seed nodes, computed centrally with
        the *same* generator calls as the vectorised seeding so the two
        layouts match for the same integer seed.
    """

    def initialise(self, node: NodeContext) -> None:
        seed_identifiers: dict[int, int] = node.config["seed_identifiers"]
        is_seed = node.node_id in seed_identifiers
        node.state["id"] = int(seed_identifiers.get(node.node_id, 0))
        node.state["is_seed"] = is_seed
        node.state["load"] = (
            NodeState.seeded(node.state["id"]) if is_seed else NodeState.empty()
        )
        node.state["label"] = None
        node.state["partner"] = -1

    def run_phase(
        self, node: NodeContext, round_index: int, phase: str, inbox: list[Message]
    ) -> None:
        if phase == "propose":
            self._phase_propose_counter(node, round_index)
        else:
            super().run_phase(node, round_index, phase, inbox)

    def _phase_propose_counter(self, node: NodeContext, round_index: int) -> None:
        # The scalar twin of kernel pass 1 (`matching_pass1_block`), operation
        # by operation: activity coin, one slot uniform, truncation to the
        # (possibly capped) slot index, the virtual-slot discard and the
        # self-loop discard.  counter_uniform performs the same IEEE-754
        # conversion as the kernels, so the decisions match bit for bit.
        node.state["partner"] = -1
        seed = node.config["counter_seed"]
        v = node.node_id
        is_active = counter_uniform(stream_key(seed, round_index, STREAM_ACTIVITY), v) < 0.5
        node.state["mm_active"] = bool(is_active)
        d = node.degree
        if not is_active or d == 0:
            return
        u01 = counter_uniform(stream_key(seed, round_index, STREAM_SLOT), v)
        degree_cap = node.config.get("degree_cap")
        cap = int(degree_cap) if degree_cap is not None else d
        slot = int(u01 * float(cap))
        if slot > cap - 1:
            slot = cap - 1
        if slot >= d:
            # Virtual self-loop of the almost-regular extension: no proposal.
            return
        target = int(node.neighbours[slot])
        if target == v:
            # A real self-loop can never form a matched pair.
            return
        node.send(target, "propose", None, words=1)
