"""Reproduction of "Distributed Graph Clustering by Load Balancing" (Sun & Zanetti, SPAA 2017).

Subpackages
-----------
``repro.graphs``
    Graph substrate: CSR graphs, well-clustered generators, conductance,
    spectra, partitions and the misclassification metric of Theorem 1.1.
``repro.distsim``
    Synchronous message-passing simulator with exact communication
    accounting (the stand-in for the paper's processor network).
``repro.loadbalancing``
    The random matching model, 1-D and multi-dimensional load balancing,
    alternative averaging substrates and empirical lemma validators.
``repro.core``
    The clustering algorithm itself: seeding / averaging / query procedures,
    centralised and distributed implementations, parameters, and the
    structure theory of the analysis.
``repro.baselines``
    Re-implementations of the algorithms the paper compares against
    (spectral clustering, Becchetti et al. averaging dynamics,
    Kempe–McSherry decentralised spectral, label propagation, multilevel
    partitioning, PageRank–Nibble).
``repro.evaluation``
    Clustering metrics, repeated-trial experiment runner and table
    formatting used by the benchmark suite.

Quickstart
----------
>>> from repro.graphs import cycle_of_cliques
>>> from repro.core import cluster_graph
>>> instance = cycle_of_cliques(4, 25, seed=0)
>>> result = cluster_graph(instance.graph, k=4, seed=1)
>>> result.error_against(instance.partition) < 0.1
True
"""

__version__ = "1.0.0"

from . import baselines, core, distsim, evaluation, graphs, loadbalancing

__all__ = [
    "baselines",
    "core",
    "distsim",
    "evaluation",
    "graphs",
    "loadbalancing",
    "__version__",
]
