"""Counter-based (splitmix64) random streams shared across backends.

The threaded kernels of :mod:`repro.core.kernels` introduced a stateless RNG:
instead of consuming generator state, every draw is a hash of a *counter* —
a pure function of ``(seed, round, stream, node)``.  That is what makes the
parallel backend bit-identical across thread counts, and (since the failure
layer joined) what makes failure injection bit-identical across *backends*:
a drop or crash decision depends only on its coordinates, never on which
engine asks, in which order, or how the work was sliced.

Stream-key layout
-----------------
A 64-bit key identifies one draw stream: ``stream_key(seed, round, stream)``
chains three splitmix64 finaliser applications over the seed, the round index
and a stream tag.  The tags are:

========================  =====================================================
``STREAM_ACTIVITY`` (0)   per-node activity coins of the matching protocol
``STREAM_SLOT`` (1)       per-node proposal-slot draws (virtual-slot capped)
``STREAM_CRASH`` (2)      per-node crash coins (round index pinned to 0 — the
                          crash *set* is drawn once per run)
``STREAM_DROP`` (3)       per-message delivery coins; refined per message
                          *kind* by :func:`message_key` and then hashed per
                          ``(sender, receiver)`` pair by :func:`pair_uniforms`
========================  =====================================================

Node draws hash ``key + (v+1)·γ`` (:func:`counter_uniforms`); message draws
hash the sender the same way and then fold the receiver in with a second
finaliser pass (:func:`pair_uniforms`), so the draw for edge ``(u, v)`` is
independent of the draws of ``(u, w)`` and ``(w, v)`` and — crucially —
*directional*: the accept ``v → u`` does not share its coin with the propose
``u → v``.

Every function has a scalar twin performing the same IEEE-754/uint64
operations (Python ints masked to 64 bits vs. numpy uint64 arrays wrap
identically), so the per-node simulator and the array backends read the
*same* values from the same coordinates — pinned by the failure parity suite.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "MASK64",
    "STREAM_ACTIVITY",
    "STREAM_SLOT",
    "STREAM_CRASH",
    "STREAM_DROP",
    "mix64",
    "stream_key",
    "message_key",
    "counter_uniform",
    "counter_uniforms",
    "pair_uniform",
    "pair_uniforms",
]

MASK64 = (1 << 64) - 1
#: splitmix64 increment ("golden gamma") and finaliser multipliers.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
#: ``u64 >> 11`` leaves 53 uniform bits; scaling by 2^-53 gives a float64
#: uniform on [0, 1) with every value exactly representable.
_INV_2POW53 = 2.0**-53

#: Stream tags: one independent draw stream per protocol decision of a round
#: (see the module docstring for the layout).
STREAM_ACTIVITY = 0
STREAM_SLOT = 1
STREAM_CRASH = 2
STREAM_DROP = 3


def mix64(x: int) -> int:
    """The splitmix64 finaliser on a Python int (mod 2^64).

    Computed in plain Python integers (masked to 64 bits) so key derivation
    never touches numpy scalar arithmetic, whose uint64 overflow semantics
    differ between scalar and array paths.
    """
    x &= MASK64
    x ^= x >> 30
    x = (x * _MIX1) & MASK64
    x ^= x >> 27
    x = (x * _MIX2) & MASK64
    x ^= x >> 31
    return x


def stream_key(seed: int, round_index: int, stream: int) -> int:
    """The 64-bit key of one ``(seed, round, stream)`` draw stream.

    Three chained mixing steps decorrelate the inputs; node draws then hash
    ``key + (v+1)·γ`` so distinct nodes read distinct counters (the ``+1``
    keeps node 0 off the raw key itself).
    """
    key = mix64((int(seed) & MASK64) ^ _GAMMA)
    key = mix64((key + (int(round_index) & MASK64) * _MIX1) & MASK64)
    return mix64((key + (int(stream) & MASK64) * _MIX2) & MASK64)


def message_key(seed: int, round_index: int, kind: str) -> int:
    """The delivery-stream key of one message kind in one round.

    Refines ``stream_key(seed, round, STREAM_DROP)`` by the message kind
    (through the stable ``zlib.crc32`` digest, like the trial seeds of the
    evaluation runner), so the propose/accept/commit coins of one round are
    three independent streams.
    """
    base = stream_key(seed, round_index, STREAM_DROP)
    return mix64((base + (zlib.crc32(kind.encode("utf-8")) & MASK64) * _MIX1) & MASK64)


def counter_uniform(key: int, node: int) -> float:
    """Scalar twin of :func:`counter_uniforms`: node ``v``'s draw under ``key``.

    Bit-identical to ``counter_uniforms(key, n)[node]`` — same mixing, same
    ``(x >> 11) · 2^-53`` conversion — which is what lets the per-node
    simulator replay the array backends' coins one node at a time.
    """
    x = mix64((int(key) + (int(node) + 1) * _GAMMA) & MASK64)
    return float(x >> 11) * _INV_2POW53


def counter_uniforms(key: int, n: int) -> np.ndarray:
    """Uniform [0, 1) float64 draws for nodes ``0..n-1`` under ``key``.

    The vectorised twin of the per-node hash inside the numba kernels: same
    integer mixing (uint64 *array* ops wrap silently, matching the scalar
    wrap in compiled code), same ``(x >> 11) · 2^-53`` conversion, hence
    bit-identical values.
    """
    idx = np.arange(1, n + 1, dtype=np.uint64)
    x = np.uint64(key) + idx * np.uint64(_GAMMA)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX2)
    x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) * _INV_2POW53


def pair_uniform(key: int, sender: int, receiver: int) -> float:
    """Scalar twin of :func:`pair_uniforms`: the coin of one directed message.

    Two chained finaliser passes — sender folded in first, receiver second —
    so the value is a pure function of ``(key, sender, receiver)`` and
    ordered pairs read distinct streams.
    """
    x = mix64((int(key) + (int(sender) + 1) * _GAMMA) & MASK64)
    x = mix64((x + (int(receiver) + 1) * _GAMMA) & MASK64)
    return float(x >> 11) * _INV_2POW53


def pair_uniforms(key: int, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) draws for directed ``(sender, receiver)`` pairs under ``key``.

    Vectorised twin of :func:`pair_uniform` (bit-identical values): the
    failure layer uses it to decide delivery of a whole phase's messages in
    one call, with each message's coin independent of array position.
    """
    s = np.asarray(senders, dtype=np.uint64) + np.uint64(1)
    r = np.asarray(receivers, dtype=np.uint64) + np.uint64(1)
    x = np.uint64(key) + s * np.uint64(_GAMMA)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX2)
    x ^= x >> np.uint64(31)
    x += r * np.uint64(_GAMMA)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX2)
    x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) * _INV_2POW53
