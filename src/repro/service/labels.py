"""Mmap-shared label stores: precomputed clusterings served by digest.

The paper's end product is one primitive — "which cluster is node v in?" —
and recomputing a clustering to answer it costs a full generate + cluster
run.  A *label store* persists the answer instead: for each cached instance
``{generator}-{digest}.csr/`` the sibling directory
``{generator}-{digest}.labels/`` holds one ``labels-{algo}-{seed}.npy``
int64 vector per (algorithm, trial seed) pair, written atomically by the
service workers (:mod:`repro.service.jobs`) whenever an adapter ran with
``keep_labels=True``.

Lookups open the vector with ``np.load(mmap_mode="r")``: nothing is read
until a node is indexed, every concurrent reader (threads, processes, the
REST server's handler pool) shares the same OS page cache, and a warm point
query is a single page access — which is what makes millions of label
queries cheap where recomputation is not (gated ≥ 100× by
``benchmarks/bench_e23_label_service.py``).

The store is addressed exactly like the instance cache — by content digest
(:func:`repro.graphs.instance_digest`), never by mutable parameters — so a
label file can only ever describe the instance it sits next to.  Lifecycle
is shared too: ``repro cache list`` shows label bytes per entry and
``repro cache prune`` counts them toward the LRU budget
(:mod:`repro.graphs.cache`).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "LABEL_DIR_SUFFIX",
    "LabelFile",
    "LabelStore",
    "LabelStoreError",
    "label_store_dir",
    "list_label_stores",
    "open_labels",
    "query_labels",
    "write_labels",
]

#: Sibling-directory suffix pairing a label store with its cache entry:
#: ``{generator}-{digest}.csr`` ↔ ``{generator}-{digest}.labels``.
LABEL_DIR_SUFFIX = ".labels"


class LabelStoreError(ValueError):
    """A label store is missing, ambiguous, or holds an invalid vector."""


@dataclass(frozen=True)
class LabelFile:
    """One persisted label vector inside a store."""

    path: Path
    algorithm: str
    seed: int
    nbytes: int


@dataclass(frozen=True)
class LabelStore:
    """One per-digest label directory and the vectors it holds."""

    path: Path
    generator: str
    digest: str
    files: tuple[LabelFile, ...]

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.files)


def label_store_dir(cache_dir: str | Path, generator: str, digest: str) -> Path:
    """The store directory paired with cache entry ``{generator}-{digest}``."""
    return Path(cache_dir) / f"{generator}-{digest}{LABEL_DIR_SUFFIX}"


def _parse_label_file(path: Path) -> tuple[str, int] | None:
    """``labels-{algo}-{seed}.npy`` → (algo, seed); seed parses from the
    right because algorithm names may themselves contain hyphens."""
    name = path.name
    if not (name.startswith("labels-") and name.endswith(".npy")):
        return None
    stem = name[len("labels-") : -len(".npy")]
    algorithm, sep, seed_text = stem.rpartition("-")
    if not sep or not algorithm or not seed_text.isdigit():
        return None
    return algorithm, int(seed_text)


def write_labels(
    cache_dir: str | Path,
    generator: str,
    digest: str,
    algorithm: str,
    seed: int,
    labels: Any,
) -> Path:
    """Persist one label vector atomically; returns the final path.

    The vector is normalised to contiguous int64 (the dtype every lookup
    relies on), written to a temp file in the store directory and moved
    into place with ``os.replace`` — a concurrent reader sees either the
    old vector or the new one, never a torn write.
    """
    arr = np.ascontiguousarray(np.asarray(labels, dtype=np.int64))
    if arr.ndim != 1:
        raise LabelStoreError(
            f"labels must be a 1-D vector, got shape {arr.shape}"
        )
    directory = label_store_dir(cache_dir, generator, digest)
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / f"labels-{algorithm}-{int(seed)}.npy"
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npy.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.save(fh, arr)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def _scan_store(path: Path) -> tuple[LabelFile, ...]:
    files: list[LabelFile] = []
    for child in sorted(path.iterdir()):
        parsed = _parse_label_file(child)
        if parsed is None or not child.is_file():
            continue
        algorithm, seed = parsed
        try:
            nbytes = child.stat().st_size
        except OSError:  # pragma: no cover - racing eviction
            continue
        files.append(LabelFile(path=child, algorithm=algorithm, seed=seed, nbytes=nbytes))
    return tuple(files)


def list_label_stores(cache_dir: str | Path) -> list[LabelStore]:
    """Enumerate every label store under ``cache_dir`` (sorted by name)."""
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return []
    stores: list[LabelStore] = []
    for path in sorted(cache_dir.iterdir()):
        if path.suffix != LABEL_DIR_SUFFIX or not path.is_dir():
            continue
        stem = path.name[: -len(LABEL_DIR_SUFFIX)]
        generator, sep, digest = stem.rpartition("-")
        if not sep or not generator or not digest:
            continue
        stores.append(
            LabelStore(path=path, generator=generator, digest=digest, files=_scan_store(path))
        )
    return stores


def _resolve_store(cache_dir: str | Path, digest: str) -> LabelStore:
    matches = [s for s in list_label_stores(cache_dir) if s.digest == digest]
    if not matches:
        known = sorted({s.digest for s in list_label_stores(cache_dir)})
        raise LabelStoreError(
            f"no label store for digest {digest!r} in {cache_dir}"
            + (f" (known digests: {', '.join(known)})" if known else "")
        )
    if len(matches) > 1:  # pragma: no cover - one digest maps to one entry
        raise LabelStoreError(
            f"digest {digest!r} is ambiguous in {cache_dir}: "
            + ", ".join(s.path.name for s in matches)
        )
    return matches[0]


def _select_file(
    store: LabelStore, algorithm: str | None, seed: int | None
) -> LabelFile:
    candidates = [
        f
        for f in store.files
        if (algorithm is None or f.algorithm == algorithm)
        and (seed is None or f.seed == int(seed))
    ]
    available = ", ".join(f"({f.algorithm}, seed={f.seed})" for f in store.files)
    if not candidates:
        raise LabelStoreError(
            f"no label vector matching algorithm={algorithm!r} seed={seed!r} "
            f"in {store.path.name} (available: {available or 'none'})"
        )
    if len(candidates) > 1:
        raise LabelStoreError(
            f"ambiguous label lookup in {store.path.name}: "
            f"algorithm={algorithm!r} seed={seed!r} matches "
            + ", ".join(f"({f.algorithm}, seed={f.seed})" for f in candidates)
            + " — pass algorithm= and/or seed= to disambiguate"
        )
    return candidates[0]


# A small keep-alive cache of opened memory maps: repeated point queries
# (the REST server's hot path) reuse one mmap object instead of reopening
# the file per request.  Keyed by (path, mtime_ns, size) so an atomically
# replaced vector is picked up on the next query.  Bounded FIFO — evicting
# an entry only drops our reference; the OS page cache is what actually
# keeps warm lookups fast.
_OPEN_CACHE: dict[tuple[str, int, int], np.ndarray] = {}
_OPEN_CACHE_MAX = 64


def _open_mmap(path: Path) -> np.ndarray:
    try:
        st = path.stat()
    except OSError as exc:
        raise LabelStoreError(f"label file vanished: {path}") from exc
    key = (str(path), st.st_mtime_ns, st.st_size)
    cached = _OPEN_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        arr = np.load(path, mmap_mode="r", allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise LabelStoreError(f"corrupt label file {path}: {exc}") from exc
    if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
        raise LabelStoreError(
            f"corrupt label file {path}: expected a 1-D integer vector, "
            f"got shape {arr.shape} dtype {arr.dtype}"
        )
    while len(_OPEN_CACHE) >= _OPEN_CACHE_MAX:
        _OPEN_CACHE.pop(next(iter(_OPEN_CACHE)))
    _OPEN_CACHE[key] = arr
    return arr


def open_labels(
    cache_dir: str | Path,
    digest: str,
    *,
    algorithm: str | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Open one label vector memory-mapped (read-only).

    ``algorithm``/``seed`` narrow the choice when a store holds several
    vectors; leaving either ``None`` is fine as long as the remaining
    filters pick a unique file (ambiguity raises, listing the options).
    """
    store = _resolve_store(cache_dir, digest)
    return _open_mmap(_select_file(store, algorithm, seed).path)


def query_labels(
    cache_dir: str | Path,
    digest: str,
    nodes: int | Sequence[int] | Iterable[int],
    *,
    algorithm: str | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Point/batch lookup: the cluster id of each requested node.

    Returns an int64 array shaped like ``nodes`` (a scalar node id yields a
    0-d array).  Out-of-range ids raise instead of wrapping — a negative
    index answering "the cluster of node -1" would be a silent bug.
    """
    arr = _open_mmap(_select_file(_resolve_store(cache_dir, digest), algorithm, seed).path)
    idx = np.asarray(nodes, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= arr.shape[0]):
        raise LabelStoreError(
            f"node ids must be in [0, {arr.shape[0]}), got "
            f"[{idx.min()}, {idx.max()}]"
        )
    return np.asarray(arr[idx], dtype=np.int64)
