"""Service layer: job queue, worker agents, label stores and the REST seam.

The business logic of "clustering as a service" lives here, importable by
the CLI (``repro serve``/``submit``/``jobs``/``query``), by scripts, and by
the stdlib-only HTTP layer in :mod:`repro.service.app` — all three call the
same functions, so there is exactly one implementation of submitting a
sweep, draining it, and answering "which cluster is node v in?".

* :mod:`repro.service.jobs` — SQLite-backed :class:`JobStore` (task states
  pending/running/done/failed, audit log) plus the :class:`Worker` agent
  loop that claims tasks, runs them through the existing evaluation
  adapters and writes records (and label stores) back.
* :mod:`repro.service.labels` — per-digest ``labels-{algo}-{seed}.npy``
  stores next to the sharded cache entries, opened with
  ``np.load(mmap_mode="r")`` so concurrent readers share page cache.
* :mod:`repro.service.app` / :mod:`repro.service.client` — the thin REST
  layer (``http.server`` / ``urllib``) over the two modules above.
"""

from .jobs import (
    JobError,
    JobStore,
    Worker,
    make_algorithm,
    resolve_instance,
    submit_sweep,
    sweep_tasks,
)
from .labels import (
    LabelStoreError,
    label_store_dir,
    list_label_stores,
    open_labels,
    query_labels,
    write_labels,
)

__all__ = [
    "JobError",
    "JobStore",
    "Worker",
    "make_algorithm",
    "resolve_instance",
    "submit_sweep",
    "sweep_tasks",
    "LabelStoreError",
    "label_store_dir",
    "list_label_stores",
    "open_labels",
    "query_labels",
    "write_labels",
]
