"""Stdlib-only REST layer over the job store and label stores.

This module is deliberately thin: every endpoint is one call into
:mod:`repro.service.jobs` / :mod:`repro.service.labels`, so the HTTP
surface, the CLI and library callers share one implementation.  Built on
``http.server.ThreadingHTTPServer`` — no web framework, no new
dependencies — because the hot path (label queries) is a single mmap page
access and the cold path (submitting jobs) is rare.

Endpoints
---------
============================  =============================================
``GET  /healthz``             liveness probe → ``{"status": "ok"}``
``POST /jobs``                submit a sweep spec (JSON body) → ``{"job"}``
``GET  /jobs``                all jobs with derived state + task counts
``GET  /jobs/{id}``           one job's status
``GET  /jobs/{id}/records``   completed records so far, in grid order
``GET  /labels/{digest}``     label lookup: ``?node=0&node=5`` (repeat per
                              node), optional ``&algorithm=``, ``&seed=``
============================  =============================================

Errors come back as ``{"error": msg}`` with 400 (bad request), 404
(unknown job/digest/vector) or 500.  Records and label values cross this
boundary as plain JSON — numpy scalars collapse to Python numbers here;
transports needing bit-identity use the pickled store directly.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

import numpy as np

from .jobs import JobError, JobStore, Worker, submit_sweep
from .labels import LabelStoreError, query_labels

__all__ = ["ServiceApp", "make_server", "serve"]


def _jsonable(value: Any) -> Any:
    """JSON fallback collapsing numpy scalars/arrays at the REST boundary."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON-serialisable")


class ServiceApp:
    """The service's operations, independent of any transport.

    Each method returns plain JSON-ready data or raises
    :class:`JobError` / :class:`LabelStoreError` / :class:`ValueError`;
    the HTTP handler maps those to status codes, the CLI to exit codes.
    """

    def __init__(self, store: JobStore, *, cache_dir: str | Path | None = None):
        self.store = store
        self.cache_dir = None if cache_dir is None else Path(cache_dir)

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        job_id = submit_sweep(self.store, spec)
        return {"job": job_id, **self.store.job_status(job_id)}

    def jobs(self) -> dict[str, Any]:
        return {"jobs": self.store.list_jobs()}

    def job(self, job_id: int) -> dict[str, Any]:
        return self.store.job_status(job_id)

    def records(self, job_id: int) -> dict[str, Any]:
        records = [
            {"config": r.config, "trial": r.trial, "values": r.values}
            for r in self.store.records(job_id)
        ]
        return {"job": job_id, "records": records}

    def query(
        self,
        digest: str,
        nodes: list[int],
        *,
        algorithm: str | None = None,
        seed: int | None = None,
    ) -> dict[str, Any]:
        if self.cache_dir is None:
            raise LabelStoreError(
                "label queries need the service to run with a cache "
                "directory (repro serve --cache-dir)"
            )
        labels = query_labels(
            self.cache_dir, digest, nodes, algorithm=algorithm, seed=seed
        )
        return {
            "digest": digest,
            "algorithm": algorithm,
            "seed": seed,
            "nodes": list(map(int, nodes)),
            "labels": [int(x) for x in np.atleast_1d(labels)],
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the :class:`ServiceApp` attached to the server."""

    server_version = "repro-service/1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; the audit table is the durable log

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, default=_jsonable).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            self._route(method, parts, query)
        except (JobError, LabelStoreError) as exc:
            # Missing *resources* are 404; malformed specs/lookups ("unknown
            # family", ambiguity) are the client's fault and stay 400.
            missing = any(
                marker in str(exc)
                for marker in ("unknown job", "unknown task", "no label")
            )
            self._send(404 if missing else 400, {"error": str(exc)})
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - don't kill the server thread
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str, parts: list[str], query: dict[str, list[str]]) -> None:
        if method == "GET" and parts == ["healthz"]:
            self._send(200, {"status": "ok"})
        elif method == "POST" and parts == ["jobs"]:
            length = int(self.headers.get("Content-Length", 0))
            spec = json.loads(self.rfile.read(length) or b"{}")
            self._send(201, self.app.submit(spec))
        elif method == "GET" and parts == ["jobs"]:
            self._send(200, self.app.jobs())
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            self._send(200, self.app.job(int(parts[1])))
        elif (
            method == "GET"
            and len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "records"
        ):
            self._send(200, self.app.records(int(parts[1])))
        elif method == "GET" and len(parts) == 2 and parts[0] == "labels":
            nodes = [int(n) for n in query.get("node", [])]
            if not nodes:
                raise ValueError("pass at least one node id: ?node=0&node=5")
            algorithm = query.get("algorithm", [None])[0]
            seed_text = query.get("seed", [None])[0]
            self._send(
                200,
                self.app.query(
                    parts[1],
                    nodes,
                    algorithm=algorithm,
                    seed=None if seed_text is None else int(seed_text),
                ),
            )
        else:
            self._send(404, {"error": f"no route for {method} /{'/'.join(parts)}"})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


def make_server(
    app: ServiceApp, *, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server for ``app``; ``port=0`` picks a free one
    (read the bound port back from ``server.server_address``)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.app = app  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def serve(
    db: str | Path,
    *,
    cache_dir: str | Path | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    ready: Any = None,
) -> None:
    """Run the service until interrupted: HTTP frontend + worker agents.

    ``workers`` background :class:`Worker` threads drain the job store
    while the server answers requests; ``ready`` (an optional
    ``threading.Event``) is set once the port is bound, after the bound
    address is printed — which is how the CLI and the CI smoke test learn
    the ephemeral port.
    """
    store = JobStore(db)
    server = make_server(
        ServiceApp(store, cache_dir=cache_dir), host=host, port=port
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro service listening on http://{bound_host}:{bound_port}", flush=True)
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=Worker(store, name=f"serve-{i}", cache_dir=cache_dir).run,
            kwargs={"stop": stop},
            daemon=True,
        )
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
        for thread in threads:
            thread.join(timeout=2.0)
