"""SQLite-backed job queue + worker agents for the trial fabric.

One :class:`JobStore` database holds any number of *jobs*; a job is a
sweep's :class:`~repro.evaluation.runner.TrialTask` grid plus an optional
pickled execution context.  Tasks move through four states::

    pending --claim--> running --complete--> done
                          \\--fail-------> failed

Any number of :class:`Worker` agents — inline threads started by
:class:`~repro.evaluation.runner.QueueExecutor`, the ``repro serve``
process, or worker loops on other hosts sharing the database file — claim
pending tasks under ``BEGIN IMMEDIATE`` (so a task is claimed exactly
once), run them through the existing evaluation adapters, and write the
finished :class:`~repro.evaluation.runner.TrialRecord` back as a pickled
blob.  Pickle, not JSON, on purpose: the store is a *transport*, and the
bit-identity contract ("queue records == serial records") extends to numpy
scalar types inside the values dict.  JSON appears only at the REST
boundary (:mod:`repro.service.app`).

Two task-addressing modes share the schema:

* **Context jobs** (:class:`QueueExecutor`): the live instance list and
  algorithm mapping travel as the job's pickled context — the same
  picklability contract as ``ProcessExecutor``, with memory-mapped
  instances shipping by cache-entry path.
* **Digest-addressed jobs** (:func:`submit_sweep`, the REST layer): each
  task carries a plain-JSON instance spec resolved through
  :func:`repro.graphs.cached_instance` on whatever worker claims it, and
  an algorithm spec resolved by :func:`make_algorithm` — nothing but the
  shared cache directory needs to be common between submitter and worker.
  Workers pop the reserved ``LABELS_KEY`` column from records produced
  with ``keep_labels`` and persist it into the digest's mmap label store
  (:mod:`repro.service.labels`) before the record is archived.

Every state transition lands in an append-only ``audit`` table.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from ..evaluation.runner import (
    LABELS_KEY,
    TrialRecord,
    TrialTask,
    _run_one_trial,
)
from .labels import write_labels

__all__ = [
    "JobError",
    "JobStore",
    "Worker",
    "make_algorithm",
    "resolve_instance",
    "sweep_tasks",
    "submit_sweep",
]

_STATES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    spec    TEXT NOT NULL,
    context BLOB,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    job_id  INTEGER NOT NULL REFERENCES jobs(id),
    idx     INTEGER NOT NULL,
    task    TEXT NOT NULL,
    state   TEXT NOT NULL DEFAULT 'pending',
    worker  TEXT,
    record  BLOB,
    error   TEXT,
    updated REAL NOT NULL,
    PRIMARY KEY (job_id, idx)
);
CREATE INDEX IF NOT EXISTS tasks_by_state ON tasks(state, job_id, idx);
CREATE TABLE IF NOT EXISTS audit (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id INTEGER NOT NULL,
    idx    INTEGER,
    event  TEXT NOT NULL,
    worker TEXT,
    detail TEXT,
    at     REAL NOT NULL
);
"""


class JobError(RuntimeError):
    """A job or task is unknown, timed out, or finished in failure."""


class JobStore:
    """A job queue in one SQLite file, shareable across threads/processes.

    Every operation opens its own short-lived connection (WAL journal,
    5 s busy timeout), so one :class:`JobStore` object may be used freely
    from multiple threads and the same database file from multiple
    processes — SQLite serialises the writers; ``BEGIN IMMEDIATE`` around
    the claim makes task hand-out race-free.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=5.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=5000")
        return conn

    def _audit(
        self,
        conn: sqlite3.Connection,
        job_id: int,
        idx: int | None,
        event: str,
        worker: str | None = None,
        detail: str | None = None,
    ) -> None:
        conn.execute(
            "INSERT INTO audit (job_id, idx, event, worker, detail, at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (job_id, idx, event, worker, detail, time.time()),
        )

    # -- submission --------------------------------------------------------

    def create_job(
        self,
        *,
        spec: Mapping[str, Any],
        tasks: list[TrialTask],
        context: Any = None,
    ) -> int:
        """Insert a job and its task grid atomically; returns the job id."""
        if not tasks:
            raise JobError("a job needs at least one task")
        blob = None if context is None else pickle.dumps(context)
        now = time.time()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cur = conn.execute(
                "INSERT INTO jobs (spec, context, created) VALUES (?, ?, ?)",
                (json.dumps(dict(spec), sort_keys=True, default=str), blob, now),
            )
            job_id = int(cur.lastrowid)
            conn.executemany(
                "INSERT INTO tasks (job_id, idx, task, state, updated) "
                "VALUES (?, ?, ?, 'pending', ?)",
                [(job_id, i, task.to_json(), now) for i, task in enumerate(tasks)],
            )
            self._audit(conn, job_id, None, "created", detail=f"{len(tasks)} tasks")
            conn.execute("COMMIT")
        return job_id

    def job_context(self, job_id: int) -> Any:
        """The job's unpickled execution context, or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT context FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobError(f"unknown job {job_id}")
        return None if row[0] is None else pickle.loads(row[0])

    # -- worker protocol ---------------------------------------------------

    def claim_task(
        self, worker: str, *, job_id: int | None = None
    ) -> tuple[int, int, TrialTask] | None:
        """Atomically claim the lowest pending (job, idx) task, or ``None``.

        ``BEGIN IMMEDIATE`` takes the write lock before the SELECT, so two
        workers can never claim the same row; a busy database retries via
        the busy timeout.
        """
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            if job_id is None:
                row = conn.execute(
                    "SELECT job_id, idx, task FROM tasks WHERE state = 'pending' "
                    "ORDER BY job_id, idx LIMIT 1"
                ).fetchone()
            else:
                row = conn.execute(
                    "SELECT job_id, idx, task FROM tasks "
                    "WHERE state = 'pending' AND job_id = ? "
                    "ORDER BY idx LIMIT 1",
                    (job_id,),
                ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            claimed_job, idx, task_json = int(row[0]), int(row[1]), row[2]
            conn.execute(
                "UPDATE tasks SET state = 'running', worker = ?, updated = ? "
                "WHERE job_id = ? AND idx = ?",
                (worker, time.time(), claimed_job, idx),
            )
            self._audit(conn, claimed_job, idx, "claimed", worker)
            conn.execute("COMMIT")
        return claimed_job, idx, TrialTask.from_json(task_json)

    def complete_task(
        self, job_id: int, idx: int, record: TrialRecord, *, worker: str | None = None
    ) -> None:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "UPDATE tasks SET state = 'done', record = ?, updated = ? "
                "WHERE job_id = ? AND idx = ?",
                (pickle.dumps(record), time.time(), job_id, idx),
            )
            self._audit(conn, job_id, idx, "done", worker)
            conn.execute("COMMIT")

    def fail_task(
        self, job_id: int, idx: int, error: str, *, worker: str | None = None
    ) -> None:
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "UPDATE tasks SET state = 'failed', error = ?, updated = ? "
                "WHERE job_id = ? AND idx = ?",
                (error, time.time(), job_id, idx),
            )
            self._audit(conn, job_id, idx, "failed", worker, detail=error)
            conn.execute("COMMIT")

    # -- inspection --------------------------------------------------------

    def job_status(self, job_id: int) -> dict[str, Any]:
        """Spec, per-state task counts and the derived job state."""
        with self._connect() as conn:
            job = conn.execute(
                "SELECT spec, created FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if job is None:
                raise JobError(f"unknown job {job_id}")
            counts = dict.fromkeys(_STATES, 0)
            for state, count in conn.execute(
                "SELECT state, COUNT(*) FROM tasks WHERE job_id = ? GROUP BY state",
                (job_id,),
            ):
                counts[state] = int(count)
        total = sum(counts.values())
        if counts["failed"]:
            state = "failed"
        elif counts["done"] == total:
            state = "done"
        elif counts["running"] or counts["done"]:
            state = "running"
        else:
            state = "pending"
        return {
            "id": job_id,
            "spec": json.loads(job[0]),
            "created": float(job[1]),
            "state": state,
            "tasks": total,
            **counts,
        }

    def list_jobs(self) -> list[dict[str, Any]]:
        with self._connect() as conn:
            ids = [int(r[0]) for r in conn.execute("SELECT id FROM jobs ORDER BY id")]
        return [self.job_status(job_id) for job_id in ids]

    def audit_log(self, job_id: int) -> list[dict[str, Any]]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT idx, event, worker, detail, at FROM audit "
                "WHERE job_id = ? ORDER BY id",
                (job_id,),
            ).fetchall()
        return [
            {"idx": r[0], "event": r[1], "worker": r[2], "detail": r[3], "at": r[4]}
            for r in rows
        ]

    def _task_row(self, job_id: int, idx: int) -> tuple[str, bytes | None, str | None]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT state, record, error FROM tasks WHERE job_id = ? AND idx = ?",
                (job_id, idx),
            ).fetchone()
        if row is None:
            raise JobError(f"unknown task ({job_id}, {idx})")
        return row[0], row[1], row[2]

    def iter_records(
        self,
        job_id: int,
        *,
        timeout: float = 600.0,
        poll_interval: float = 0.02,
    ) -> Iterator[TrialRecord]:
        """Stream the job's records **in canonical grid order** as they land.

        Record *i* is yielded as soon as task *i* is done, even while later
        tasks still run — the consumer sees exactly the serial executor's
        ordering, which is what makes :class:`QueueExecutor` bit-identical.
        A failed task raises :class:`JobError` with the worker's error; a
        stalled queue raises after ``timeout`` seconds without progress.
        """
        total = self.job_status(job_id)["tasks"]
        deadline = time.monotonic() + timeout
        for idx in range(total):
            while True:
                state, blob, error = self._task_row(job_id, idx)
                if state == "done":
                    record = pickle.loads(blob)
                    yield record
                    deadline = time.monotonic() + timeout
                    break
                if state == "failed":
                    raise JobError(f"task ({job_id}, {idx}) failed: {error}")
                if time.monotonic() >= deadline:
                    raise JobError(
                        f"timed out after {timeout}s waiting for task "
                        f"({job_id}, {idx}) (state {state!r}) — are any "
                        "workers attached to this store?"
                    )
                time.sleep(poll_interval)

    def records(self, job_id: int) -> list[TrialRecord]:
        """All *completed* records so far, in grid order (no waiting)."""
        total = self.job_status(job_id)["tasks"]
        out: list[TrialRecord] = []
        for idx in range(total):
            state, blob, _ = self._task_row(job_id, idx)
            if state == "done":
                out.append(pickle.loads(blob))
        return out


# --------------------------------------------------------------------------- #
# Digest-addressed task resolution
# --------------------------------------------------------------------------- #

def resolve_instance(spec: Mapping[str, Any], *, cache_dir: str | Path | None):
    """Materialise a task's instance spec through the shared cache.

    ``spec`` is the plain-JSON ``TrialTask.instance`` payload:
    ``{"generator", "params", "seed", "mmap", "digest"}``.  When the spec
    carries a digest it is re-derived from (generator, params, seed) and
    must match — a mismatch means submitter and worker disagree about what
    the parameters produce (e.g. skewed cache format versions), and serving
    the wrong instance under a digest would poison every downstream label
    store.
    """
    from ..graphs import cached_instance, instance_digest

    generator = spec["generator"]
    params = dict(spec.get("params") or {})
    seed = spec.get("seed")
    expected = spec.get("digest")
    if expected is not None:
        actual = instance_digest(generator, params, seed)
        if actual != expected:
            raise JobError(
                f"instance digest mismatch for {generator}: task says "
                f"{expected}, parameters give {actual} — submitter and "
                "worker disagree (cache format or parameter drift)"
            )
    return cached_instance(
        generator,
        seed=seed,
        cache_dir=None if cache_dir is None else str(cache_dir),
        mmap=bool(spec.get("mmap", False)),
        **params,
    )


def make_algorithm(options: Mapping[str, Any]) -> Callable:
    """Build an evaluation adapter from a task's plain-JSON algorithm spec.

    ``options["name"]`` selects the adapter family — the same three the CLI
    sweep offers (``ours``, ``spectral``, ``label-propagation``) — and the
    remaining keys configure it (``backend``, ``threads``, ``block_size``,
    ``drop_prob``/``crash_prob``/``crash_round``, ``structural``,
    ``keep_labels``).
    """
    from ..baselines import LabelPropagation, SpectralClustering
    from ..distsim import make_failure_model
    from ..evaluation.runner import (
        evaluate_baseline,
        evaluate_load_balancing_clustering,
    )

    name = options.get("name")
    structural = bool(options.get("structural", False))
    keep_labels = bool(options.get("keep_labels", False))
    if name == "ours":
        failures = make_failure_model(
            drop_probability=float(options.get("drop_prob", 0.0)),
            crash_fraction=float(options.get("crash_prob", 0.0)),
            crash_round=int(options.get("crash_round") or 0),
        )
        return evaluate_load_balancing_clustering(
            backend=options.get("backend", "vectorized"),
            block_size=options.get("block_size"),
            threads=options.get("threads"),
            failures=failures,
            structural=structural,
            keep_labels=keep_labels,
        )
    if name == "spectral":
        return evaluate_baseline(
            SpectralClustering(), structural=structural, keep_labels=keep_labels
        )
    if name == "label-propagation":
        return evaluate_baseline(
            LabelPropagation(), structural=structural, keep_labels=keep_labels
        )
    raise JobError(
        f"unknown algorithm spec {name!r}: expected 'ours', 'spectral' or "
        "'label-propagation'"
    )


class Worker:
    """A worker agent: claim → execute → record, until the queue is dry.

    ``cache_dir`` is where digest-addressed instances resolve from and
    where label stores are written; context jobs ignore it.  The worker is
    deliberately stateless between tasks except for a per-job cache of the
    unpickled context and resolved instances, so one worker can serve many
    jobs interleaved.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        name: str = "worker",
        cache_dir: str | Path | None = None,
    ):
        self.store = store
        self.name = name
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self._contexts: dict[int, Any] = {}
        self._instances: dict[tuple, Any] = {}

    def _context(self, job_id: int) -> Any:
        if job_id not in self._contexts:
            self._contexts[job_id] = self.store.job_context(job_id)
        return self._contexts[job_id]

    def _resolve_task_instance(self, task: TrialTask):
        spec = task.instance or {}
        key = (
            spec.get("generator"),
            json.dumps(spec.get("params") or {}, sort_keys=True, default=str),
            spec.get("seed"),
            bool(spec.get("mmap", False)),
        )
        if key not in self._instances:
            self._instances[key] = resolve_instance(spec, cache_dir=self.cache_dir)
        return self._instances[key]

    def _execute(self, job_id: int, task: TrialTask) -> TrialRecord:
        context = self._context(job_id)
        if context is not None:
            # Context transport (QueueExecutor): run exactly the serial
            # loop's code path; values pass through untouched so queue
            # records stay bit-identical to serial ones.
            instances, algorithms = context
            values = _run_one_trial(instances, algorithms, task)
        else:
            if task.instance is None or task.options is None:
                raise JobError(
                    f"task ({job_id}, {task.index}) has neither a job "
                    "context nor instance/options specs"
                )
            instance = self._resolve_task_instance(task)
            algorithm = make_algorithm(task.options)
            values = dict(algorithm(instance, task.seed))
            values.setdefault("algorithm", task.algorithm)
            labels = values.pop(LABELS_KEY, None)
            digest = task.instance.get("digest")
            if labels is not None and digest is not None and self.cache_dir is not None:
                write_labels(
                    self.cache_dir,
                    task.instance["generator"],
                    digest,
                    task.algorithm,
                    task.seed,
                    labels,
                )
        config = task.config if task.config is not None else {"algorithm": task.algorithm}
        return TrialRecord(config=dict(config), trial=task.trial, values=values)

    def run_once(self, *, job_id: int | None = None) -> bool:
        """Claim and run one task; ``False`` when nothing was pending."""
        claim = self.store.claim_task(self.name, job_id=job_id)
        if claim is None:
            return False
        claimed_job, idx, task = claim
        try:
            record = self._execute(claimed_job, task)
        except Exception as exc:  # noqa: BLE001 - the queue is the boundary
            self.store.fail_task(
                claimed_job, idx, f"{type(exc).__name__}: {exc}", worker=self.name
            )
            return True
        self.store.complete_task(claimed_job, idx, record, worker=self.name)
        return True

    def run_job(self, job_id: int) -> int:
        """Drain one job's pending tasks; returns how many this worker ran."""
        ran = 0
        while self.run_once(job_id=job_id):
            ran += 1
        return ran

    def run(self, *, poll_interval: float = 0.2, stop: Any = None) -> None:
        """Serve loop: drain everything pending, idle-poll for more.

        ``stop`` is a ``threading.Event``-like object; the loop exits when
        it is set (checked between tasks, so a long task finishes first).
        """
        while stop is None or not stop.is_set():
            if not self.run_once():
                if stop is None:
                    return
                stop.wait(poll_interval)


# --------------------------------------------------------------------------- #
# Sweep submission (shared by `repro submit` and POST /jobs)
# --------------------------------------------------------------------------- #

_FAMILIES = ("sbm", "cliques", "expanders")


def sweep_tasks(spec: Mapping[str, Any]) -> list[TrialTask]:
    """Expand a sweep spec into its digest-addressed canonical task grid.

    The spec mirrors ``repro sweep``'s instance families and knobs::

        {"family": "sbm", "sizes": [120, 240], "k": 3,
         "p_in": 0.3, "p_out": 0.05,          # sbm
         "degree": 8,                          # expanders
         "algorithms": ["ours"], "trials": 2, "seed": 0,
         "backend": "vectorized", "mmap": false,
         "structural": false, "keep_labels": true}

    Task order is the canonical (instance, algorithm, trial) grid —
    identical to :func:`repro.evaluation.runner.run_trials` — and every
    task is self-contained: any worker sharing the cache directory can
    run it with no other state.
    """
    from ..graphs import instance_digest

    family = spec.get("family")
    if family not in _FAMILIES:
        raise JobError(f"unknown family {family!r}: expected one of {_FAMILIES}")
    sizes = list(spec.get("sizes") or [])
    if not sizes:
        raise JobError("spec needs a non-empty 'sizes' list")
    algorithms = list(spec.get("algorithms") or ["ours"])
    trials = int(spec.get("trials", 1))
    if trials < 1:
        raise JobError(f"trials must be >= 1, got {trials}")
    base_seed = int(spec.get("seed", 0))
    k = int(spec.get("k", 3))
    mmap = bool(spec.get("mmap", False))

    option_keys = (
        "backend",
        "block_size",
        "threads",
        "drop_prob",
        "crash_prob",
        "crash_round",
        "structural",
        "keep_labels",
    )

    instances: list[tuple[dict[str, Any], dict[str, Any]]] = []
    for size in sizes:
        size = int(size)
        gen_seed = base_seed + size
        if family == "sbm":
            generator = "planted_partition"
            params: dict[str, Any] = {
                "n": size,
                "k": k,
                "p_in": float(spec.get("p_in", 0.3)),
                "p_out": float(spec.get("p_out", 0.01)),
                "ensure_connected": True,
            }
        elif family == "cliques":
            generator = "cycle_of_cliques"
            params = {"k": k, "clique_size": size}
        else:
            generator = "ring_of_expanders"
            params = {"k": k, "cluster_size": size, "d": int(spec.get("degree", 8))}
        instance_spec = {
            "generator": generator,
            "params": params,
            "seed": gen_seed,
            "mmap": mmap,
            "digest": instance_digest(generator, params, gen_seed),
        }
        instances.append(({"size": size}, instance_spec))

    tasks: list[TrialTask] = []
    for index, (config, instance_spec) in enumerate(instances):
        for name in algorithms:
            options = {"name": name}
            for key in option_keys:
                if key in spec:
                    options[key] = spec[key]
            for trial in range(trials):
                tasks.append(
                    TrialTask(
                        index=index,
                        algorithm=name,
                        trial=trial,
                        base_seed=base_seed,
                        config={**config, "algorithm": name},
                        instance=instance_spec,
                        options=options,
                    )
                )
    return tasks


def submit_sweep(store: JobStore, spec: Mapping[str, Any]) -> int:
    """Validate a sweep spec, enqueue its task grid, return the job id."""
    tasks = sweep_tasks(spec)
    # Resolving algorithm specs up front turns "unknown algorithm" into a
    # submit-time error instead of N failed tasks later.
    for options in {json.dumps(t.options, sort_keys=True): t.options for t in tasks}.values():
        make_algorithm(options)
    return store.create_job(spec={"kind": "sweep", **dict(spec)}, tasks=tasks)
