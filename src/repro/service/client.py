"""Stdlib urllib client for the REST layer in :mod:`repro.service.app`.

Used by ``repro submit/jobs/query --url``, the CI service smoke test and
any script that wants the service without importing its internals.  Every
method returns the endpoint's decoded JSON; service-side errors raise
:class:`ServiceError` carrying the transported message, so callers see
"no label store for digest …" rather than a bare HTTP 404.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP request failed; ``status`` holds the code (None if unreachable)."""

    def __init__(self, message: str, *, status: int | None = None):
        super().__init__(message)
        self.status = status


@dataclass
class ServiceClient:
    """Client for one service base URL, e.g. ``http://127.0.0.1:8750``."""

    base_url: str
    timeout: float = 30.0

    def _request(self, method: str, path: str, payload: Any = None) -> dict[str, Any]:
        url = self.base_url.rstrip("/") + path
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read() or b"{}").get("error", str(exc))
            except (ValueError, OSError):
                message = str(exc)
            raise ServiceError(message, status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"service unreachable at {url}: {exc.reason}") from exc

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """POST a sweep spec; returns the created job's status (key ``job``)."""
        return self._request("POST", "/jobs", payload=spec)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: int) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{int(job_id)}")

    def records(self, job_id: int) -> list[dict[str, Any]]:
        return self._request("GET", f"/jobs/{int(job_id)}/records")["records"]

    def query(
        self,
        digest: str,
        nodes: int | Iterable[int],
        *,
        algorithm: str | None = None,
        seed: int | None = None,
    ) -> list[int]:
        """Cluster ids of ``nodes`` from the digest's mmap label store."""
        if isinstance(nodes, int):
            nodes = [nodes]
        params = "&".join(f"node={int(n)}" for n in nodes)
        if algorithm is not None:
            params += f"&algorithm={algorithm}"
        if seed is not None:
            params += f"&seed={int(seed)}"
        return self._request("GET", f"/labels/{digest}?{params}")["labels"]

    def wait(
        self, job_id: int, *, timeout: float = 60.0, poll_interval: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job is done; raise on failure or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] == "done":
                return status
            if status["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed "
                    f"({status['failed']}/{status['tasks']} tasks)"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for job {job_id} "
                    f"(state {status['state']!r})"
                )
            time.sleep(poll_interval)
