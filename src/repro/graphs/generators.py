"""Generators for well-clustered graphs used throughout the evaluation.

The paper analyses graphs with a strong cluster structure: a ``k``-way
partition ``S_1, ..., S_k`` where every ``G[S_i]`` is an expander and few
edges cross between clusters, quantified by the gap parameter
``Υ = (1 - λ_{k+1}) / ρ(k)``.  The generators below produce exactly such
instances, together with the *planted* partition so that accuracy can be
measured against ground truth:

* :func:`stochastic_block_model` — the classic SBM, the standard test bed for
  community detection (and the model family analysed by Becchetti et al.,
  against whom the paper compares).
* :func:`planted_partition` — SBM with equal intra/inter probabilities.
* :func:`cycle_of_cliques` — ``k`` cliques joined in a cycle by single edges;
  the sharpest possible cluster structure with conductance ``Θ(1/|S_i|²)``.
* :func:`ring_of_expanders` — ``k`` random-regular expanders joined by a few
  edges; this is the Section 1.2 scenario of the paper (constant ``k``,
  expander clusters, conductance ``O(1/polylog n)``).
* :func:`random_regular_graph` — a single expander (``k = 1`` control case).
* :func:`almost_regular_clustered_graph` — clusters with a bounded degree
  ratio ``Δ/δ``, exercising the Section 4.5 extension.
* :func:`noisy_clustered_graph` — a clustered graph with a tunable fraction
  of random "noise" edges added across clusters.

Every generator returns a :class:`ClusteredGraph`, which bundles the
:class:`~repro.graphs.graph.Graph` with its ground-truth
:class:`~repro.graphs.partition.Partition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .graph import Graph, GraphError
from .partition import Partition

__all__ = [
    "ClusteredGraph",
    "stochastic_block_model",
    "planted_partition",
    "cycle_of_cliques",
    "path_of_cliques",
    "ring_of_expanders",
    "connected_caveman",
    "random_regular_graph",
    "almost_regular_clustered_graph",
    "noisy_clustered_graph",
    "grid_graph",
    "complete_graph",
    "cycle_graph",
    "binary_tree_graph",
    "dumbbell_graph",
]


@dataclass(frozen=True)
class ClusteredGraph:
    """A graph together with its planted ground-truth partition.

    Attributes
    ----------
    graph:
        The generated graph.
    partition:
        Ground-truth cluster assignment used to score clustering algorithms.
    params:
        Generator parameters, recorded for experiment reproducibility.
    """

    graph: Graph
    partition: Partition
    params: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def k(self) -> int:
        return self.partition.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusteredGraph({self.graph!r}, k={self.k})"


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _balanced_sizes(n: int, k: int) -> list[int]:
    """Split ``n`` into ``k`` nearly equal sizes."""
    base = n // k
    rem = n % k
    return [base + (1 if i < rem else 0) for i in range(k)]


def _labels_from_sizes(sizes: Sequence[int]) -> np.ndarray:
    return np.repeat(np.arange(len(sizes)), sizes)


# --------------------------------------------------------------------------- #
# Stochastic block models
# --------------------------------------------------------------------------- #

def stochastic_block_model(
    sizes: Sequence[int],
    p_in: float | Sequence[float],
    p_out: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
    max_connect_attempts: int = 20,
    name: str | None = None,
) -> ClusteredGraph:
    """Sample a stochastic block model graph.

    Parameters
    ----------
    sizes:
        Cluster sizes ``|S_1|, ..., |S_k|``.
    p_in:
        Within-cluster edge probability.  Either a scalar (same for all
        clusters) or a per-cluster sequence.
    p_out:
        Between-cluster edge probability (``p_out < p_in`` gives a cluster
        structure).
    ensure_connected:
        If ``True``, resample until the graph is connected (the paper's
        analysis presumes a connected graph; a disconnected sample would make
        eigenvalue-based diagnostics degenerate).
    """
    sizes = [int(s) for s in sizes]
    k = len(sizes)
    if k == 0 or min(sizes) <= 0:
        raise GraphError("sizes must be a non-empty sequence of positive integers")
    if np.isscalar(p_in):
        p_in_vec = np.full(k, float(p_in))
    else:
        p_in_vec = np.asarray(p_in, dtype=float)
        if p_in_vec.shape != (k,):
            raise GraphError("p_in sequence must have one entry per cluster")
    if not (0.0 <= float(p_out) <= 1.0) or np.any(p_in_vec < 0) or np.any(p_in_vec > 1):
        raise GraphError("edge probabilities must lie in [0, 1]")

    rng = _as_rng(seed)
    n = int(sum(sizes))
    labels = _labels_from_sizes(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    def sample_once(r: np.random.Generator) -> list[tuple[int, int]]:
        edges: list[tuple[int, int]] = []
        # Within-cluster blocks.
        for c in range(k):
            lo, hi = offsets[c], offsets[c + 1]
            size = hi - lo
            if size >= 2:
                iu = np.triu_indices(size, k=1)
                mask = r.random(iu[0].size) < p_in_vec[c]
                edges.extend(zip((iu[0][mask] + lo).tolist(), (iu[1][mask] + lo).tolist()))
        # Between-cluster blocks.
        if p_out > 0:
            for a in range(k):
                for b in range(a + 1, k):
                    rows = np.arange(offsets[a], offsets[a + 1])
                    cols = np.arange(offsets[b], offsets[b + 1])
                    mask = r.random((rows.size, cols.size)) < p_out
                    ri, ci = np.nonzero(mask)
                    edges.extend(zip(rows[ri].tolist(), cols[ci].tolist()))
        return edges

    graph_name = name or f"sbm(n={n},k={k})"
    for attempt in range(max_connect_attempts):
        graph = Graph(n, sample_once(rng), name=graph_name)
        if not ensure_connected or graph.is_connected():
            break
    else:  # pragma: no cover - requires persistent bad luck
        raise GraphError(
            f"could not sample a connected SBM in {max_connect_attempts} attempts"
        )

    partition = Partition.from_labels(labels)
    return ClusteredGraph(
        graph=graph,
        partition=partition,
        params={
            "generator": "stochastic_block_model",
            "sizes": sizes,
            "p_in": p_in_vec.tolist(),
            "p_out": float(p_out),
        },
    )


def planted_partition(
    n: int,
    k: int,
    p_in: float,
    p_out: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
) -> ClusteredGraph:
    """SBM with ``k`` balanced clusters of total size ``n``."""
    return stochastic_block_model(
        _balanced_sizes(n, k),
        p_in,
        p_out,
        seed=seed,
        ensure_connected=ensure_connected,
        name=f"planted(n={n},k={k},p={p_in},q={p_out})",
    )


# --------------------------------------------------------------------------- #
# Deterministic clustered topologies
# --------------------------------------------------------------------------- #

def cycle_of_cliques(
    k: int,
    clique_size: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """``k`` cliques of equal size arranged in a cycle.

    Consecutive cliques are joined by ``bridges_per_join`` edges.  With a
    single bridge the conductance of each clique is ``Θ(1/clique_size²)``,
    giving an extremely well-clustered instance (huge Υ) which the paper's
    algorithm should solve almost perfectly.
    """
    if k < 2:
        raise GraphError("cycle_of_cliques requires k >= 2")
    if clique_size < 2:
        raise GraphError("clique_size must be at least 2")
    if bridges_per_join < 1 or bridges_per_join > clique_size:
        raise GraphError("bridges_per_join must be in [1, clique_size]")
    rng = _as_rng(seed)
    n = k * clique_size
    edges: list[tuple[int, int]] = []
    for c in range(k):
        lo = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((lo + i, lo + j))
    for c in range(k):
        nxt = (c + 1) % k
        if k == 2 and nxt < c:
            # With exactly two cliques, the cycle would duplicate the join.
            continue
        src = rng.choice(clique_size, size=bridges_per_join, replace=False) + c * clique_size
        dst = rng.choice(clique_size, size=bridges_per_join, replace=False) + nxt * clique_size
        edges.extend(zip(src.tolist(), dst.tolist()))
    labels = np.repeat(np.arange(k), clique_size)
    return ClusteredGraph(
        graph=Graph(n, edges, name=f"cycle_of_cliques(k={k},s={clique_size})"),
        partition=Partition.from_labels(labels),
        params={
            "generator": "cycle_of_cliques",
            "k": k,
            "clique_size": clique_size,
            "bridges_per_join": bridges_per_join,
        },
    )


def path_of_cliques(
    k: int,
    clique_size: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """Like :func:`cycle_of_cliques` but cliques are arranged on a path."""
    if k < 2:
        raise GraphError("path_of_cliques requires k >= 2")
    rng = _as_rng(seed)
    n = k * clique_size
    edges: list[tuple[int, int]] = []
    for c in range(k):
        lo = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((lo + i, lo + j))
    for c in range(k - 1):
        src = rng.choice(clique_size, size=bridges_per_join, replace=False) + c * clique_size
        dst = rng.choice(clique_size, size=bridges_per_join, replace=False) + (c + 1) * clique_size
        edges.extend(zip(src.tolist(), dst.tolist()))
    labels = np.repeat(np.arange(k), clique_size)
    return ClusteredGraph(
        graph=Graph(n, edges, name=f"path_of_cliques(k={k},s={clique_size})"),
        partition=Partition.from_labels(labels),
        params={"generator": "path_of_cliques", "k": k, "clique_size": clique_size},
    )


def connected_caveman(k: int, clique_size: int) -> ClusteredGraph:
    """Connected caveman graph: a cycle of cliques where one edge per clique
    is *rewired* (rather than added) to the next clique.

    This keeps the graph exactly ``(clique_size - 1)``-regular, which matches
    the paper's ``d``-regular setting without any almost-regular machinery.
    """
    if k < 2 or clique_size < 3:
        raise GraphError("connected_caveman requires k >= 2 and clique_size >= 3")
    n = k * clique_size
    edges: set[tuple[int, int]] = set()
    for c in range(k):
        lo = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.add((lo + i, lo + j))
    # Rewire: remove edge (lo, lo+1) within each clique and connect lo to the
    # next clique's node (next_lo + 1).
    for c in range(k):
        lo = c * clique_size
        nxt_lo = ((c + 1) % k) * clique_size
        edges.discard((lo, lo + 1))
        u, v = lo, nxt_lo + 1
        edges.add((min(u, v), max(u, v)))
    labels = np.repeat(np.arange(k), clique_size)
    return ClusteredGraph(
        graph=Graph(n, sorted(edges), name=f"connected_caveman(k={k},s={clique_size})"),
        partition=Partition.from_labels(labels),
        params={"generator": "connected_caveman", "k": k, "clique_size": clique_size},
    )


# --------------------------------------------------------------------------- #
# Random regular expanders and compositions
# --------------------------------------------------------------------------- #

def _random_regular_edges(
    n: int, d: int, rng: np.random.Generator, *, max_attempts: int = 50
) -> list[tuple[int, int]]:
    """Sample the edge set of a random ``d``-regular simple graph.

    Uses the configuration (pairing) model followed by double-edge-swap
    repair of self-loops and multi-edges.  Repair preserves the degree
    sequence exactly and, for ``d = O(√n)``, the number of defects is small
    so only a few swaps are needed.  Restarts from a fresh pairing if repair
    stalls (this happens with negligible probability for the parameter ranges
    used in the benchmarks).
    """
    if n * d % 2 != 0:
        raise GraphError("n*d must be even for a d-regular graph to exist")
    if d >= n:
        raise GraphError("degree must be smaller than the number of nodes")
    if d == 0:
        return []

    def canon(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs = [(int(stubs[2 * i]), int(stubs[2 * i + 1])) for i in range(stubs.size // 2)]
        edge_count: dict[tuple[int, int], int] = {}
        for a, b in pairs:
            key = canon(a, b)
            edge_count[key] = edge_count.get(key, 0) + 1
        bad = [e for e, c in edge_count.items() if e[0] == e[1] or c > 1]
        stalled = False
        swap_budget = 200 * len(pairs) + 1000
        swaps = 0
        while bad:
            swaps += 1
            if swaps > swap_budget:
                stalled = True
                break
            u, v = bad[-1]
            # Pick a uniformly random (multi-)edge to swap with.
            idx = int(rng.integers(len(pairs)))
            x, y = pairs[idx]
            # Proposed replacement edges after the double swap.
            new1, new2 = canon(u, x), canon(v, y)
            old1 = canon(u, v)
            old2 = canon(x, y)
            if old2 == old1:
                continue
            if new1[0] == new1[1] or new2[0] == new2[1]:
                continue
            if edge_count.get(new1, 0) > 0 or edge_count.get(new2, 0) > 0 or new1 == new2:
                continue
            # Apply swap: remove one copy of old1 and old2, add new1 and new2.
            for old in (old1, old2):
                edge_count[old] -= 1
                if edge_count[old] == 0:
                    del edge_count[old]
            edge_count[new1] = 1
            edge_count[new2] = 1
            # Update the pair list: replace one occurrence of each old edge.
            pairs[idx] = new2
            # Find a pair equal to old1 (the bad edge) and replace it.
            for j in range(len(pairs) - 1, -1, -1):
                if canon(*pairs[j]) == old1 and j != idx:
                    pairs[j] = new1
                    break
            bad = [e for e, c in edge_count.items() if e[0] == e[1] or c > 1]
        if stalled:
            continue
        return sorted(edge_count.keys())
    raise GraphError(
        f"failed to sample a simple {d}-regular graph on {n} nodes "
        f"in {max_attempts} attempts"
    )


def random_regular_graph(
    n: int, d: int, *, seed: int | np.random.Generator | None = None
) -> ClusteredGraph:
    """A single random ``d``-regular graph (an expander w.h.p.); ``k = 1``."""
    rng = _as_rng(seed)
    edges = _random_regular_edges(n, d, rng)
    return ClusteredGraph(
        graph=Graph(n, edges, name=f"random_regular(n={n},d={d})"),
        partition=Partition.from_labels(np.zeros(n, dtype=np.int64)),
        params={"generator": "random_regular_graph", "n": n, "d": d},
    )


def ring_of_expanders(
    k: int,
    cluster_size: int,
    d: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """``k`` random ``d``-regular expanders joined in a ring by a few edges.

    This is the motivating scenario of Section 1.2 of the paper: constant
    ``k``, balanced expander clusters, and cluster conductance
    ``O(bridges / (d · cluster_size))`` which is ``O(1/polylog n)`` for the
    parameters used in the benchmarks.  Inter-cluster bridges make the graph
    only *almost* regular (bridge endpoints have degree ``d + 1``), with the
    degree ratio bounded by ``(d + 2)/d`` — comfortably within the paper's
    almost-regular assumption.
    """
    if k < 1:
        raise GraphError("ring_of_expanders requires k >= 1")
    rng = _as_rng(seed)
    n = k * cluster_size
    edges: list[tuple[int, int]] = []
    for c in range(k):
        lo = c * cluster_size
        block = _random_regular_edges(cluster_size, d, rng)
        edges.extend((lo + u, lo + v) for u, v in block)
    if k >= 2:
        joins = range(k) if k > 2 else range(1)
        for c in joins:
            nxt = (c + 1) % k
            src = rng.choice(cluster_size, size=bridges_per_join, replace=False) + c * cluster_size
            dst = rng.choice(cluster_size, size=bridges_per_join, replace=False) + nxt * cluster_size
            edges.extend(zip(src.tolist(), dst.tolist()))
    labels = np.repeat(np.arange(k), cluster_size)
    return ClusteredGraph(
        graph=Graph(n, edges, name=f"ring_of_expanders(k={k},s={cluster_size},d={d})"),
        partition=Partition.from_labels(labels),
        params={
            "generator": "ring_of_expanders",
            "k": k,
            "cluster_size": cluster_size,
            "d": d,
            "bridges_per_join": bridges_per_join,
        },
    )


def almost_regular_clustered_graph(
    k: int,
    cluster_size: int,
    d_min: int,
    d_max: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """Clusters whose internal degree varies between ``d_min`` and ``d_max``.

    Each cluster is the union of a ``d_min``-regular graph and an additional
    random graph adding up to ``d_max - d_min`` to each node's degree, so the
    overall degree ratio ``Δ/δ`` is bounded by roughly ``(d_max + 1)/d_min``.
    Used by experiment E10 to test the Section 4.5 extension.
    """
    if d_min < 2 or d_max < d_min:
        raise GraphError("need 2 <= d_min <= d_max")
    rng = _as_rng(seed)
    n = k * cluster_size
    edges: set[tuple[int, int]] = set()
    for c in range(k):
        lo = c * cluster_size
        base = _random_regular_edges(cluster_size, d_min, rng)
        edges.update((lo + u, lo + v) for u, v in base)
        # Sprinkle extra intra-cluster edges to push some degrees towards d_max.
        extra_target = (d_max - d_min) * cluster_size // 2
        attempts = 0
        added = 0
        while added < extra_target and attempts < 20 * extra_target + 20:
            attempts += 1
            u, v = rng.integers(cluster_size, size=2)
            if u == v:
                continue
            a, b = lo + min(u, v), lo + max(u, v)
            if (a, b) in edges:
                continue
            edges.add((a, b))
            added += 1
    if k >= 2:
        joins = range(k) if k > 2 else range(1)
        for c in joins:
            nxt = (c + 1) % k
            src = rng.choice(cluster_size, size=bridges_per_join, replace=False) + c * cluster_size
            dst = rng.choice(cluster_size, size=bridges_per_join, replace=False) + nxt * cluster_size
            for a, b in zip(src.tolist(), dst.tolist()):
                edges.add((min(a, b), max(a, b)))
    labels = np.repeat(np.arange(k), cluster_size)
    return ClusteredGraph(
        graph=Graph(n, sorted(edges), name=f"almost_regular(k={k},s={cluster_size})"),
        partition=Partition.from_labels(labels),
        params={
            "generator": "almost_regular_clustered_graph",
            "k": k,
            "cluster_size": cluster_size,
            "d_min": d_min,
            "d_max": d_max,
        },
    )


def noisy_clustered_graph(
    base: ClusteredGraph,
    noise_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """Add ``noise_edges`` uniformly random missing edges to ``base``.

    Used by robustness experiments: as noise grows the gap Υ shrinks and the
    algorithm's accuracy should degrade gracefully.
    """
    rng = _as_rng(seed)
    g = base.graph
    existing = set(map(tuple, g.edge_array().tolist()))
    edges = list(existing)
    added = 0
    attempts = 0
    while added < noise_edges and attempts < 100 * noise_edges + 100:
        attempts += 1
        u, v = rng.integers(g.n, size=2)
        if u == v:
            continue
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key in existing:
            continue
        existing.add(key)
        edges.append(key)
        added += 1
    graph = Graph(g.n, edges, name=f"{g.name}+noise{noise_edges}")
    return ClusteredGraph(
        graph=graph,
        partition=base.partition,
        params={**base.params, "noise_edges": noise_edges},
    )


# --------------------------------------------------------------------------- #
# Simple control topologies (used by unit tests and load-balancing substrate)
# --------------------------------------------------------------------------- #

def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)], name=f"K{n}")


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)], name=f"C{n}")


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid graph."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges, name=f"grid({rows}x{cols})")


def binary_tree_graph(depth: int) -> Graph:
    """A complete binary tree of the given depth (depth 0 = single node)."""
    if depth < 0:
        raise GraphError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    edges = [(v, 2 * v + 1) for v in range(n) if 2 * v + 1 < n]
    edges += [(v, 2 * v + 2) for v in range(n) if 2 * v + 2 < n]
    return Graph(n, edges, name=f"binary_tree(depth={depth})")


def dumbbell_graph(clique_size: int) -> ClusteredGraph:
    """Two cliques joined by a single edge — the canonical 2-cluster instance."""
    return cycle_of_cliques(2, clique_size, bridges_per_join=1, seed=0)
