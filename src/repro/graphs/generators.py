"""Generators for well-clustered graphs used throughout the evaluation.

The paper analyses graphs with a strong cluster structure: a ``k``-way
partition ``S_1, ..., S_k`` where every ``G[S_i]`` is an expander and few
edges cross between clusters, quantified by the gap parameter
``Υ = (1 - λ_{k+1}) / ρ(k)``.  The generators below produce exactly such
instances, together with the *planted* partition so that accuracy can be
measured against ground truth:

* :func:`stochastic_block_model` — the classic SBM, the standard test bed for
  community detection (and the model family analysed by Becchetti et al.,
  against whom the paper compares).
* :func:`planted_partition` — SBM with equal intra/inter probabilities.
* :func:`cycle_of_cliques` — ``k`` cliques joined in a cycle by single edges;
  the sharpest possible cluster structure with conductance ``Θ(1/|S_i|²)``.
* :func:`ring_of_expanders` — ``k`` random-regular expanders joined by a few
  edges; this is the Section 1.2 scenario of the paper (constant ``k``,
  expander clusters, conductance ``O(1/polylog n)``).
* :func:`random_regular_graph` — a single expander (``k = 1`` control case).
* :func:`almost_regular_clustered_graph` — clusters with a bounded degree
  ratio ``Δ/δ``, exercising the Section 4.5 extension.
* :func:`noisy_clustered_graph` — a clustered graph with a tunable fraction
  of random "noise" edges added across clusters.

Every generator returns a :class:`ClusteredGraph`, which bundles the
:class:`~repro.graphs.graph.Graph` with its ground-truth
:class:`~repro.graphs.partition.Partition`.

All generators are **array-native**: they assemble ``(m, 2)`` int64 edge
arrays (sparse-regime Binomial sampling for the random families, index
arithmetic for the deterministic ones) and hand them to
:meth:`Graph.from_edge_array` — no Python-level per-edge loop anywhere, which
is what lets the SBM build connected n = 10⁶ instances in seconds.  Each
generator consumes randomness only through its ``rng``, so instances remain
seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from .graph import Graph, GraphError
from .partition import Partition
from .sampling import (
    bernoulli_block_edges,
    bernoulli_triu_edges,
    pair_to_triu_index,
    sample_triu_pairs_excluding,
)

__all__ = [
    "ClusteredGraph",
    "EdgeChunkStream",
    "stochastic_block_model",
    "stochastic_block_model_chunks",
    "planted_partition",
    "planted_partition_chunks",
    "cycle_of_cliques",
    "path_of_cliques",
    "ring_of_expanders",
    "connected_caveman",
    "random_regular_graph",
    "almost_regular_clustered_graph",
    "noisy_clustered_graph",
    "grid_graph",
    "complete_graph",
    "cycle_graph",
    "binary_tree_graph",
    "dumbbell_graph",
]

_EMPTY_EDGES = np.empty((0, 2), dtype=np.int64)


@dataclass(frozen=True)
class ClusteredGraph:
    """A graph together with its planted ground-truth partition.

    Attributes
    ----------
    graph:
        The generated graph.
    partition:
        Ground-truth cluster assignment used to score clustering algorithms.
    params:
        Generator parameters, recorded for experiment reproducibility.
    """

    graph: Graph
    partition: Partition
    params: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def k(self) -> int:
        return self.partition.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusteredGraph({self.graph!r}, k={self.k})"


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class EdgeChunkStream:
    """One generation *attempt*, emitted as bounded chunks of fused edge keys.

    The out-of-core generation protocol: instead of returning a finished
    :class:`ClusteredGraph`, a ``<generator>_chunks`` function yields one
    ``EdgeChunkStream`` per acceptance attempt.  ``chunks`` iterates 1-d
    int64 arrays of *fused edge keys* ``u·n + v`` with ``0 ≤ u ≤ v < n``,
    unique within and across the attempt's chunks (so the union of chunks is
    exactly the attempt's edge set, 8 bytes per edge and no ``(m, 2)``
    transient).  The consumer applies the acceptance rule — every node degree
    at least ``min_degree_required``, connectivity when ``ensure_connected``
    — and on rejection simply pulls the next attempt, which resumes the
    generator's seeded rng exactly where the in-RAM retry loop would; after
    the last attempt the generator raises :class:`GraphError`, so exhaustion
    behaves identically on both paths.

    Key fusing bounds ``n`` by ``n² ≤ 2⁶³`` (≈ 3·10⁹ nodes) — the same bound
    the canonical CSR sort in :class:`~repro.graphs.graph.Graph` already has.
    """

    n: int
    name: str
    labels: np.ndarray
    params: dict
    chunks: Iterator[np.ndarray]
    ensure_connected: bool = False
    min_degree_required: int = 0


def _instance_from_chunk_streams(attempts: Iterator[EdgeChunkStream]) -> ClusteredGraph:
    """In-RAM consumer of a chunk-stream generator: build, validate, retry.

    This is what keeps the default dense path and the streaming cache path
    on one code path: both consume the *same* attempt iterator (identical
    rng draws), this one by concatenating the keys and handing the decoded
    ``(m, 2)`` array to the validated constructor.
    """
    for stream in attempts:
        parts = [np.asarray(c, dtype=np.int64) for c in stream.chunks]
        keys = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        edges = np.stack([keys // stream.n, keys % stream.n], axis=1)
        graph = Graph.from_edge_array(stream.n, edges, name=stream.name)
        if graph.min_degree < stream.min_degree_required:
            continue  # pragma: no cover - generators repair degree-0 nodes
        if stream.ensure_connected and not graph.is_connected():
            continue
        return ClusteredGraph(
            graph=graph,
            partition=Partition.from_labels(stream.labels),
            params=stream.params,
        )
    raise GraphError("generator produced no attempts")  # pragma: no cover


def _balanced_sizes(n: int, k: int) -> list[int]:
    """Split ``n`` into ``k`` nearly equal sizes."""
    base = n // k
    rem = n % k
    return [base + (1 if i < rem else 0) for i in range(k)]


def _labels_from_sizes(sizes: Sequence[int]) -> np.ndarray:
    return np.repeat(np.arange(len(sizes)), sizes)


def _concat_edges(chunks: list[np.ndarray]) -> np.ndarray:
    if not chunks:
        return _EMPTY_EDGES
    return np.concatenate(chunks, axis=0)


# --------------------------------------------------------------------------- #
# Stochastic block models
# --------------------------------------------------------------------------- #

def stochastic_block_model(
    sizes: Sequence[int],
    p_in: float | Sequence[float],
    p_out: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
    max_connect_attempts: int = 20,
    name: str | None = None,
) -> ClusteredGraph:
    """Sample a stochastic block model graph.

    Parameters
    ----------
    sizes:
        Cluster sizes ``|S_1|, ..., |S_k|``.
    p_in:
        Within-cluster edge probability.  Either a scalar (same for all
        clusters) or a per-cluster sequence.
    p_out:
        Between-cluster edge probability (``p_out < p_in`` gives a cluster
        structure).
    ensure_connected:
        If ``True``, resample until the graph is connected (the paper's
        analysis presumes a connected graph; a disconnected sample would make
        eigenvalue-based diagnostics degenerate).

    Notes
    -----
    Sampling is sparse-regime: each block draws its edge *count* from the
    exact Binomial and then picks that many distinct pairs, so cost is
    proportional to the number of edges rather than to the Θ(n²) candidate
    pairs.  The edge-set distribution is identical to the classical per-pair
    Bernoulli formulation.  This in-RAM constructor and the out-of-core
    cache writer both consume :func:`stochastic_block_model_chunks`, so the
    two paths draw identical instances from identical seeds.
    """
    return _instance_from_chunk_streams(
        stochastic_block_model_chunks(
            sizes,
            p_in,
            p_out,
            seed=seed,
            ensure_connected=ensure_connected,
            max_connect_attempts=max_connect_attempts,
            name=name,
        )
    )


def stochastic_block_model_chunks(
    sizes: Sequence[int],
    p_in: float | Sequence[float],
    p_out: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
    max_connect_attempts: int = 20,
    name: str | None = None,
) -> Iterator[EdgeChunkStream]:
    """Chunk-stream variant of :func:`stochastic_block_model`.

    Yields one :class:`EdgeChunkStream` per acceptance attempt whose chunks
    are the per-block fused edge keys (one chunk per within-cluster
    triangular block, one per between-cluster rectangular block) — blocks
    occupy disjoint key ranges and each block's pairs are distinct, so the
    keys are unique across the whole attempt without any global dedup.
    Randomness consumption is identical to the in-RAM constructor, which is
    in fact a consumer of this function.
    """
    sizes = [int(s) for s in sizes]
    k = len(sizes)
    if k == 0 or min(sizes) <= 0:
        raise GraphError("sizes must be a non-empty sequence of positive integers")
    if np.isscalar(p_in):
        p_in_vec = np.full(k, float(p_in))
    else:
        p_in_vec = np.asarray(p_in, dtype=float)
        if p_in_vec.shape != (k,):
            raise GraphError("p_in sequence must have one entry per cluster")
    if not (0.0 <= float(p_out) <= 1.0) or np.any(p_in_vec < 0) or np.any(p_in_vec > 1):
        raise GraphError("edge probabilities must lie in [0, 1]")

    rng = _as_rng(seed)
    n = int(sum(sizes))
    labels = _labels_from_sizes(sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    graph_name = name or f"sbm(n={n},k={k})"
    params = {
        "generator": "stochastic_block_model",
        "sizes": sizes,
        "p_in": p_in_vec.tolist(),
        "p_out": float(p_out),
    }

    def sample_keys(r: np.random.Generator) -> Iterator[np.ndarray]:
        # Within-cluster blocks: triangular Bernoulli sampling per cluster.
        for c in range(k):
            block = bernoulli_triu_edges(sizes[c], p_in_vec[c], r)
            if block.size:
                yield (block[:, 0] + offsets[c]) * n + (block[:, 1] + offsets[c])
        # Between-cluster blocks: rectangular Bernoulli sampling per pair.
        if p_out > 0:
            for a in range(k):
                for b in range(a + 1, k):
                    block = bernoulli_block_edges(sizes[a], sizes[b], p_out, r)
                    if block.size:
                        yield (block[:, 0] + offsets[a]) * n + (block[:, 1] + offsets[b])

    def attempts() -> Iterator[EdgeChunkStream]:
        for _ in range(max_connect_attempts):
            yield EdgeChunkStream(
                n=n,
                name=graph_name,
                labels=labels,
                params=params,
                chunks=sample_keys(rng),
                ensure_connected=ensure_connected,
            )
        raise GraphError(
            f"could not sample a connected SBM in {max_connect_attempts} attempts"
        )

    return attempts()


def planted_partition(
    n: int,
    k: int,
    p_in: float,
    p_out: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
) -> ClusteredGraph:
    """SBM with ``k`` balanced clusters of total size ``n``."""
    return stochastic_block_model(
        _balanced_sizes(n, k),
        p_in,
        p_out,
        seed=seed,
        ensure_connected=ensure_connected,
        name=f"planted(n={n},k={k},p={p_in},q={p_out})",
    )


def planted_partition_chunks(
    n: int,
    k: int,
    p_in: float,
    p_out: float,
    *,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
) -> Iterator[EdgeChunkStream]:
    """Chunk-stream variant of :func:`planted_partition` (same signature)."""
    return stochastic_block_model_chunks(
        _balanced_sizes(n, k),
        p_in,
        p_out,
        seed=seed,
        ensure_connected=ensure_connected,
        name=f"planted(n={n},k={k},p={p_in},q={p_out})",
    )


# --------------------------------------------------------------------------- #
# Deterministic clustered topologies
# --------------------------------------------------------------------------- #

def _clique_edges(k: int, clique_size: int, *, skip_first_pair: bool = False) -> np.ndarray:
    """Edge arrays of ``k`` disjoint cliques laid out consecutively.

    ``skip_first_pair`` drops the ``(lo, lo+1)`` edge of every clique, which
    is the edge :func:`connected_caveman` rewires.
    """
    iu = np.triu_indices(clique_size, k=1)
    base = np.stack(iu, axis=1).astype(np.int64)
    if skip_first_pair:
        base = base[1:]  # row 0 is the pair (0, 1)
    offsets = (np.arange(k, dtype=np.int64) * clique_size)[:, None, None]
    return (base[None, :, :] + offsets).reshape(-1, 2)


def _bridge_edges(
    k: int,
    clique_size: int,
    bridges_per_join: int,
    rng: np.random.Generator,
    *,
    cyclic: bool,
) -> np.ndarray:
    """Random bridges joining consecutive blocks on a path or a cycle."""
    if k < 2:
        return _EMPTY_EDGES
    if cyclic:
        # With exactly two blocks, the cycle would duplicate the join.
        joins = range(k) if k > 2 else range(1)
    else:
        joins = range(k - 1)
    chunks: list[np.ndarray] = []
    for c in joins:
        nxt = (c + 1) % k
        src = rng.choice(clique_size, size=bridges_per_join, replace=False) + c * clique_size
        dst = rng.choice(clique_size, size=bridges_per_join, replace=False) + nxt * clique_size
        chunks.append(np.stack([src, dst], axis=1).astype(np.int64))
    return _concat_edges(chunks)


def cycle_of_cliques(
    k: int,
    clique_size: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """``k`` cliques of equal size arranged in a cycle.

    Consecutive cliques are joined by ``bridges_per_join`` edges.  With a
    single bridge the conductance of each clique is ``Θ(1/clique_size²)``,
    giving an extremely well-clustered instance (huge Υ) which the paper's
    algorithm should solve almost perfectly.
    """
    if k < 2:
        raise GraphError("cycle_of_cliques requires k >= 2")
    if clique_size < 2:
        raise GraphError("clique_size must be at least 2")
    if bridges_per_join < 1 or bridges_per_join > clique_size:
        raise GraphError("bridges_per_join must be in [1, clique_size]")
    rng = _as_rng(seed)
    n = k * clique_size
    edges = _concat_edges(
        [
            _clique_edges(k, clique_size),
            _bridge_edges(k, clique_size, bridges_per_join, rng, cyclic=True),
        ]
    )
    labels = np.repeat(np.arange(k), clique_size)
    return ClusteredGraph(
        graph=Graph.from_edge_array(n, edges, name=f"cycle_of_cliques(k={k},s={clique_size})"),
        partition=Partition.from_labels(labels),
        params={
            "generator": "cycle_of_cliques",
            "k": k,
            "clique_size": clique_size,
            "bridges_per_join": bridges_per_join,
        },
    )


def path_of_cliques(
    k: int,
    clique_size: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """Like :func:`cycle_of_cliques` but cliques are arranged on a path."""
    if k < 2:
        raise GraphError("path_of_cliques requires k >= 2")
    rng = _as_rng(seed)
    n = k * clique_size
    edges = _concat_edges(
        [
            _clique_edges(k, clique_size),
            _bridge_edges(k, clique_size, bridges_per_join, rng, cyclic=False),
        ]
    )
    labels = np.repeat(np.arange(k), clique_size)
    return ClusteredGraph(
        graph=Graph.from_edge_array(n, edges, name=f"path_of_cliques(k={k},s={clique_size})"),
        partition=Partition.from_labels(labels),
        params={"generator": "path_of_cliques", "k": k, "clique_size": clique_size},
    )


def connected_caveman(k: int, clique_size: int) -> ClusteredGraph:
    """Connected caveman graph: a cycle of cliques where one edge per clique
    is *rewired* (rather than added) to the next clique.

    This keeps the graph exactly ``(clique_size - 1)``-regular, which matches
    the paper's ``d``-regular setting without any almost-regular machinery.
    """
    if k < 2 or clique_size < 3:
        raise GraphError("connected_caveman requires k >= 2 and clique_size >= 3")
    n = k * clique_size
    # Rewire: the (lo, lo+1) edge of each clique becomes lo -> next clique's
    # node (next_lo + 1); index arithmetic over all cliques at once.
    lo = np.arange(k, dtype=np.int64) * clique_size
    nxt = ((np.arange(k) + 1) % k) * clique_size + 1
    rewired = np.stack([np.minimum(lo, nxt), np.maximum(lo, nxt)], axis=1)
    edges = _concat_edges([_clique_edges(k, clique_size, skip_first_pair=True), rewired])
    labels = np.repeat(np.arange(k), clique_size)
    return ClusteredGraph(
        graph=Graph.from_edge_array(n, edges, name=f"connected_caveman(k={k},s={clique_size})"),
        partition=Partition.from_labels(labels),
        params={"generator": "connected_caveman", "k": k, "clique_size": clique_size},
    )


# --------------------------------------------------------------------------- #
# Random regular expanders and compositions
# --------------------------------------------------------------------------- #

def _random_regular_edges(
    n: int, d: int, rng: np.random.Generator, *, max_attempts: int = 50
) -> np.ndarray:
    """Sample the ``(m, 2)`` edge array of a random ``d``-regular simple graph.

    Vectorised configuration (pairing) model: all ``n·d`` stubs are shuffled
    and paired at once, then defective pairs (self-loops and duplicates) are
    repaired by re-shuffling *only their stubs* — the multiset of stubs is
    preserved, so the degree sequence stays exact.  When the repair stalls
    (the leftover defective stubs cannot be rearranged among themselves, e.g.
    two parallel stubs of the same node), a few random good edges are
    released back into the pool, which is the standard escape and keeps the
    expected number of extra rounds O(1).  Restarts from a fresh pairing if a
    whole repair pass fails; for ``d = O(√n)`` defects are rare and one pass
    almost always suffices.
    """
    if n * d % 2 != 0:
        raise GraphError("n*d must be even for a d-regular graph to exist")
    if d >= n:
        raise GraphError("degree must be smaller than the number of nodes")
    if d == 0:
        return _EMPTY_EDGES

    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    for _ in range(max_attempts):
        rng.shuffle(stubs)
        u = stubs[0::2].copy()
        v = stubs[1::2].copy()
        prev_bad = u.size + 1
        stall = 0
        for _ in range(200):
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            keys = lo * n + hi
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            # Every pair equal to an earlier pair is defective; the first
            # occurrence of each key is kept.
            dup_sorted = np.concatenate([[False], sorted_keys[1:] == sorted_keys[:-1]])
            bad = np.zeros(keys.size, dtype=bool)
            bad[order] = dup_sorted
            bad |= u == v
            num_bad = int(bad.sum())
            if num_bad == 0:
                return np.stack([lo, hi], axis=1)
            stall = stall + 1 if num_bad >= prev_bad else 0
            prev_bad = num_bad
            bad_idx = np.flatnonzero(bad)
            if stall >= 5:
                good_idx = np.flatnonzero(~bad)
                release = min(good_idx.size, max(16, 4 * bad_idx.size))
                if release:
                    bad_idx = np.concatenate(
                        [bad_idx, rng.choice(good_idx, size=release, replace=False)]
                    )
                stall = 0
                prev_bad = u.size + 1
            pool = np.concatenate([u[bad_idx], v[bad_idx]])
            rng.shuffle(pool)
            u[bad_idx] = pool[0::2]
            v[bad_idx] = pool[1::2]
    raise GraphError(
        f"failed to sample a simple {d}-regular graph on {n} nodes "
        f"in {max_attempts} attempts"
    )


def random_regular_graph(
    n: int, d: int, *, seed: int | np.random.Generator | None = None
) -> ClusteredGraph:
    """A single random ``d``-regular graph (an expander w.h.p.); ``k = 1``."""
    rng = _as_rng(seed)
    edges = _random_regular_edges(n, d, rng)
    return ClusteredGraph(
        graph=Graph.from_edge_array(n, edges, name=f"random_regular(n={n},d={d})"),
        partition=Partition.from_labels(np.zeros(n, dtype=np.int64)),
        params={"generator": "random_regular_graph", "n": n, "d": d},
    )


def ring_of_expanders(
    k: int,
    cluster_size: int,
    d: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """``k`` random ``d``-regular expanders joined in a ring by a few edges.

    This is the motivating scenario of Section 1.2 of the paper: constant
    ``k``, balanced expander clusters, and cluster conductance
    ``O(bridges / (d · cluster_size))`` which is ``O(1/polylog n)`` for the
    parameters used in the benchmarks.  Inter-cluster bridges make the graph
    only *almost* regular (bridge endpoints have degree ``d + 1``), with the
    degree ratio bounded by ``(d + 2)/d`` — comfortably within the paper's
    almost-regular assumption.
    """
    if k < 1:
        raise GraphError("ring_of_expanders requires k >= 1")
    rng = _as_rng(seed)
    n = k * cluster_size
    chunks = [
        _random_regular_edges(cluster_size, d, rng) + c * cluster_size for c in range(k)
    ]
    chunks.append(_bridge_edges(k, cluster_size, bridges_per_join, rng, cyclic=True))
    labels = np.repeat(np.arange(k), cluster_size)
    return ClusteredGraph(
        graph=Graph.from_edge_array(
            n, _concat_edges(chunks), name=f"ring_of_expanders(k={k},s={cluster_size},d={d})"
        ),
        partition=Partition.from_labels(labels),
        params={
            "generator": "ring_of_expanders",
            "k": k,
            "cluster_size": cluster_size,
            "d": d,
            "bridges_per_join": bridges_per_join,
        },
    )


def almost_regular_clustered_graph(
    k: int,
    cluster_size: int,
    d_min: int,
    d_max: int,
    *,
    bridges_per_join: int = 1,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """Clusters whose internal degree varies between ``d_min`` and ``d_max``.

    Each cluster is the union of a ``d_min``-regular graph and an additional
    random graph adding up to ``d_max - d_min`` to each node's degree, so the
    overall degree ratio ``Δ/δ`` is bounded by roughly ``(d_max + 1)/d_min``.
    Used by experiment E10 to test the Section 4.5 extension.
    """
    if d_min < 2 or d_max < d_min:
        raise GraphError("need 2 <= d_min <= d_max")
    rng = _as_rng(seed)
    n = k * cluster_size
    chunks: list[np.ndarray] = []
    for c in range(k):
        lo = c * cluster_size
        base = _random_regular_edges(cluster_size, d_min, rng)
        chunks.append(base + lo)
        # Sprinkle extra intra-cluster edges to push some degrees towards
        # d_max: distinct missing pairs, sampled directly (no rejection loop).
        total_pairs = cluster_size * (cluster_size - 1) // 2
        extra_target = min(
            (d_max - d_min) * cluster_size // 2, total_pairs - base.shape[0]
        )
        if extra_target > 0:
            existing = np.sort(pair_to_triu_index(base[:, 0], base[:, 1], cluster_size))
            extra = sample_triu_pairs_excluding(cluster_size, extra_target, existing, rng)
            chunks.append(extra + lo)
    chunks.append(_bridge_edges(k, cluster_size, bridges_per_join, rng, cyclic=True))
    labels = np.repeat(np.arange(k), cluster_size)
    return ClusteredGraph(
        graph=Graph.from_edge_array(
            n, _concat_edges(chunks), name=f"almost_regular(k={k},s={cluster_size})"
        ),
        partition=Partition.from_labels(labels),
        params={
            "generator": "almost_regular_clustered_graph",
            "k": k,
            "cluster_size": cluster_size,
            "d_min": d_min,
            "d_max": d_max,
        },
    )


def noisy_clustered_graph(
    base: ClusteredGraph,
    noise_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> ClusteredGraph:
    """Add ``noise_edges`` uniformly random missing edges to ``base``.

    Used by robustness experiments: as noise grows the gap Υ shrinks and the
    algorithm's accuracy should degrade gracefully.  The missing pairs are
    sampled directly in the sparse regime (no tuple-set rejection loop);
    raises :class:`GraphError` when the base graph has fewer than
    ``noise_edges`` missing pairs.
    """
    rng = _as_rng(seed)
    g = base.graph
    arr = g.edge_array()
    non_loops = arr[arr[:, 0] != arr[:, 1]]
    existing = np.sort(pair_to_triu_index(non_loops[:, 0], non_loops[:, 1], g.n))
    try:
        noise = sample_triu_pairs_excluding(g.n, int(noise_edges), existing, rng)
    except ValueError as exc:
        raise GraphError(str(exc)) from None
    graph = Graph.from_edge_array(
        g.n, np.concatenate([arr, noise]), name=f"{g.name}+noise{noise_edges}"
    )
    return ClusteredGraph(
        graph=graph,
        partition=base.partition,
        params={**base.params, "noise_edges": noise_edges},
    )


# --------------------------------------------------------------------------- #
# Simple control topologies (used by unit tests and load-balancing substrate)
# --------------------------------------------------------------------------- #

def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    iu = np.triu_indices(n, k=1)
    return Graph.from_edge_array(n, np.stack(iu, axis=1).astype(np.int64), name=f"K{n}")


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    i = np.arange(n, dtype=np.int64)
    return Graph.from_edge_array(n, np.stack([i, (i + 1) % n], axis=1), name=f"C{n}")


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid graph."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    return Graph.from_edge_array(
        rows * cols, _concat_edges([horizontal, vertical]), name=f"grid({rows}x{cols})"
    )


def binary_tree_graph(depth: int) -> Graph:
    """A complete binary tree of the given depth (depth 0 = single node)."""
    if depth < 0:
        raise GraphError("depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    v = np.arange(n, dtype=np.int64)
    left = np.stack([v, 2 * v + 1], axis=1)[2 * v + 1 < n]
    right = np.stack([v, 2 * v + 2], axis=1)[2 * v + 2 < n]
    return Graph.from_edge_array(n, _concat_edges([left, right]), name=f"binary_tree(depth={depth})")


def dumbbell_graph(clique_size: int) -> ClusteredGraph:
    """Two cliques joined by a single edge — the canonical 2-cluster instance."""
    return cycle_of_cliques(2, clique_size, bridges_per_join=1, seed=0)
