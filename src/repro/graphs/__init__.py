"""Graph substrate: data structure, generators, spectral and cut quantities.

The public surface of this subpackage is everything Theorem 1.1 talks about
on the *input* side: the graph itself, the planted partition, conductances,
the eigenvalues of the random walk matrix and the structure parameter Υ.
"""

from .conductance import (
    cluster_conductances,
    conductance,
    cut_size,
    degree_volume,
    inner_conductance,
    k_way_expansion_of_partition,
    normalized_cut,
    sweep_cut,
    volume,
)
from .generators import (
    ClusteredGraph,
    almost_regular_clustered_graph,
    binary_tree_graph,
    complete_graph,
    connected_caveman,
    cycle_graph,
    cycle_of_cliques,
    dumbbell_graph,
    grid_graph,
    noisy_clustered_graph,
    path_of_cliques,
    planted_partition,
    random_regular_graph,
    ring_of_expanders,
    stochastic_block_model,
)
from .graph import Graph, GraphError
from .store import (
    CSRStorage,
    CSRStorageError,
    DenseStorage,
    MmapStorage,
    DEFAULT_SHARD_ARCS,
)
from .cache import (
    CACHE_FORMAT_VERSION,
    CacheEntry,
    InstanceCacheError,
    cached_instance,
    instance_cache_path,
    instance_digest,
    instance_shard_dir,
    list_cache,
    open_shard_entry,
    prune_cache,
)
from .lfr import lfr_benchmark, truncated_power_law
from .sampling import (
    AliasTable,
    SegmentedAliasTable,
    bernoulli_block_edges,
    bernoulli_triu_edges,
    pair_to_triu_index,
    sample_distinct_indices,
    sample_triu_pairs_excluding,
    triu_index_to_pair,
)
from .io import (
    read_edge_list,
    read_metis,
    read_partition,
    write_edge_list,
    write_metis,
    write_partition,
)
from .partition import (
    Partition,
    PartitionError,
    best_label_permutation,
    confusion_matrix,
    misclassification_rate,
    misclassified_nodes,
)
from .spectral import (
    ClusterStructureReport,
    SpectralDecomposition,
    analyse_cluster_structure,
    cluster_gap,
    gap_parameter_upsilon,
    lanczos_start_vector,
    lazy_mixing_time_bound,
    random_walk_eigenvalues,
    spectral_decomposition,
    spectral_gap,
    symmetric_walk_matrix,
    theoretical_round_count,
    top_eigenpairs,
    top_eigenvector_projection,
)
from .validation import InstanceReport, ValidationIssue, validate_instance

__all__ = [
    # graph.py
    "Graph",
    "GraphError",
    # partition.py
    "Partition",
    "PartitionError",
    "best_label_permutation",
    "confusion_matrix",
    "misclassification_rate",
    "misclassified_nodes",
    # generators.py
    "ClusteredGraph",
    "almost_regular_clustered_graph",
    "binary_tree_graph",
    "complete_graph",
    "connected_caveman",
    "cycle_graph",
    "cycle_of_cliques",
    "dumbbell_graph",
    "grid_graph",
    "noisy_clustered_graph",
    "path_of_cliques",
    "planted_partition",
    "random_regular_graph",
    "ring_of_expanders",
    "stochastic_block_model",
    # store.py
    "CSRStorage",
    "CSRStorageError",
    "DenseStorage",
    "MmapStorage",
    "DEFAULT_SHARD_ARCS",
    # cache.py
    "CACHE_FORMAT_VERSION",
    "CacheEntry",
    "InstanceCacheError",
    "cached_instance",
    "instance_cache_path",
    "instance_digest",
    "instance_shard_dir",
    "list_cache",
    "open_shard_entry",
    "prune_cache",
    # lfr.py
    "lfr_benchmark",
    "truncated_power_law",
    # sampling.py
    "AliasTable",
    "SegmentedAliasTable",
    "bernoulli_block_edges",
    "bernoulli_triu_edges",
    "pair_to_triu_index",
    "sample_distinct_indices",
    "sample_triu_pairs_excluding",
    "triu_index_to_pair",
    # conductance.py
    "cluster_conductances",
    "conductance",
    "cut_size",
    "degree_volume",
    "inner_conductance",
    "k_way_expansion_of_partition",
    "normalized_cut",
    "sweep_cut",
    "volume",
    # spectral.py
    "ClusterStructureReport",
    "SpectralDecomposition",
    "analyse_cluster_structure",
    "cluster_gap",
    "gap_parameter_upsilon",
    "lanczos_start_vector",
    "lazy_mixing_time_bound",
    "random_walk_eigenvalues",
    "spectral_decomposition",
    "spectral_gap",
    "symmetric_walk_matrix",
    "theoretical_round_count",
    "top_eigenpairs",
    "top_eigenvector_projection",
    # io.py
    "read_edge_list",
    "read_metis",
    "read_partition",
    "write_edge_list",
    "write_metis",
    "write_partition",
    # validation.py
    "InstanceReport",
    "ValidationIssue",
    "validate_instance",
]
