"""On-disk instance cache: npz- and shard-backed CSR store for generated graphs.

Large generated instances (n ≥ 10⁶, tens of millions of edges) take seconds
to build even with the array-native pipeline, and a sweep regenerates the
same instance for every algorithm/trial combination and again for every
benchmark that shares the workload.  The generators are seed-deterministic,
so an instance is fully identified by *(generator name, parameters, seed)* —
this module persists the finished CSR arrays keyed by a canonical digest of
exactly that triple and re-loads them through the trusted
:meth:`~repro.graphs.graph.Graph.from_csr` /
:meth:`~repro.graphs.graph.Graph.from_storage` constructors, turning a
multi-second rebuild into a ~100 ms file read (or an O(n) manifest open).

Two on-disk formats coexist, readable interchangeably:

**v1 — one ``.npz`` per instance** (uncompressed for load speed):
``indptr``/``indices`` (the canonical CSR arrays exactly as
``Graph.csr_arrays()`` returns them), ``labels`` (the ground-truth
partition) and ``meta`` (a JSON blob with the cache key fields, checked on
load so a digest collision or stale file is detected rather than silently
served).  This is what plain ``cached_instance(...)`` writes.

**v2 — one sharded directory per instance** (``{generator}-{digest}.csr/``):
a :class:`~repro.graphs.store.MmapStorage` layout — ``manifest.json``,
``indptr.npy``, row-chunked ``indices-XXXX.npy`` shards — plus
``labels.npy``.  The cache metadata (key, graph name, edge counts) lives in
the manifest's ``extra`` block.  ``cached_instance(..., mmap=True)`` writes
and serves this format, returning a graph whose adjacency is **memory
mapped**: the OS pages shards in on demand, worker processes share pages
instead of copies, and pickling ships only the directory path.

Either format satisfies either request: a ``mmap=True`` call finding only a
v1 npz converts it to a v2 entry without regenerating; a plain call finding
only a v2 directory materialises it into RAM.

v2 entries have two *write* paths producing byte-identical directories: the
materialising build (generate in RAM, then shard) and the **streamed build**
(:func:`generate_to_cache`), which consumes the generator's edge-chunk
stream straight into a :class:`~repro.graphs.store.ShardWriter` via an
on-disk key spill — O(n + window) peak residency, so instances larger than
RAM can be *generated*, not just served.  The spill is consumed in **one
pass**: once per-row degrees are known, a bucketing sweep routes every arc
key (both directions) to its row-window's bucket file, and each bucket is
then read exactly once to emit its window — total scratch I/O is O(m),
where the historical per-window re-scan paid O(windows · m) read volume.
:func:`track_spill_io` exposes the exact scratch byte counts so benchmarks
can gate the read amplification.  ``cached_instance(..., mmap=True)``
uses the streamed build automatically when the generator has a ``*_chunks``
variant (see its ``streaming`` parameter).

Writes are atomic (temp file/directory + ``os.replace``) so a crashed or
concurrent writer can never leave a truncated entry under the final name,
and *any* failure to load — missing file, truncated npz, bad manifest,
metadata mismatch — falls back to regenerating and rewriting the entry.
Corruption therefore costs one regeneration, never a wrong answer.

The cache also has a lifecycle: :func:`list_cache` enumerates entries with
sizes and access times, and :func:`prune_cache` evicts least-recently-used
entries (by atime, falling back to mtime) until the store fits a byte
budget — exposed as ``repro cache list|prune`` on the CLI and as the
``max_bytes=`` knob of :func:`cached_instance`.

One caveat the key cannot cover: the digest identifies the generator by
*name*, not by implementation, so it trusts generators to keep their
seed → instance mapping stable.  When a change to a generator alters the
instance drawn for a given seed (as the PR 2 rewrite did, intentionally
distribution-preserving), bump :data:`CACHE_FORMAT_VERSION` so persistent
caches (e.g. ``benchmarks/.bench-cache``) are invalidated rather than
serving pre-change graphs.

The public entry point is :func:`cached_instance`; :func:`instance_digest`
exposes the key so tests and tooling can reason about it.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

import numpy as np

from .generators import ClusteredGraph, EdgeChunkStream
from .graph import Graph, GraphError
from .partition import Partition
from .store import DEFAULT_SHARD_ARCS, MmapStorage, ShardWriter

__all__ = [
    "CACHE_FORMAT_VERSION",
    "InstanceCacheError",
    "instance_digest",
    "instance_cache_path",
    "instance_shard_dir",
    "open_shard_entry",
    "cached_instance",
    "generate_to_cache",
    "SpillIOStats",
    "track_spill_io",
    "CacheEntry",
    "list_cache",
    "prune_cache",
]

#: Part of every cache key: bump when the on-disk layout changes OR when a
#: generator's seed → instance mapping changes, so existing entries are
#: regenerated instead of served stale.
#:
#: v2: the LFR samplers were batched (new seed → instance mapping for
#: ``lfr_benchmark``) and the sharded storage format was introduced.
#:
#: v3: the LFR endpoint draws moved from inverse-CDF / ``Generator.choice``
#: to Walker alias tables — same distribution, different consumption of the
#: seeded stream, hence a new seed → instance mapping.
#:
#: v4 (this PR): LFR candidate draws are capped at
#: :data:`~repro.graphs.lfr._MAX_CANDIDATE_BATCH` keys per rng call so a
#: rejection round's working set is bounded; rounds needing more draw the
#: same budget in sub-batches, which consumes the seeded stream differently
#: at large n — a new seed → instance mapping (small instances, whose rounds
#: fit one sub-batch, are unchanged but share the version bump).
CACHE_FORMAT_VERSION = 4


class InstanceCacheError(ValueError):
    """Raised for unusable cache keys (e.g. non-serialisable parameters)."""


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to canonical JSON-compatible form.

    Numpy scalars collapse to their Python equivalents so that e.g.
    ``np.int64(4)`` and ``4`` produce the same digest; containers recurse.
    Anything else (arrays, callables, rngs) is rejected — a cache key must
    be a plain, stable description of the instance.
    """
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    raise InstanceCacheError(
        f"cache key parameter of type {type(value).__name__} is not serialisable; "
        "cache keys must be built from plain scalars, strings and containers"
    )


def _key_json(generator: str, params: Mapping[str, Any], seed: int | None) -> str:
    return json.dumps(
        {
            "generator": generator,
            "params": _canonical(params),
            "seed": _canonical(seed),
            "version": CACHE_FORMAT_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def instance_digest(generator: str, params: Mapping[str, Any], seed: int | None) -> str:
    """Canonical digest identifying one generated instance.

    A SHA-256 over the sorted-JSON rendering of ``(generator name, params,
    seed, format version)``, truncated to 16 hex characters for readable
    file names.  Two calls produce the same digest iff they describe the
    same instance (up to numpy-scalar vs Python-scalar differences, which
    are canonicalised away).
    """
    import hashlib

    return hashlib.sha256(_key_json(generator, params, seed).encode("utf-8")).hexdigest()[:16]


def instance_cache_path(
    cache_dir: str | Path, generator: str, params: Mapping[str, Any], seed: int | None
) -> Path:
    """The v1 npz file an instance would be cached at (whether or not it exists)."""
    digest = instance_digest(generator, params, seed)
    return Path(cache_dir) / f"{generator}-{digest}.npz"


def instance_shard_dir(
    cache_dir: str | Path, generator: str, params: Mapping[str, Any], seed: int | None
) -> Path:
    """The v2 sharded directory an instance would be cached at."""
    digest = instance_digest(generator, params, seed)
    return Path(cache_dir) / f"{generator}-{digest}.csr"


def _store(path: Path, instance: ClusteredGraph, key_json: str) -> None:
    """Atomically write the instance's CSR arrays + metadata to ``path``."""
    indptr, indices = instance.graph.csr_arrays()
    meta = {
        "key": key_json,
        "graph_name": instance.graph.name,
        "instance_params": _lenient_json(instance.params),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            # Uncompressed savez: warm loads are disk-bound and a 10⁶-node
            # SBM re-loads in ~100 ms; compression would trade that for CPU.
            np.savez(
                handle,
                indptr=np.asarray(indptr),
                indices=np.asarray(indices),
                labels=instance.partition.labels,
                meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _lenient_json(params: Mapping[str, Any]) -> dict[str, Any]:
    """Best-effort JSON form of a generator's ``params`` record (for display)."""
    try:
        return json.loads(json.dumps(dict(params), default=str))
    except (TypeError, ValueError):
        return {}


def _load(path: Path, key_json: str) -> ClusteredGraph:
    """Load a v1 npz instance; raises on any structural or metadata problem."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("key") != key_json:
            raise InstanceCacheError(f"cache entry {path} does not match its key")
        indptr = np.ascontiguousarray(data["indptr"], dtype=np.int64)
        indices = np.ascontiguousarray(data["indices"], dtype=np.int64)
        labels = np.asarray(data["labels"], dtype=np.int64)
    graph = Graph.from_csr(indptr, indices, name=str(meta.get("graph_name", "cached")))
    if labels.shape != (graph.n,):
        raise InstanceCacheError(f"cache entry {path} has {labels.size} labels for n={graph.n}")
    return ClusteredGraph(
        graph=graph,
        partition=Partition(labels),
        params=dict(meta.get("instance_params", {})),
    )


def _store_sharded(
    directory: Path,
    instance: ClusteredGraph,
    key_json: str,
    *,
    shard_arcs: int | None = None,
) -> None:
    """Atomically write a v2 sharded entry (manifest + shards + labels)."""
    indptr, indices = instance.graph.csr_arrays()
    extra = {
        "key": key_json,
        "graph_name": instance.graph.name,
        "instance_params": _lenient_json(instance.params),
        "num_edges": int(instance.graph.num_edges),
        "num_self_loops": int(instance.graph.num_self_loops),
    }
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=directory.parent, suffix=".csr.tmp"))
    try:
        MmapStorage.write(
            tmp, np.asarray(indptr), np.asarray(indices), shard_arcs=shard_arcs, extra=extra
        )
        np.save(tmp / "labels.npy", np.asarray(instance.partition.labels, dtype=np.int64))
        try:
            os.replace(tmp, directory)
        except OSError:
            # The destination exists and is non-empty (a concurrent or stale
            # writer); clear it and retry — the tmp directory is complete, so
            # the window without a valid entry is as small as it can be.
            shutil.rmtree(directory, ignore_errors=True)
            os.replace(tmp, directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def open_shard_entry(
    directory: str | Path, *, mmap: bool = True, expected_key: str | None = None
) -> tuple[Graph, np.ndarray | None, dict[str, Any]]:
    """Open a sharded (v2) entry directory as ``(graph, labels, params)``.

    The one place the manifest schema is interpreted: the cache loader and
    the CLI's ``analyse <entry.csr>`` path both come through here, so a
    schema change (renaming a count field, adding metadata) lands in a
    single helper.  ``labels`` is the entry's ground-truth array or
    ``None`` when the directory carries no ``labels.npy``;
    ``expected_key`` (the cache loader's digest check) raises before the
    potentially O(m) edge-count recovery of a count-less manifest.
    """
    directory = Path(directory)
    storage = MmapStorage(directory)
    meta = storage.extra
    if expected_key is not None and meta.get("key") != expected_key:
        raise InstanceCacheError(f"cache entry {directory} does not match its key")
    labels_path = directory / "labels.npy"
    labels = (
        np.asarray(np.load(labels_path), dtype=np.int64)
        if labels_path.is_file()
        else None
    )
    counts = {}
    if "num_edges" in meta and "num_self_loops" in meta:
        counts = {
            "num_edges": int(meta["num_edges"]),
            "num_self_loops": int(meta["num_self_loops"]),
        }
    graph = Graph.from_storage(
        storage if mmap else storage.materialize(),
        name=str(meta.get("graph_name", directory.name)),
        **counts,
    )
    return graph, labels, dict(meta.get("instance_params", {}))


def _load_sharded(directory: Path, key_json: str, *, mmap: bool) -> ClusteredGraph:
    """Load a v2 sharded instance, memory-mapped or materialised into RAM."""
    graph, labels, params = open_shard_entry(
        directory, mmap=mmap, expected_key=key_json
    )
    if labels is None:
        raise InstanceCacheError(f"cache entry {directory} has no labels.npy")
    if labels.shape != (graph.n,):
        raise InstanceCacheError(
            f"cache entry {directory} has {labels.size} labels for n={graph.n}"
        )
    return ClusteredGraph(graph=graph, partition=Partition(labels), params=params)


def _resolve_generator(
    generator: Callable[..., ClusteredGraph] | str,
) -> tuple[Callable[..., ClusteredGraph], str]:
    if callable(generator):
        return generator, generator.__name__
    from . import generators as _generators
    from . import lfr as _lfr

    for module in (_generators, _lfr):
        fn = getattr(module, generator, None)
        if callable(fn):
            return fn, generator
    raise InstanceCacheError(f"unknown generator name {generator!r}")


def _resolve_chunk_generator(
    generator: Callable[..., Any] | str,
) -> tuple[Callable[..., Iterator[EdgeChunkStream]], str]:
    """Resolve a generator to its chunk-stream variant and its *base* name.

    The base name (``lfr_benchmark``, not ``lfr_benchmark_chunks``) is what
    enters the cache key, so a streamed write and a materialising write of
    the same instance land on the same digest — which is what makes the two
    paths interchangeable entries rather than parallel caches.
    """
    from . import generators as _generators
    from . import lfr as _lfr

    if callable(generator):
        name = generator.__name__
        if name.endswith("_chunks"):
            return generator, name[: -len("_chunks")]
        generator = name
    _, base = _resolve_generator(generator)
    for module in (_generators, _lfr):
        chunk_fn = getattr(module, f"{base}_chunks", None)
        if callable(chunk_fn):
            return chunk_fn, base
    raise InstanceCacheError(
        f"generator {base!r} has no chunk-stream variant ({base}_chunks); "
        "streamed generation needs one"
    )


#: int64 fused keys per spill-file read chunk during the shard-building pass
#: (4M keys = 32 MB resident) — the same working-set scale as a default shard.
_SPILL_READ_KEYS = 4_000_000


@dataclass
class SpillIOStats:
    """Exact scratch-file byte counts for one streamed build.

    Collected by :func:`track_spill_io`.  ``spill_*`` counts the flat pass-A
    key file; ``bucket_*`` counts the per-window bucket files the one-pass
    build routes arcs into.  ``read_amplification`` is the end-to-end ratio
    of scratch bytes read to scratch bytes written — the quantity the
    bucketed design bounds at O(1) where the historical per-window re-scan
    paid O(windows).
    """

    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    bucket_bytes_written: int = 0
    bucket_bytes_read: int = 0

    @property
    def bytes_written(self) -> int:
        return self.spill_bytes_written + self.bucket_bytes_written

    @property
    def bytes_read(self) -> int:
        return self.spill_bytes_read + self.bucket_bytes_read

    @property
    def read_amplification(self) -> float:
        if self.bytes_written == 0:
            return 0.0
        return self.bytes_read / self.bytes_written


_SPILL_IO_WATCHERS: list[SpillIOStats] = []


@contextmanager
def track_spill_io() -> Iterator[SpillIOStats]:
    """Record scratch I/O of streamed builds run inside the ``with`` block."""
    stats = SpillIOStats()
    _SPILL_IO_WATCHERS.append(stats)
    try:
        yield stats
    finally:
        _SPILL_IO_WATCHERS.remove(stats)


def _account_spill_io(
    *,
    spill_written: int = 0,
    spill_read: int = 0,
    bucket_written: int = 0,
    bucket_read: int = 0,
) -> None:
    for stats in _SPILL_IO_WATCHERS:
        stats.spill_bytes_written += spill_written
        stats.spill_bytes_read += spill_read
        stats.bucket_bytes_written += bucket_written
        stats.bucket_bytes_read += bucket_read


def _spill_attempt(
    stream: EdgeChunkStream, spill: Path
) -> tuple[int, int, np.ndarray]:
    """Pass A of the streamed build: spill one attempt's keys, count degrees.

    Writes every fused-key chunk to ``spill`` verbatim (raw int64, no
    framing — the keys are globally unique per the chunk protocol, so order
    never matters again) while accumulating the exact arc count of every
    row: a non-loop key ``u·n + v`` contributes one arc to row ``u`` and one
    to row ``v``, a self-loop one arc to its row, matching the canonical
    CSR build.  Returns ``(num_keys, num_self_loops, degrees)``; the O(n)
    degree array is the only allocation that survives the pass.
    """
    n = stream.n
    degrees = np.zeros(n, dtype=np.int64)
    num_keys = 0
    loops = 0
    with open(spill, "wb") as fh:
        for chunk in stream.chunks:
            keys = np.ascontiguousarray(chunk, dtype=np.int64)
            if keys.size == 0:
                continue
            if int(keys.min()) < 0 or int(keys.max()) >= n * n:
                raise GraphError(
                    f"edge key outside [0, n²) for n={n}: the chunk stream "
                    "violated the fused-key protocol"
                )
            u = keys // n
            non_loop = u != keys % n
            degrees += np.bincount(u, minlength=n)
            degrees += np.bincount(keys[non_loop] % n, minlength=n)
            loops += int(keys.size - np.count_nonzero(non_loop))
            num_keys += keys.size
            keys.tofile(fh)
            _account_spill_io(spill_written=keys.nbytes)
    return num_keys, loops, degrees


def _spill_windows(indptr: np.ndarray, window_arcs: int) -> Iterator[tuple[int, int]]:
    """Row windows of at most ``window_arcs`` arcs (cut like shard flushes).

    The same greedy row-boundary rule :class:`~repro.graphs.store.ShardWriter`
    uses: extend the window to the furthest row whose slice still fits, but
    always advance by at least one row so an oversized single row becomes an
    oversized single window rather than a livelock.
    """
    n = indptr.size - 1
    r0 = 0
    while r0 < n:
        limit = int(indptr[r0]) + window_arcs
        r1 = int(np.searchsorted(indptr, limit, side="right")) - 1
        r1 = max(r0 + 1, min(n, r1))
        yield r0, r1
        r0 = r1


def _bucket_spill(
    spill: Path, bucket_dir: Path, n: int, window_starts: np.ndarray
) -> None:
    """Route every arc of the flat spill into its row-window's bucket file.

    One sequential scan of the spill: each fused edge key ``u·n + v``
    contributes the key itself (row ``u``'s arc) and, for non-loops, the
    flipped key ``v·n + u`` (row ``v``'s arc).  The owning window of an arc
    is found with one ``searchsorted`` against the window start rows, and
    arcs are appended to ``bucket_dir/<window>.keys`` grouped by a stable
    argsort — so each spill byte is read once and each arc byte written
    once, replacing the historical re-scan of the whole spill per window.
    """
    with open(spill, "rb") as fh:
        while True:
            keys = np.fromfile(fh, dtype=np.int64, count=_SPILL_READ_KEYS)
            if keys.size == 0:
                break
            _account_spill_io(spill_read=keys.nbytes)
            u = keys // n
            v = keys % n
            non_loop = u != v
            arcs = np.concatenate([keys, v[non_loop] * n + u[non_loop]])
            owners = arcs // n
            wid = np.searchsorted(window_starts, owners, side="right") - 1
            order = np.argsort(wid, kind="stable")
            arcs = arcs[order]
            wid = wid[order]
            bounds = np.flatnonzero(wid[1:] != wid[:-1]) + 1
            starts = np.concatenate(([0], bounds))
            stops = np.concatenate((bounds, [arcs.size]))
            for lo, hi in zip(starts, stops):
                group = arcs[lo:hi]
                with open(bucket_dir / f"{int(wid[lo]):06d}.keys", "ab") as out:
                    group.tofile(out)
                _account_spill_io(bucket_written=group.nbytes)


def _shards_from_spill(
    tmp: Path,
    spill: Path,
    stream: EdgeChunkStream,
    degrees: np.ndarray,
    extra: dict[str, Any],
    *,
    shard_arcs: int | None,
    window_arcs: int,
) -> None:
    """Pass B of the streamed build: spill file → sharded entry directory.

    Builds the canonical CSR shards window by window in **one pass over the
    scratch data**: :func:`_bucket_spill` first routes every arc key into
    its window's bucket file, then each bucket is read exactly once, sorted,
    and emitted.  Row ``u``'s arcs all carry fused keys in the disjoint
    range ``[u·n, (u+1)·n)``, so sorting each window's arc keys equals
    slicing one global sort — per-window output is bit-identical to the
    materialising ``np.sort`` build, and the finished directory is
    byte-identical to :func:`_store_sharded` of the same instance.  Total
    scratch read volume is O(m) (asserted ≤ 1.5× the spill size by E22, vs
    O(windows · m) for the historical per-window re-scan); the resident set
    is O(window + read chunk + n), never O(m).
    """
    n = stream.n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    windows = list(_spill_windows(indptr, window_arcs))
    window_starts = np.asarray([w[0] for w in windows], dtype=np.int64)
    writer = ShardWriter(tmp, n, shard_arcs=shard_arcs)
    bucket_dir = Path(tempfile.mkdtemp(dir=spill.parent, suffix=".buckets.tmp"))
    try:
        _bucket_spill(spill, bucket_dir, n, window_starts)
        for w, (r0, r1) in enumerate(windows):
            bucket = bucket_dir / f"{w:06d}.keys"
            if bucket.is_file():
                arcs = np.fromfile(bucket, dtype=np.int64)
                _account_spill_io(bucket_read=arcs.nbytes)
                bucket.unlink()
                arcs = np.sort(arcs)
            else:
                # Every row in the window has degree zero.
                arcs = np.empty(0, dtype=np.int64)
            if arcs.size > 1 and bool(np.any(arcs[1:] == arcs[:-1])):
                # Same failure the trusted in-RAM build detects on its global
                # sorted key array; a duplicate undirected edge duplicates an
                # arc key inside one row, hence inside one window.
                raise GraphError("duplicate undirected edges are not allowed")
            writer.append_rows(degrees[r0:r1], arcs % n)
    finally:
        shutil.rmtree(bucket_dir, ignore_errors=True)
    # Store the normalised (first-appearance-ordered) label vector, exactly
    # as the materialising path persists `instance.partition.labels` — raw
    # generator labels would load to the same Partition but break the
    # byte-identity of the two write paths.
    np.save(tmp / "labels.npy", Partition(stream.labels).labels)
    writer.finalise(extra=extra)


def generate_to_cache(
    generator: Callable[..., Any] | str,
    *,
    seed: int | None = None,
    cache_dir: str | Path,
    refresh: bool = False,
    shard_arcs: int | None = None,
    window_arcs: int | None = None,
    max_bytes: int | None = None,
    **params: Any,
) -> ClusteredGraph:
    """Generate an instance **straight into** a sharded cache entry.

    The out-of-core complement of ``cached_instance(..., mmap=True)``: where
    that path materialises the full edge array and CSR structure in RAM
    before sharding it, this one consumes the generator's
    :class:`~repro.graphs.generators.EdgeChunkStream` chunk by chunk — keys
    are spilled to a flat scratch file while per-row degrees accumulate
    (pass A), then the shards are built window by window from the spill
    (pass B) and the entry is atomically renamed into place.  Peak residency
    is O(n + window), never O(m), which is what makes n = 10⁷ generation
    feasible on a RAM budget the instance itself exceeds.

    Both paths consume the *same* seeded chunk stream and the same shard
    cut rule, so the finished entry — digest, manifest, shard bytes, labels
    — is identical to what the materialising path writes for the same
    ``(generator, params, seed)``; rejection retries (connectivity,
    min-degree) also replay identically because an attempt's chunks are
    fully consumed before the next attempt draws.

    ``generator`` may be a base generator (name or callable) with a
    ``*_chunks`` variant, or the chunk variant itself; the cache key always
    uses the base name.  ``window_arcs`` bounds pass B's working set
    (default: one shard's worth).  Remaining parameters match
    :func:`cached_instance`; the graph is returned memory-mapped.
    """
    fn_chunks, name = _resolve_chunk_generator(generator)
    cache_path = Path(cache_dir)
    key_json = _key_json(name, params, seed)
    shard_dir = instance_shard_dir(cache_path, name, params, seed)
    if not refresh and shard_dir.is_dir():
        try:
            return _load_sharded(shard_dir, key_json, mmap=True)
        except Exception:
            pass
    cache_path.mkdir(parents=True, exist_ok=True)
    window = DEFAULT_SHARD_ARCS if window_arcs is None else int(window_arcs)
    if window < 1:
        raise InstanceCacheError(f"window_arcs must be >= 1, got {window_arcs}")
    spill_fd, spill_name = tempfile.mkstemp(dir=cache_path, suffix=".keys.tmp")
    os.close(spill_fd)
    spill = Path(spill_name)
    try:
        for stream in fn_chunks(**params, seed=seed):
            num_keys, loops, degrees = _spill_attempt(stream, spill)
            min_degree = int(degrees.min()) if degrees.size else 0
            if min_degree < stream.min_degree_required:
                continue  # pragma: no cover - generators repair degree-0 nodes
            extra = {
                "key": key_json,
                "graph_name": stream.name,
                "instance_params": _lenient_json(stream.params),
                "num_edges": num_keys,
                "num_self_loops": loops,
            }
            tmp = Path(tempfile.mkdtemp(dir=cache_path, suffix=".csr.tmp"))
            try:
                _shards_from_spill(
                    tmp,
                    spill,
                    stream,
                    degrees,
                    extra,
                    shard_arcs=shard_arcs,
                    window_arcs=window,
                )
                if stream.ensure_connected:
                    graph = Graph.from_storage(
                        MmapStorage(tmp),
                        name=stream.name,
                        num_edges=num_keys,
                        num_self_loops=loops,
                    )
                    if not graph.is_connected():
                        shutil.rmtree(tmp, ignore_errors=True)
                        continue
                try:
                    os.replace(tmp, shard_dir)
                except OSError:
                    # Same stale-destination repair as _store_sharded.
                    shutil.rmtree(shard_dir, ignore_errors=True)
                    os.replace(tmp, shard_dir)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
            _prune_after_write(cache_path, max_bytes, shard_dir)
            return _load_sharded(shard_dir, key_json, mmap=True)
    finally:
        try:
            spill.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    raise GraphError("generator produced no attempts")  # pragma: no cover


def cached_instance(
    generator: Callable[..., ClusteredGraph] | str,
    *,
    seed: int | None = None,
    cache_dir: str | Path | None = None,
    refresh: bool = False,
    mmap: bool = False,
    streaming: bool | None = None,
    shard_arcs: int | None = None,
    max_bytes: int | None = None,
    **params: Any,
) -> ClusteredGraph:
    """Generate an instance through the on-disk cache.

    Parameters
    ----------
    generator:
        A generator callable (e.g. :func:`~repro.graphs.generators.planted_partition`)
        or its name as exported by :mod:`repro.graphs`.  The callable's
        ``__name__`` is part of the cache key.
    seed:
        Passed to the generator as ``seed=`` and part of the cache key.
        The generators are seed-deterministic, which is what makes the
        cache sound; an unseeded call (``seed=None``) is still cached but
        then pins whichever instance was drawn first.
    cache_dir:
        Directory holding the cache entries.  ``None`` disables caching and
        calls the generator directly (so call sites can thread an optional
        ``--cache-dir`` straight through); combining ``cache_dir=None``
        with ``mmap=True`` raises, since the memory-mapped substrate *is*
        the on-disk entry.
    refresh:
        Regenerate and overwrite the entry even if present.
    mmap:
        Serve the instance **memory-mapped** from a v2 sharded entry: the
        returned graph's adjacency is backed by
        :class:`~repro.graphs.store.MmapStorage` (OS-paged shards, shared
        across processes, pickled by path).  A v1 npz entry found under the
        same key is converted to v2 without regenerating.
    streaming:
        How a **missing** ``mmap=True`` entry is generated.  ``None`` (the
        default) streams the generator's edge chunks straight into the
        sharded entry via :func:`generate_to_cache` whenever the generator
        has a ``*_chunks`` variant — O(n + window) peak residency — and
        falls back to the materialising build otherwise.  ``False`` forces
        the materialising build; ``True`` requires the chunk variant and
        raises without it.  The finished entry is byte-identical either
        way, so this knob changes memory behaviour, never results.
        ``streaming=True`` with ``mmap=False`` raises: the streamed build
        only produces sharded entries.
    shard_arcs:
        Arcs per indices shard for v2 writes (default
        :data:`~repro.graphs.store.DEFAULT_SHARD_ARCS`).
    max_bytes:
        Optional size bound for the whole ``cache_dir``: after a write, the
        least-recently-used entries (by atime) are pruned until the store
        fits, never evicting the entry just produced.
    **params:
        Generator keyword arguments; part of the cache key, so they must be
        plain scalars/strings/containers (:class:`InstanceCacheError`
        otherwise).

    Returns the cached :class:`ClusteredGraph` when a valid entry exists,
    otherwise generates, stores and returns it.  A corrupted or mismatched
    entry is regenerated and overwritten, never served.
    """
    fn, name = _resolve_generator(generator)
    if streaming and not mmap:
        raise InstanceCacheError(
            "streaming=True requires mmap=True: the streamed build writes "
            "a sharded entry and serves it memory-mapped"
        )
    if cache_dir is None:
        if mmap:
            raise InstanceCacheError(
                "mmap=True requires a cache_dir: the memory-mapped substrate "
                "is the on-disk cache entry itself"
            )
        return fn(**params, seed=seed)

    key_json = _key_json(name, params, seed)
    npz_path = instance_cache_path(cache_dir, name, params, seed)
    shard_dir = instance_shard_dir(cache_dir, name, params, seed)
    serving_path = shard_dir if mmap else npz_path
    if not refresh:
        # Either format satisfies either request; prefer the native one.
        if mmap and shard_dir.is_dir():
            try:
                return _load_sharded(shard_dir, key_json, mmap=True)
            except Exception:
                pass
        if npz_path.exists():
            try:
                instance = _load(npz_path, key_json)
                if not mmap:
                    return instance
                # v1 → v2 conversion: re-shard the loaded arrays instead of
                # regenerating, then serve the memory-mapped entry.  The v2
                # directory satisfies dense requests too (materialised), so
                # keeping the npz would only double the entry's footprint.
                _store_sharded(shard_dir, instance, key_json, shard_arcs=shard_arcs)
                try:
                    npz_path.unlink()
                except OSError:  # pragma: no cover - concurrent eviction
                    pass
                _prune_after_write(cache_dir, max_bytes, serving_path)
                return _load_sharded(shard_dir, key_json, mmap=True)
            except Exception:
                # Truncated file, wrong key, bad arrays, unpicklable npz —
                # all repair the same way: fall through and regenerate.
                pass
        if not mmap and shard_dir.is_dir():
            try:
                return _load_sharded(shard_dir, key_json, mmap=False)
            except Exception:
                pass
    if mmap:
        stream_build = streaming
        if stream_build is None:
            try:
                _resolve_chunk_generator(generator)
                stream_build = True
            except InstanceCacheError:
                stream_build = False
        if stream_build:
            return generate_to_cache(
                generator,
                seed=seed,
                cache_dir=cache_dir,
                refresh=True,
                shard_arcs=shard_arcs,
                max_bytes=max_bytes,
                **params,
            )
        instance = fn(**params, seed=seed)
        _store_sharded(shard_dir, instance, key_json, shard_arcs=shard_arcs)
        instance = _load_sharded(shard_dir, key_json, mmap=True)
    else:
        instance = fn(**params, seed=seed)
        _store(npz_path, instance, key_json)
    _prune_after_write(cache_dir, max_bytes, serving_path)
    return instance


# --------------------------------------------------------------------------- #
# Cache lifecycle: enumeration and size-bounded LRU eviction
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class CacheEntry:
    """One cache entry (a v1 ``.npz`` file or a v2 ``.csr`` directory).

    When the entry has a sibling label store
    (``{generator}-{digest}.labels/``, written by the service layer —
    see :mod:`repro.service.labels`), ``labels_path``/``labels_nbytes``
    describe it: label stores share the entry's lifecycle, so eviction
    removes both and size budgets count both.  An *orphan* label store —
    its instance entry already evicted — is listed as its own entry with
    ``kind="labels"`` so pruning can reclaim it too.
    """

    path: Path
    generator: str
    digest: str
    kind: str  #: ``"npz"`` (v1), ``"sharded"`` (v2) or ``"labels"`` (orphan store)
    nbytes: int
    atime: float  #: last access (falls back to mtime on noatime mounts)
    mtime: float
    labels_path: Path | None = None
    labels_nbytes: int = 0

    @property
    def total_nbytes(self) -> int:
        """Entry bytes plus its label store's — what a budget must count."""
        return self.nbytes + self.labels_nbytes

    def remove(self) -> None:
        """Delete the entry and its label store from disk (idempotent)."""
        if self.kind in ("sharded", "labels"):
            shutil.rmtree(self.path, ignore_errors=True)
        else:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass
        if self.labels_path is not None:
            shutil.rmtree(self.labels_path, ignore_errors=True)


def _entry_stats(path: Path) -> tuple[int, float, float]:
    """(total bytes, newest atime, newest mtime) of a file or directory."""
    if path.is_dir():
        nbytes, atime, mtime = 0, 0.0, 0.0
        for child in path.iterdir():
            try:
                st = child.stat()
            except OSError:
                continue
            nbytes += st.st_size
            atime = max(atime, st.st_atime)
            mtime = max(mtime, st.st_mtime)
        return nbytes, atime, mtime
    st = path.stat()
    return st.st_size, st.st_atime, st.st_mtime


def list_cache(cache_dir: str | Path) -> list[CacheEntry]:
    """Enumerate the entries of a cache directory, most recently used first.

    Only paths matching the cache naming scheme (``{generator}-{digest}.npz``,
    ``{generator}-{digest}.csr/`` or ``{generator}-{digest}.labels/``) are
    listed; anything else in the directory is left alone, so pruning can
    never eat unrelated files.  A label store is attached to its sibling
    instance entry (``labels_path``/``labels_nbytes``) when that entry
    exists, and listed as its own ``kind="labels"`` entry when orphaned.
    """
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return []
    entries: list[CacheEntry] = []
    label_dirs: dict[str, tuple[Path, int, float, float]] = {}
    for path in cache_dir.iterdir():
        if path.suffix == ".labels" and path.is_dir():
            try:
                nbytes, atime, mtime = _entry_stats(path)
            except OSError:
                continue
            label_dirs[path.name[: -len(path.suffix)]] = (path, nbytes, atime, mtime)
    for path in cache_dir.iterdir():
        if path.suffix == ".npz" and path.is_file():
            kind = "npz"
        elif path.suffix == ".csr" and path.is_dir():
            kind = "sharded"
        else:
            continue
        stem = path.name[: -len(path.suffix)]
        generator, sep, digest = stem.rpartition("-")
        if not sep or not digest:
            continue
        try:
            nbytes, atime, mtime = _entry_stats(path)
        except OSError:
            continue
        labels = label_dirs.pop(stem, None)
        entries.append(
            CacheEntry(
                path=path,
                generator=generator,
                digest=digest,
                kind=kind,
                nbytes=nbytes,
                atime=atime or mtime,
                mtime=mtime,
                labels_path=None if labels is None else labels[0],
                labels_nbytes=0 if labels is None else labels[1],
            )
        )
    for stem, (path, nbytes, atime, mtime) in label_dirs.items():
        generator, sep, digest = stem.rpartition("-")
        if not sep or not digest:
            continue
        entries.append(
            CacheEntry(
                path=path,
                generator=generator,
                digest=digest,
                kind="labels",
                nbytes=nbytes,
                atime=atime or mtime,
                mtime=mtime,
            )
        )
    entries.sort(key=lambda e: (e.atime, e.mtime), reverse=True)
    return entries


def prune_cache(
    cache_dir: str | Path,
    max_bytes: int,
    *,
    protect: Iterable[str | Path] = (),
    dry_run: bool = False,
) -> list[CacheEntry]:
    """Evict least-recently-used entries until the cache fits ``max_bytes``.

    Eviction order is oldest ``atime`` first (mtime as tiebreak), the
    classic LRU policy — on ``relatime``/``noatime`` mounts where atimes are
    coarse this degrades gracefully to least-recently-written.  Entries
    whose path appears in ``protect`` are never evicted (used by
    :func:`cached_instance` so a bound can never delete the instance it just
    produced).  Returns the evicted entries; with ``dry_run=True`` nothing
    is deleted, the return value shows what would be.

    Evicting an entry that some process currently serves memory-mapped is
    safe for that process — :class:`~repro.graphs.store.MmapStorage` maps
    every shard eagerly, and POSIX keeps unlinked-but-mapped pages readable
    — but a process that tries to *open* the entry after eviction
    regenerates it.  Under a ``max_bytes`` budget smaller than a sweep's
    working set this can thrash (evict → regenerate → evict); size the
    budget to the instance family, or prune between sweeps.
    """
    if max_bytes < 0:
        raise InstanceCacheError(f"max_bytes must be non-negative, got {max_bytes}")
    protected = {Path(p).resolve() for p in protect}
    entries = list_cache(cache_dir)
    # Budgets count label stores too (total_nbytes): a clustering's labels
    # only mean something next to the instance they describe, so the pair
    # lives — and dies — together.
    total = sum(e.total_nbytes for e in entries)
    evicted: list[CacheEntry] = []
    # Walk from the least recently used end of the listing.
    for entry in reversed(entries):
        if total <= max_bytes:
            break
        if entry.path.resolve() in protected:
            continue
        if not dry_run:
            entry.remove()
        evicted.append(entry)
        total -= entry.total_nbytes
    return evicted


def _prune_after_write(
    cache_dir: str | Path, max_bytes: int | None, just_written: Path
) -> None:
    if max_bytes is not None:
        prune_cache(cache_dir, max_bytes, protect=(just_written,))
