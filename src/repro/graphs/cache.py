"""On-disk instance cache: npz-backed CSR store for generated graphs.

Large generated instances (n ≥ 10⁶, tens of millions of edges) take seconds
to build even with the array-native pipeline, and a sweep regenerates the
same instance for every algorithm/trial combination and again for every
benchmark that shares the workload.  The generators are seed-deterministic,
so an instance is fully identified by *(generator name, parameters, seed)* —
this module persists the finished CSR arrays keyed by a canonical digest of
exactly that triple and re-loads them through the zero-copy
:meth:`~repro.graphs.graph.Graph.from_csr` constructor, turning a multi-second
rebuild into a ~100 ms file read.

Storage format (one ``.npz`` per instance, uncompressed for load speed):

``indptr``, ``indices``
    The canonical symmetric CSR arrays exactly as ``Graph.csr_arrays()``
    returns them; adopted on load by ``Graph.from_csr`` without copying.
``labels``
    The ground-truth partition's label vector.
``meta``
    A JSON blob recording the cache key fields (generator, params, seed),
    the format version, the graph name and the generator's own ``params``
    dict, checked on load so a digest collision or stale file is detected
    rather than silently served.

Writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
writer can never leave a truncated file under the final name, and *any*
failure to load — missing file, truncated npz, metadata mismatch — falls
back to regenerating and rewriting the entry.  Corruption therefore costs
one regeneration, never a wrong answer.

One caveat the key cannot cover: the digest identifies the generator by
*name*, not by implementation, so it trusts generators to keep their
seed → instance mapping stable.  When a change to a generator alters the
instance drawn for a given seed (as the PR 2 rewrite did, intentionally
distribution-preserving), bump :data:`CACHE_FORMAT_VERSION` so persistent
caches (e.g. ``benchmarks/.bench-cache``) are invalidated rather than
serving pre-change graphs.

The public entry point is :func:`cached_instance`; :func:`instance_digest`
exposes the key so tests and tooling can reason about it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from .generators import ClusteredGraph
from .graph import Graph
from .partition import Partition

__all__ = [
    "CACHE_FORMAT_VERSION",
    "InstanceCacheError",
    "instance_digest",
    "instance_cache_path",
    "cached_instance",
]

#: Part of every cache key: bump when the npz layout changes OR when a
#: generator's seed → instance mapping changes, so existing entries are
#: regenerated instead of served stale.
CACHE_FORMAT_VERSION = 1


class InstanceCacheError(ValueError):
    """Raised for unusable cache keys (e.g. non-serialisable parameters)."""


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to canonical JSON-compatible form.

    Numpy scalars collapse to their Python equivalents so that e.g.
    ``np.int64(4)`` and ``4`` produce the same digest; containers recurse.
    Anything else (arrays, callables, rngs) is rejected — a cache key must
    be a plain, stable description of the instance.
    """
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    raise InstanceCacheError(
        f"cache key parameter of type {type(value).__name__} is not serialisable; "
        "cache keys must be built from plain scalars, strings and containers"
    )


def _key_json(generator: str, params: Mapping[str, Any], seed: int | None) -> str:
    return json.dumps(
        {
            "generator": generator,
            "params": _canonical(params),
            "seed": _canonical(seed),
            "version": CACHE_FORMAT_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def instance_digest(generator: str, params: Mapping[str, Any], seed: int | None) -> str:
    """Canonical digest identifying one generated instance.

    A SHA-256 over the sorted-JSON rendering of ``(generator name, params,
    seed, format version)``, truncated to 16 hex characters for readable
    file names.  Two calls produce the same digest iff they describe the
    same instance (up to numpy-scalar vs Python-scalar differences, which
    are canonicalised away).
    """
    import hashlib

    return hashlib.sha256(_key_json(generator, params, seed).encode("utf-8")).hexdigest()[:16]


def instance_cache_path(
    cache_dir: str | Path, generator: str, params: Mapping[str, Any], seed: int | None
) -> Path:
    """The file an instance would be cached at (whether or not it exists)."""
    digest = instance_digest(generator, params, seed)
    return Path(cache_dir) / f"{generator}-{digest}.npz"


def _store(path: Path, instance: ClusteredGraph, key_json: str) -> None:
    """Atomically write the instance's CSR arrays + metadata to ``path``."""
    indptr, indices = instance.graph.csr_arrays()
    meta = {
        "key": key_json,
        "graph_name": instance.graph.name,
        "instance_params": _lenient_json(instance.params),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            # Uncompressed savez: warm loads are disk-bound and a 10⁶-node
            # SBM re-loads in ~100 ms; compression would trade that for CPU.
            np.savez(
                handle,
                indptr=np.asarray(indptr),
                indices=np.asarray(indices),
                labels=instance.partition.labels,
                meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _lenient_json(params: Mapping[str, Any]) -> dict[str, Any]:
    """Best-effort JSON form of a generator's ``params`` record (for display)."""
    try:
        return json.loads(json.dumps(dict(params), default=str))
    except (TypeError, ValueError):
        return {}


def _load(path: Path, key_json: str) -> ClusteredGraph:
    """Load a cached instance; raises on any structural or metadata problem."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("key") != key_json:
            raise InstanceCacheError(f"cache entry {path} does not match its key")
        indptr = np.ascontiguousarray(data["indptr"], dtype=np.int64)
        indices = np.ascontiguousarray(data["indices"], dtype=np.int64)
        labels = np.asarray(data["labels"], dtype=np.int64)
    graph = Graph.from_csr(indptr, indices, name=str(meta.get("graph_name", "cached")))
    if labels.shape != (graph.n,):
        raise InstanceCacheError(f"cache entry {path} has {labels.size} labels for n={graph.n}")
    return ClusteredGraph(
        graph=graph,
        partition=Partition(labels),
        params=dict(meta.get("instance_params", {})),
    )


def _resolve_generator(
    generator: Callable[..., ClusteredGraph] | str,
) -> tuple[Callable[..., ClusteredGraph], str]:
    if callable(generator):
        return generator, generator.__name__
    from . import generators as _generators
    from . import lfr as _lfr

    for module in (_generators, _lfr):
        fn = getattr(module, generator, None)
        if callable(fn):
            return fn, generator
    raise InstanceCacheError(f"unknown generator name {generator!r}")


def cached_instance(
    generator: Callable[..., ClusteredGraph] | str,
    *,
    seed: int | None = None,
    cache_dir: str | Path | None = None,
    refresh: bool = False,
    **params: Any,
) -> ClusteredGraph:
    """Generate an instance through the on-disk cache.

    Parameters
    ----------
    generator:
        A generator callable (e.g. :func:`~repro.graphs.generators.planted_partition`)
        or its name as exported by :mod:`repro.graphs`.  The callable's
        ``__name__`` is part of the cache key.
    seed:
        Passed to the generator as ``seed=`` and part of the cache key.
        The generators are seed-deterministic, which is what makes the
        cache sound; an unseeded call (``seed=None``) is still cached but
        then pins whichever instance was drawn first.
    cache_dir:
        Directory holding the npz entries.  ``None`` disables caching and
        calls the generator directly (so call sites can thread an optional
        ``--cache-dir`` straight through).
    refresh:
        Regenerate and overwrite the entry even if present.
    **params:
        Generator keyword arguments; part of the cache key, so they must be
        plain scalars/strings/containers (:class:`InstanceCacheError`
        otherwise).

    Returns the cached :class:`ClusteredGraph` when a valid entry exists,
    otherwise generates, stores and returns it.  A corrupted or mismatched
    entry is regenerated and overwritten, never served.
    """
    fn, name = _resolve_generator(generator)
    if cache_dir is None:
        return fn(**params, seed=seed)

    key_json = _key_json(name, params, seed)
    path = instance_cache_path(cache_dir, name, params, seed)
    if not refresh and path.exists():
        try:
            return _load(path, key_json)
        except Exception:
            # Truncated file, wrong key, bad arrays, unpicklable npz — all
            # repair the same way: fall through and regenerate.
            pass
    instance = fn(**params, seed=seed)
    _store(path, instance, key_json)
    return instance
