"""Reading and writing graphs and partitions.

Two plain-text formats are supported:

* **edge list** — one ``u v`` pair per line, ``#`` comments allowed, and an
  optional header line ``% n <num_nodes>`` for isolated trailing nodes;
* **METIS-like adjacency** — first line ``n m``, then line ``i`` lists the
  neighbours of node ``i`` (1-indexed), the format used by the classical
  partitioning tools the paper contrasts itself against.

Partitions are stored one label per line.  These loaders exist so that the
examples and benchmarks can persist generated instances and so that external
graphs can be fed to the algorithm without writing any glue code.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .graph import Graph, GraphError
from .partition import Partition

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_metis",
    "read_metis",
    "write_partition",
    "read_partition",
]


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``graph`` as an edge list with an ``% n`` header."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"% n {graph.n}\n")
        fh.write(f"# {graph.name}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | os.PathLike, *, name: str | None = None) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any plain edge list)."""
    path = Path(path)
    edges: list[tuple[int, int]] = []
    declared_n: int | None = None
    max_node = -1
    with path.open("r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("%"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "n":
                    declared_n = int(parts[1])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"malformed edge list line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            edges.append((u, v))
            max_node = max(max_node, u, v)
    n = declared_n if declared_n is not None else max_node + 1
    if n <= 0:
        raise GraphError("edge list contains no nodes")
    return Graph(n, edges, name=name or path.stem)


def write_metis(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``graph`` in METIS adjacency format (1-indexed)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{graph.n} {graph.num_edges}\n")
        for v in range(graph.n):
            neigh = " ".join(str(int(u) + 1) for u in graph.neighbours(v))
            fh.write(neigh + "\n")


def read_metis(path: str | os.PathLike, *, name: str | None = None) -> Graph:
    """Read a graph in METIS adjacency format (1-indexed, unweighted)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip() and not ln.startswith("%")]
    if not lines:
        raise GraphError("empty METIS file")
    header = lines[0].split()
    n = int(header[0])
    if len(lines) - 1 != n:
        raise GraphError(f"METIS file declares {n} nodes but has {len(lines) - 1} adjacency lines")
    edges: list[tuple[int, int]] = []
    for v, line in enumerate(lines[1:]):
        for token in line.split():
            u = int(token) - 1
            if u >= v:
                edges.append((v, u))
    return Graph(n, edges, name=name or path.stem)


def write_partition(partition: Partition, path: str | os.PathLike) -> None:
    """Write a partition as one label per line."""
    np.savetxt(Path(path), partition.labels, fmt="%d")


def read_partition(path: str | os.PathLike) -> Partition:
    """Read a partition written by :func:`write_partition`."""
    labels = np.loadtxt(Path(path), dtype=np.int64)
    return Partition.from_labels(np.atleast_1d(labels))
