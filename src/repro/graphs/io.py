"""Reading and writing graphs and partitions.

Two plain-text formats are supported:

* **edge list** — one ``u v`` pair per line, ``#`` comments allowed, and an
  optional header line ``% n <num_nodes>`` for isolated trailing nodes;
* **METIS-like adjacency** — first line ``n m``, then line ``i`` lists the
  neighbours of node ``i`` (1-indexed), the format used by the classical
  partitioning tools the paper contrasts itself against.

Partitions are stored one label per line.  These loaders exist so that the
examples and benchmarks can persist generated instances and so that external
graphs can be fed to the algorithm without writing any glue code.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .graph import Graph, GraphError
from .partition import Partition

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_metis",
    "read_metis",
    "write_partition",
    "read_partition",
]


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``graph`` as an edge list with an ``% n`` header.

    Streams over the storage's row blocks instead of materialising
    ``graph.edge_array()``, so a memory-mapped instance is written with an
    O(block) resident set; each undirected edge appears once, on its
    lower-endpoint row, in the same row-major order the materialising
    ``edge_array`` produced.
    """
    path = Path(path)
    indptr = graph.storage.indptr
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"% n {graph.n}\n")
        fh.write(f"# {graph.name}\n")
        for r0, r1, block in graph.storage.iter_row_blocks():
            rows = np.repeat(
                np.arange(r0, r1, dtype=np.int64), np.diff(indptr[r0 : r1 + 1])
            )
            cols = np.asarray(block)
            mask = cols >= rows
            np.savetxt(fh, np.stack([rows[mask], cols[mask]], axis=1), fmt="%d")


def read_edge_list(path: str | os.PathLike, *, name: str | None = None) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any plain edge list)."""
    path = Path(path)
    declared_n: int | None = None
    rows: list[str] = []
    with path.open("r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("%"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "n":
                    declared_n = int(parts[1])
                continue
            rows.append(line)
    if rows:
        try:
            edges = np.array([r.split()[:2] for r in rows], dtype=np.int64)
        except ValueError as exc:
            raise GraphError(f"malformed edge list in {path}: {exc}") from None
        if edges.shape[1] < 2:
            raise GraphError(f"malformed edge list in {path}")
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    max_node = int(edges.max()) if edges.size else -1
    n = declared_n if declared_n is not None else max_node + 1
    if n <= 0:
        raise GraphError("edge list contains no nodes")
    return Graph.from_edge_array(n, edges, name=name or path.stem)


def write_metis(graph: Graph, path: str | os.PathLike) -> None:
    """Write ``graph`` in METIS adjacency format (1-indexed)."""
    path = Path(path)
    indptr, indices = graph.csr_arrays()
    bounds = indptr.tolist()
    tokens = (indices + 1).astype(np.str_).tolist()
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{graph.n} {graph.num_edges}\n")
        fh.write(
            "\n".join(" ".join(tokens[bounds[v] : bounds[v + 1]]) for v in range(graph.n))
        )
        fh.write("\n")


def read_metis(path: str | os.PathLike, *, name: str | None = None) -> Graph:
    """Read a graph in METIS adjacency format (1-indexed, unweighted)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        # Blank lines are legitimate adjacency rows (isolated nodes), so only
        # comment lines are dropped; surplus trailing blanks are tolerated.
        lines = [ln.strip() for ln in fh if not ln.lstrip().startswith("%")]
    while lines and not lines[0]:
        lines.pop(0)
    if not lines:
        raise GraphError("empty METIS file")
    header = lines[0].split()
    n = int(header[0])
    while len(lines) - 1 > n and not lines[-1]:
        lines.pop()
    if len(lines) - 1 != n:
        raise GraphError(f"METIS file declares {n} nodes but has {len(lines) - 1} adjacency lines")
    # One flat parse of all neighbour tokens, then an arc -> edge mask; the
    # per-line Python loop only splits strings.
    neighbour_lists = [np.asarray(line.split(), dtype=np.int64) - 1 for line in lines[1:]]
    counts = np.array([a.size for a in neighbour_lists], dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    cols = (
        np.concatenate(neighbour_lists) if neighbour_lists else np.empty(0, dtype=np.int64)
    )
    keep = cols >= rows
    edges = np.stack([rows[keep], cols[keep]], axis=1)
    return Graph.from_edge_array(n, edges, name=name or path.stem)


def write_partition(partition: Partition, path: str | os.PathLike) -> None:
    """Write a partition as one label per line."""
    np.savetxt(Path(path), partition.labels, fmt="%d")


def read_partition(path: str | os.PathLike) -> Partition:
    """Read a partition written by :func:`write_partition`."""
    labels = np.loadtxt(Path(path), dtype=np.int64)
    return Partition.from_labels(np.atleast_1d(labels))
