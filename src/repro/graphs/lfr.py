"""An LFR-style benchmark generator (heterogeneous communities).

The LFR benchmark (Lancichinetti–Fortunato–Radicchi) is the de-facto standard
stress test for community detection: node degrees and community sizes follow
truncated power laws, and a *mixing parameter* ``μ`` controls the fraction of
every node's edges that leave its community.  The paper's theory assumes
almost-regular graphs with balanced clusters, so LFR instances deliberately
sit *outside* the comfort zone of Theorem 1.1 — the generator exists so users
(and the extended test-suite) can probe how gracefully the algorithm degrades
when the assumptions are violated, which is exactly what a practitioner would
want to know before adopting it.

The construction is a degree-corrected block model driven by the sampled
degree and community-size sequences rather than the original LFR rewiring
procedure: for node ``v`` with degree ``d_v`` in community ``C``, an expected
``(1-μ)·d_v`` edge endpoints stay inside ``C`` and ``μ·d_v`` go outside.  This
keeps the generator simple, exact in expectation and fast, while reproducing
the two properties that matter for clustering benchmarks (heterogeneous
degrees / community sizes and a tunable mixing parameter).

Edge sampling is array-native (Chung–Lu candidate sampling: endpoints drawn
proportionally to their budgets, batch-deduplicated) so cost scales with the
number of edges, not with the Θ(|C|²) candidate pairs the seed implementation
scanned per community.
"""

from __future__ import annotations

import numpy as np

from .generators import ClusteredGraph, _as_rng
from .graph import Graph, GraphError
from .partition import Partition
from .sampling import _sorted_unique

__all__ = ["truncated_power_law", "lfr_benchmark"]


def truncated_power_law(
    exponent: float,
    minimum: int,
    maximum: int,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample integers from a truncated power law ``P(x) ∝ x^{-exponent}``.

    Uses inverse-transform sampling on the discrete support
    ``{minimum, ..., maximum}``.
    """
    if minimum < 1 or maximum < minimum:
        raise GraphError("need 1 <= minimum <= maximum")
    if exponent <= 0:
        raise GraphError("exponent must be positive")
    support = np.arange(minimum, maximum + 1, dtype=np.float64)
    weights = support ** (-float(exponent))
    weights /= weights.sum()
    return rng.choice(np.arange(minimum, maximum + 1), size=size, p=weights).astype(np.int64)


def _sample_weighted_pairs(
    members: np.ndarray,
    probs: np.ndarray,
    target: int,
    n: int,
    rng: np.random.Generator,
    *,
    forbidden_labels: np.ndarray | None = None,
) -> np.ndarray:
    """Sample up to ``target`` distinct pairs with endpoints drawn ∝ ``probs``.

    Candidate endpoints are drawn independently from ``members``; self-pairs,
    same-``forbidden_labels`` pairs and duplicates are rejected in vectorised
    batches.  Like the seed's bounded candidate loop this is best-effort: if
    the weight distribution cannot supply ``target`` distinct pairs within a
    few rounds, fewer are returned.  Pairs come back as a canonical
    ``(m, 2)`` int64 array with ``u < v`` in the global numbering.
    """
    if target <= 0 or members.size < 2:
        return np.empty((0, 2), dtype=np.int64)
    have = np.empty(0, dtype=np.int64)
    for _ in range(8):
        need = target - have.size
        if need <= 0:
            break
        draw = 2 * need + 16
        cu = members[rng.choice(members.size, size=draw, p=probs)]
        cv = members[rng.choice(members.size, size=draw, p=probs)]
        ok = cu != cv
        if forbidden_labels is not None:
            ok &= forbidden_labels[cu] != forbidden_labels[cv]
        cu, cv = cu[ok], cv[ok]
        keys = np.minimum(cu, cv) * n + np.maximum(cu, cv)
        have = _sorted_unique(np.concatenate([have, keys]))
    if have.size > target:
        have = np.delete(
            have, rng.choice(have.size, size=have.size - target, replace=False)
        )
    return np.stack([have // n, have % n], axis=1)


def _sample_community_sizes(
    n: int,
    exponent: float,
    min_size: int,
    max_size: int,
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> list[int]:
    """Sample community sizes from a truncated power law summing exactly to n."""
    for _ in range(max_attempts):
        sizes: list[int] = []
        total = 0
        while total < n:
            size = int(truncated_power_law(exponent, min_size, max_size, 1, rng)[0])
            sizes.append(size)
            total += size
        overshoot = total - n
        # shrink the last community; retry if it would fall below the minimum
        if sizes[-1] - overshoot >= min_size:
            sizes[-1] -= overshoot
            return sizes
    raise GraphError("could not sample community sizes summing to n; relax the size bounds")


def lfr_benchmark(
    n: int,
    *,
    mu: float = 0.1,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    average_degree: int = 10,
    max_degree: int | None = None,
    min_community: int | None = None,
    max_community: int | None = None,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
    max_connect_attempts: int = 20,
) -> ClusteredGraph:
    """Generate an LFR-style clustered graph with mixing parameter ``mu``.

    Parameters
    ----------
    n:
        Number of nodes.
    mu:
        Mixing parameter: expected fraction of a node's edges leaving its
        community (``mu = 0`` gives disconnected communities, ``mu → 1``
        destroys the structure).
    degree_exponent, community_exponent:
        Power-law exponents of the degree and community-size distributions
        (the standard LFR defaults are 2–3 and 1–2).
    average_degree, max_degree:
        Scale of the degree sequence (minimum degree is derived so the mean
        roughly matches ``average_degree``).
    min_community, max_community:
        Community size bounds; defaults are ``max(10, average_degree)`` and
        ``max(n // 5, min_community + 1)``.
    """
    if not 0.0 <= mu < 1.0:
        raise GraphError("mu must lie in [0, 1)")
    if n < 10:
        raise GraphError("LFR generation needs at least 10 nodes")
    rng = _as_rng(seed)
    max_degree = max_degree if max_degree is not None else max(average_degree * 3, 4)
    min_degree = max(2, int(round(average_degree / 2)))
    min_community = min_community if min_community is not None else max(10, average_degree)
    max_community = max_community if max_community is not None else max(n // 5, min_community + 1)
    if min_community > n:
        raise GraphError("min_community exceeds the number of nodes")

    for attempt in range(max_connect_attempts):
        degrees = truncated_power_law(degree_exponent, min_degree, max_degree, n, rng)
        sizes = _sample_community_sizes(n, community_exponent, min_community, max_community, rng)
        labels = np.repeat(np.arange(len(sizes)), sizes)
        rng.shuffle(labels)

        # Expected-degree (Chung–Lu style) edge sampling, block by block: the
        # probability of an edge {u, v} inside community C is proportional to
        # the *internal* degree budgets (1-mu)d_u (1-mu)d_v, and across
        # communities to the external budgets mu·d_u mu·d_v.
        internal = (1.0 - mu) * degrees
        external = mu * degrees
        chunks: list[np.ndarray] = []

        # Internal edges per community: candidate endpoints drawn ∝ budget,
        # duplicates discarded in vectorised batches.  E[edges] matches the
        # seed's per-pair Bernoulli scheme (sum of b_u·b_v/total over pairs).
        for c in range(len(sizes)):
            members = np.flatnonzero(labels == c)
            if members.size < 2:
                continue
            budget = internal[members]
            total = budget.sum()
            if total <= 0:
                continue
            pair_weight_sum = (total * total - np.sum(budget * budget)) / (2.0 * total)
            # Draw the count, don't fix it: the seed's per-pair Bernoulli
            # scheme had count variance ~ Σ p(1-p); the Poissonised Chung–Lu
            # count keeps the expectation and restores that dispersion
            # (a deterministic round() would underdisperse every sweep
            # statistic that looks at edge-count fluctuation).
            max_pairs = members.size * (members.size - 1) // 2
            target = min(int(rng.poisson(pair_weight_sum)), max_pairs)
            chunk = _sample_weighted_pairs(
                members, budget / total, target, n, rng
            )
            if chunk.size:
                chunks.append(chunk)

        # External edges across the whole graph, same candidate scheme but
        # rejecting same-community pairs.
        total_external = external.sum()
        if total_external > 0 and mu > 0:
            target = int(total_external / 2)
            chunk = _sample_weighted_pairs(
                np.arange(n, dtype=np.int64),
                external / total_external,
                target,
                n,
                rng,
                forbidden_labels=labels,
            )
            if chunk.size:
                chunks.append(chunk)

        if chunks:
            edges = np.concatenate(chunks, axis=0)
            # Internal chunks are pairwise disjoint (different communities)
            # and disjoint from the external chunk, so no global dedup needed.
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        graph = Graph.from_edge_array(n, edges, name=f"lfr(n={n},mu={mu})")
        if graph.min_degree == 0:
            continue
        if ensure_connected and not graph.is_connected():
            continue
        return ClusteredGraph(
            graph=graph,
            partition=Partition.from_labels(labels),
            params={
                "generator": "lfr_benchmark",
                "n": n,
                "mu": mu,
                "degree_exponent": degree_exponent,
                "community_exponent": community_exponent,
                "average_degree": average_degree,
                "num_communities": len(sizes),
            },
        )
    raise GraphError(
        f"failed to generate a usable LFR instance in {max_connect_attempts} attempts; "
        "increase average_degree or decrease mu"
    )
