"""An LFR-style benchmark generator (heterogeneous communities).

The LFR benchmark (Lancichinetti–Fortunato–Radicchi) is the de-facto standard
stress test for community detection: node degrees and community sizes follow
truncated power laws, and a *mixing parameter* ``μ`` controls the fraction of
every node's edges that leave its community.  The paper's theory assumes
almost-regular graphs with balanced clusters, so LFR instances deliberately
sit *outside* the comfort zone of Theorem 1.1 — the generator exists so users
(and the extended test-suite) can probe how gracefully the algorithm degrades
when the assumptions are violated, which is exactly what a practitioner would
want to know before adopting it.

The construction is a degree-corrected block model driven by the sampled
degree and community-size sequences rather than the original LFR rewiring
procedure: for node ``v`` with degree ``d_v`` in community ``C``, an expected
``(1-μ)·d_v`` edge endpoints stay inside ``C`` and ``μ·d_v`` go outside.  This
keeps the generator simple, exact in expectation and fast, while reproducing
the two properties that matter for clustering benchmarks (heterogeneous
degrees / community sizes and a tunable mixing parameter).

Edge sampling is array-native (Chung–Lu candidate sampling: endpoints drawn
proportionally to their budgets, batch-deduplicated) so cost scales with the
number of edges, not with the Θ(|C|²) candidate pairs the seed implementation
scanned per community.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .generators import (
    ClusteredGraph,
    EdgeChunkStream,
    _as_rng,
    _instance_from_chunk_streams,
)
from .graph import GraphError
from .sampling import AliasTable, SegmentedAliasTable, _sorted_unique, merge_sorted_unique

__all__ = ["truncated_power_law", "lfr_benchmark", "lfr_benchmark_chunks"]

#: Upper bound on one candidate draw of the rejection samplers below.  A
#: round's candidate budget (2·need + 16) is spent in sub-batches of at most
#: this many draws, so the per-batch transients (two endpoint arrays plus the
#: fused keys) stay bounded at ~24 MB however large the instance is — at
#: n = 10⁷ an uncapped first round would materialise ~10⁸ candidates, three
#: times the memory of the edge set it is sampling.  Draws at or below the
#: cap consume the seeded stream exactly as a single batch did, so instances
#: with fewer than ~half a million edges per sampler call are unchanged;
#: larger instances land on a new (equally distributed) seed → instance
#: mapping, which is why ``CACHE_FORMAT_VERSION`` was bumped alongside.
_MAX_CANDIDATE_BATCH = 1 << 20


def truncated_power_law(
    exponent: float,
    minimum: int,
    maximum: int,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample integers from a truncated power law ``P(x) ∝ x^{-exponent}``.

    Uses inverse-transform sampling on the discrete support
    ``{minimum, ..., maximum}``.
    """
    if minimum < 1 or maximum < minimum:
        raise GraphError("need 1 <= minimum <= maximum")
    if exponent <= 0:
        raise GraphError("exponent must be positive")
    support = np.arange(minimum, maximum + 1, dtype=np.float64)
    weights = support ** (-float(exponent))
    weights /= weights.sum()
    return rng.choice(np.arange(minimum, maximum + 1), size=size, p=weights).astype(np.int64)


def _sample_weighted_pairs(
    members: np.ndarray,
    probs: np.ndarray,
    target: int,
    n: int,
    rng: np.random.Generator,
    *,
    forbidden_labels: np.ndarray | None = None,
) -> np.ndarray:
    """Sample up to ``target`` distinct pairs with endpoints drawn ∝ ``probs``.

    Candidate endpoints are drawn independently from ``members``; self-pairs,
    same-``forbidden_labels`` pairs and duplicates are rejected in vectorised
    batches of at most :data:`_MAX_CANDIDATE_BATCH` candidates.  Like the
    seed's bounded candidate loop this is best-effort: if the weight
    distribution cannot supply ``target`` distinct pairs within a few rounds'
    candidate budgets, fewer are returned.  The result is a **sorted array of
    fused keys** ``min(u,v)·n + max(u,v)`` (the chunk-stream protocol's edge
    encoding) rather than a stacked pair array — callers that need pairs
    decode with ``//`` and ``%``.

    Endpoints are drawn through a Walker :class:`AliasTable` built once per
    call — O(1) per draw where ``Generator.choice(p=...)`` rebuilt a CDF and
    binary-searched it on every batch — and each batch is folded into the
    sorted accumulation with :func:`merge_sorted_unique`, so only the new
    keys are ever sorted.
    """
    if target <= 0 or members.size < 2:
        return np.empty(0, dtype=np.int64)
    table = AliasTable(probs)
    have = np.empty(0, dtype=np.int64)
    for _ in range(8):
        need = target - have.size
        if need <= 0:
            break
        # One deficit's worth of candidates per round: rejections are rare
        # (self-pairs, duplicates), so the outer loop converges in a few
        # rounds anyway, and not over-drawing keeps the accumulated surplus
        # — which survives until the final trim — near the target instead
        # of 2x it.  Peak RSS of generation is this accumulation.
        budget = need + 16
        while budget > 0:
            draw = min(budget, _MAX_CANDIDATE_BATCH)
            budget -= draw
            cu = members[table.draw(rng, draw)]
            cv = members[table.draw(rng, draw)]
            ok = cu != cv
            if forbidden_labels is not None:
                ok &= forbidden_labels[cu] != forbidden_labels[cv]
            cu, cv = cu[ok], cv[ok]
            keys = np.minimum(cu, cv) * n + np.maximum(cu, cv)
            have = merge_sorted_unique(have, keys)
    if have.size > target:
        have = np.delete(
            have, rng.choice(have.size, size=have.size - target, replace=False)
        )
    return have


def _sample_same_label_pairs(
    weights: np.ndarray,
    labels: np.ndarray,
    target_c: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample up to ``target_c[c]`` distinct pairs *per community* ``c``,
    batched over all communities at once, with unordered pair weight
    ∝ ``w_u · w_v / tot_c`` for ``u ≠ v`` in community ``c`` (``tot_c`` =
    the community's weight mass).  Returns a **sorted fused-key array**
    (``min(u,v)·n + max(u,v)``) like :func:`_sample_weighted_pairs`.

    Drawing both endpoints globally and rejecting cross-community pairs
    would accept only ~1/C of candidates with C communities — hopeless at
    LFR scale (hundreds of communities).  Instead the first endpoint is
    drawn ∝ ``w`` globally and the second ∝ ``w`` *within the first's
    community*: ``P(u) · P(v | c(u)) + P(v) · P(u | c(v)) ∝ w_u w_v /
    tot_c``, exactly the per-community candidate scheme, with O(1) candidate
    efficiency regardless of C.  Both draws go through Walker alias tables
    over the community-sorted weight array (a global :class:`AliasTable` and
    a per-community :class:`SegmentedAliasTable`), built once per call: O(1)
    per endpoint instead of an O(log n) ``searchsorted`` against a global
    CDF, which dominated generation at n = 10⁶.  Self-pairs and duplicates
    are rejected in vectorised batches, and the per-community targets are
    enforced as hard quotas (one uniform random trim of each community's
    surplus after the candidate loop — its collected pairs are
    exchangeable), so a community whose distinct-pair set saturates can
    never spill its unmet target into other communities.  Trimming once at
    the end rather than per batch is the second half of the speedup: the
    trim ranks every accumulated pair within its community, and surplus kept
    between batches still counts towards the quota check, so the loop never
    runs longer for it.
    """
    num_labels = int(target_c.size)
    total_target = int(target_c.sum())
    if total_target <= 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(labels, kind="stable")
    w_sorted = weights[order].astype(np.float64)
    if float(w_sorted.sum()) <= 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(labels, minlength=num_labels)
    starts = np.zeros(num_labels + 1, dtype=np.int64)
    starts[1:] = np.cumsum(counts)
    global_table = AliasTable(w_sorted)
    community_table = SegmentedAliasTable(w_sorted, starts)
    have = np.empty(0, dtype=np.int64)
    for _ in range(8):
        have_c = np.bincount(labels[have // n], minlength=num_labels)
        need = int(np.maximum(target_c - have_c, 0).sum())
        if need <= 0:
            break
        # One deficit's worth of candidates per round (see
        # _sample_weighted_pairs): deficits collapse after the first round,
        # and the surplus all rounds accumulate — drawn ∝ weight, so mostly
        # landing in already-full communities — is generation's peak RSS.
        budget = need + 16
        while budget > 0:
            draw = min(budget, _MAX_CANDIDATE_BATCH)
            budget -= draw
            cu = order[global_table.draw(rng, draw)]
            c = labels[cu]
            # Second endpoint ∝ w within c's block of the sorted order.
            cv = order[community_table.draw_in_segments(c, rng)]
            ok = cu != cv
            cu, cv = cu[ok], cv[ok]
            keys = np.minimum(cu, cv) * n + np.maximum(cu, cv)
            have = merge_sorted_unique(have, keys)
    # Enforce quotas once over the full accumulation: keep a uniform random
    # target_c-subset per community (rank the community's pairs by a fresh
    # random key).  Surplus above a community's quota already stopped the
    # loop from re-drawing for it, so one trim here is equivalent to — and
    # 8x cheaper than — trimming inside every batch.  Grouping by community
    # and partial-sorting each over-quota group keeps the trim's transient
    # footprint at ~4 key-sized arrays where a global lexsort over
    # (random key, community) needed ~8 — at n = 10⁶ the difference is the
    # peak RSS of the whole generator.
    if have.size:
        r = rng.random(have.size)
        cc = labels[have // n].astype(np.int32)
        perm = np.argsort(cc, kind="stable")
        counts_c = np.bincount(cc, minlength=num_labels)
        bounds = np.zeros(num_labels + 1, dtype=np.int64)
        np.cumsum(counts_c, out=bounds[1:])
        keep = np.ones(have.size, dtype=bool)
        for c in np.flatnonzero(counts_c > target_c):
            members = perm[bounds[c] : bounds[c + 1]]
            surplus = np.argsort(r[members], kind="stable")[int(target_c[c]) :]
            keep[members[surplus]] = False
        have = have[keep]  # boolean mask keeps the sorted key order
    return have


def _sample_community_sizes(
    n: int,
    exponent: float,
    min_size: int,
    max_size: int,
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> np.ndarray:
    """Sample community sizes from a truncated power law summing exactly to n.

    Batched: one vectorised power-law draw of ``⌈n / min_size⌉`` candidates
    (an upper bound on how many communities can fit) replaces the seed's
    one-size-at-a-time Python loop, which at n ≥ 10⁶ with thousands of
    communities dominated generation.  The prefix ending at the first
    cumulative sum ≥ n is kept and the last community shrunk to land exactly
    on ``n`` — the same acceptance rule as before (retry when the shrink
    would drop it below ``min_size``), just computed with ``cumsum`` +
    ``searchsorted`` instead of per-draw Python arithmetic.
    """
    count = int(np.ceil(n / min_size))
    for _ in range(max_attempts):
        sizes = truncated_power_law(exponent, min_size, max_size, count, rng)
        totals = np.cumsum(sizes)
        stop = int(np.searchsorted(totals, n))  # first prefix reaching n
        sizes = sizes[: stop + 1].copy()
        overshoot = int(totals[stop]) - n
        # shrink the last community; retry if it would fall below the minimum
        if sizes[-1] - overshoot >= min_size:
            sizes[-1] -= overshoot
            return sizes
    raise GraphError("could not sample community sizes summing to n; relax the size bounds")


def _lfr_attempt_keys(
    n: int,
    mu: float,
    degrees: np.ndarray,
    labels: np.ndarray,
    sizes: np.ndarray,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    """Fused-key edge chunks of one LFR attempt (internal, external, repair).

    Expected-degree (Chung–Lu style) edge sampling, block by block: the
    probability of an edge {u, v} inside community C is proportional to the
    *internal* degree budgets (1-mu)d_u (1-mu)d_v, and across communities to
    the external budgets mu·d_u mu·d_v.  The three chunks are disjoint by
    construction — internal keys are same-community pairs, external keys
    cross-community pairs, and repair keys touch only nodes no earlier chunk
    reached — so the attempt's keys are globally unique without any
    cross-chunk dedup.  ``occupied`` (O(n) bools) is maintained incrementally
    as chunks are emitted, which is what lets the streaming consumer spill
    each chunk to disk instead of keeping the edge set around for the
    isolated-node scan.
    """
    internal = (1.0 - mu) * degrees
    external = mu * degrees
    occupied = np.zeros(n, dtype=bool)

    def emit(keys: np.ndarray) -> np.ndarray:
        occupied[keys // n] = True
        occupied[keys % n] = True
        return keys

    # Internal edges, all communities in ONE batched draw.  The seed
    # looped over communities (members ∝ budget/total_c, count ~
    # min(Poisson(W_c / total_c), pairs_c) with W_c = (total_c² − Σ b²)/2
    # and pairs_c the community's distinct-pair count); at n ≥ 10⁶ with
    # thousands of communities that Python loop dominated.  The batched
    # version draws the same per-community counts in one vectorised
    # Poisson call and hands them to :func:`_sample_same_label_pairs`,
    # which samples pairs with weight ∝ b_u b_v / total_c — exactly the
    # per-community scheme's candidate distribution — under hard
    # per-community quotas.  (The Poissonised counts deliberately keep
    # the dispersion of the original per-pair Bernoulli scheme.)
    num_communities = len(sizes)
    total_c = np.bincount(labels, weights=internal, minlength=num_communities)
    sq_c = np.bincount(labels, weights=internal**2, minlength=num_communities)
    members_c = np.asarray(sizes, dtype=np.int64)
    pair_weight_c = np.zeros(num_communities)
    eligible = (total_c > 0) & (members_c >= 2)
    pair_weight_c[eligible] = (
        total_c[eligible] ** 2 - sq_c[eligible]
    ) / (2.0 * total_c[eligible])
    pair_weight_c = np.maximum(pair_weight_c, 0.0)
    endpoint_weight = np.where(eligible[labels], internal, 0.0)
    if pair_weight_c.sum() > 0:
        max_pairs_c = members_c * (members_c - 1) // 2
        target_c = np.minimum(rng.poisson(pair_weight_c), max_pairs_c)
        keys = _sample_same_label_pairs(endpoint_weight, labels, target_c, n, rng)
        if keys.size:
            yield emit(keys)

    # External edges across the whole graph, same candidate scheme but
    # rejecting same-community pairs.
    total_external = external.sum()
    if total_external > 0 and mu > 0:
        target = int(total_external / 2)
        keys = _sample_weighted_pairs(
            np.arange(n, dtype=np.int64),
            external / total_external,
            target,
            n,
            rng,
            forbidden_labels=labels,
        )
        if keys.size:
            yield emit(keys)

    # Repair isolated nodes.  Chung–Lu candidate sampling leaves node v
    # isolated with probability ≈ e^{-d_v}; at n ≥ 10⁵ *some* isolated
    # node is therefore near-certain, and a resample loop could never
    # terminate at scale.  Attach each isolated node to a uniform other
    # member of its community (community sizes are ≥ min_community ≥ 2) —
    # the standard LFR-style repair: it perturbs only the vanishing
    # degree-0 tail and stays seed-deterministic.
    lonely = np.flatnonzero(~occupied)
    if lonely.size:
        order = np.argsort(labels, kind="stable")
        counts = np.bincount(labels, minlength=num_communities)
        starts = np.zeros(num_communities + 1, dtype=np.int64)
        starts[1:] = np.cumsum(counts)
        c = labels[lonely]
        span = counts[c]
        partner = np.empty(lonely.size, dtype=np.int64)
        multi = span >= 2
        if np.any(multi):
            # Uniform member of the community excluding the node itself:
            # draw among the first span-1 slots and map a self-collision
            # to the last slot (the collision-free standard trick).
            cm, sm, um = c[multi], span[multi], lonely[multi]
            cand = order[starts[cm] + rng.integers(0, sm - 1)]
            collision = cand == um
            cand[collision] = order[starts[cm[collision]] + sm[collision] - 1]
            partner[multi] = cand
        if np.any(~multi):
            # A singleton community (possible with min_community=1) has
            # no other member; fall back to a uniform other node
            # anywhere — (u + offset) mod n with offset in [1, n) is
            # uniform over the n-1 non-self nodes.
            us = lonely[~multi]
            partner[~multi] = (us + rng.integers(1, n, size=us.size)) % n
        lo = np.minimum(lonely, partner)
        hi = np.maximum(lonely, partner)
        # An isolated node has no incident edge yet, so repairs can only
        # collide with each other (two lonely nodes picking one another)
        # — which the key dedup here removes.
        yield _sorted_unique(lo * n + hi)


def lfr_benchmark_chunks(
    n: int,
    *,
    mu: float = 0.1,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    average_degree: int = 10,
    max_degree: int | None = None,
    min_community: int | None = None,
    max_community: int | None = None,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
    max_connect_attempts: int = 20,
) -> Iterator[EdgeChunkStream]:
    """Chunk-stream variant of :func:`lfr_benchmark` (same signature).

    Yields one :class:`~repro.graphs.generators.EdgeChunkStream` per
    acceptance attempt — the degree/community draws of attempt ``t + 1``
    happen only after attempt ``t``'s chunks are fully consumed, so the
    seeded stream matches the in-RAM retry loop draw for draw.  The raised
    :class:`GraphError` after ``max_connect_attempts`` rejections matches
    too.  LFR attempts additionally require ``min_degree_required = 1``:
    the isolated-node repair guarantees it, so a failure here marks a
    protocol bug rather than bad sampling luck.
    """
    if not 0.0 <= mu < 1.0:
        raise GraphError("mu must lie in [0, 1)")
    if n < 10:
        raise GraphError("LFR generation needs at least 10 nodes")
    rng = _as_rng(seed)
    max_degree = max_degree if max_degree is not None else max(average_degree * 3, 4)
    min_degree = max(2, int(round(average_degree / 2)))
    min_community = min_community if min_community is not None else max(10, average_degree)
    max_community = max_community if max_community is not None else max(n // 5, min_community + 1)
    if min_community > n:
        raise GraphError("min_community exceeds the number of nodes")

    def attempts() -> Iterator[EdgeChunkStream]:
        for _ in range(max_connect_attempts):
            degrees = truncated_power_law(degree_exponent, min_degree, max_degree, n, rng)
            sizes = _sample_community_sizes(
                n, community_exponent, min_community, max_community, rng
            )
            labels = np.repeat(np.arange(len(sizes)), sizes)
            rng.shuffle(labels)
            yield EdgeChunkStream(
                n=n,
                name=f"lfr(n={n},mu={mu})",
                labels=labels,
                params={
                    "generator": "lfr_benchmark",
                    "n": n,
                    "mu": mu,
                    "degree_exponent": degree_exponent,
                    "community_exponent": community_exponent,
                    "average_degree": average_degree,
                    "num_communities": len(sizes),
                },
                chunks=_lfr_attempt_keys(n, mu, degrees, labels, sizes, rng),
                ensure_connected=ensure_connected,
                min_degree_required=1,
            )
        raise GraphError(
            f"failed to generate a usable LFR instance in {max_connect_attempts} attempts; "
            "increase average_degree or decrease mu"
        )

    return attempts()


def lfr_benchmark(
    n: int,
    *,
    mu: float = 0.1,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    average_degree: int = 10,
    max_degree: int | None = None,
    min_community: int | None = None,
    max_community: int | None = None,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = True,
    max_connect_attempts: int = 20,
) -> ClusteredGraph:
    """Generate an LFR-style clustered graph with mixing parameter ``mu``.

    Parameters
    ----------
    n:
        Number of nodes.
    mu:
        Mixing parameter: expected fraction of a node's edges leaving its
        community (``mu = 0`` gives disconnected communities, ``mu → 1``
        destroys the structure).
    degree_exponent, community_exponent:
        Power-law exponents of the degree and community-size distributions
        (the standard LFR defaults are 2–3 and 1–2).
    average_degree, max_degree:
        Scale of the degree sequence (minimum degree is derived so the mean
        roughly matches ``average_degree``).
    min_community, max_community:
        Community size bounds; defaults are ``max(10, average_degree)`` and
        ``max(n // 5, min_community + 1)``.

    Notes
    -----
    This is the in-RAM consumer of :func:`lfr_benchmark_chunks`; the
    streaming cache writer (:func:`repro.graphs.cache.generate_to_cache`)
    consumes the same attempt stream, so both paths draw identical
    instances from identical seeds.
    """
    return _instance_from_chunk_streams(
        lfr_benchmark_chunks(
            n,
            mu=mu,
            degree_exponent=degree_exponent,
            community_exponent=community_exponent,
            average_degree=average_degree,
            max_degree=max_degree,
            min_community=min_community,
            max_community=max_community,
            seed=seed,
            ensure_connected=ensure_connected,
            max_connect_attempts=max_connect_attempts,
        )
    )
