"""Pluggable storage backends for the CSR adjacency structure.

Every :class:`~repro.graphs.graph.Graph` holds its adjacency as canonical
CSR arrays — but *where those arrays live* is a storage concern, not a graph
concern.  Up to PR 3 the answer was hard-coded: two in-RAM int64 arrays, so
an n = 10⁷ instance (hundreds of MB of indices) had to fit in memory once
per process, and every ``ProcessExecutor`` worker deserialised its own full
copy.  This module makes the answer pluggable:

:class:`DenseStorage`
    Today's in-RAM arrays, bit-for-bit the previous behaviour.  This is what
    every constructor builds by default.

:class:`MmapStorage`
    An on-disk substrate: the indices array is split into **row-chunked
    ``.npy`` shards** described by a JSON manifest, and shards are opened
    with ``np.load(mmap_mode="r")``.  The OS pages adjacency in on demand,
    several worker processes mapping the same entry share the page cache
    instead of holding private copies, and pickling ships only the manifest
    path (see ``__reduce__``) so fanning an instance across workers costs
    bytes, not gigabytes.  Instances larger than RAM become usable: the
    vectorised round engine's blocked loop (``block_size=``) walks the
    shards in row order and the storage drops its mapping of each shard as
    the loop moves past it, so a round's resident set is O(block) rather
    than O(m).

The contract both backends implement is :class:`CSRStorage`.  Only the row
pointers (``n + 1`` int64, ~8 MB at n = 10⁶) are guaranteed to be ordinary
in-RAM arrays; the indices are reachable three ways with different cost
models:

* :meth:`CSRStorage.row_slice` — one row, zero-copy;
* :meth:`CSRStorage.iter_row_blocks` — ordered row blocks, O(block) resident
  (the out-of-core iteration primitive);
* :meth:`CSRStorage.indices_array` — the full array; zero-copy for dense
  and single-shard mmap storage, a **materialising O(m) copy** for sharded
  storage.  Consumers that genuinely need the whole array (scipy matrices)
  pay this knowingly.

On top of the block iterator the contract also provides
:meth:`CSRStorage.matvec` — the streamed adjacency product ``A @ x`` — so
matrix consumers (eigensolves, power iteration) can run **matrix-free**
against either backend through
:meth:`~repro.graphs.graph.Graph.adjacency_operator` instead of
materialising a scipy matrix.

``materialize()`` converts any backend into a :class:`DenseStorage`, which
is how the cache serves a v2 (sharded) entry to a caller that asked for a
plain in-RAM graph.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Iterator

import numpy as np

__all__ = [
    "CSRStorageError",
    "CSRStorage",
    "DenseStorage",
    "MmapStorage",
    "ShardWriter",
    "DEFAULT_SHARD_ARCS",
    "MANIFEST_NAME",
]

#: Default number of arcs (int64 entries) per indices shard: 4M arcs = 32 MB,
#: large enough that sequential shard reads amortise syscall overhead, small
#: enough that one shard is a reasonable per-round working set.
DEFAULT_SHARD_ARCS = 4_000_000

#: File name of the JSON manifest inside a sharded storage directory.
MANIFEST_NAME = "manifest.json"

#: Manifest schema version of the sharded on-disk layout.
SHARDED_LAYOUT_VERSION = 1


class CSRStorageError(ValueError):
    """Raised when a storage directory or manifest is structurally unusable."""


class CSRStorage(ABC):
    """Contract for CSR adjacency storage.

    The arrays described are always the *canonical* symmetric CSR structure
    (see :meth:`~repro.graphs.graph.Graph.from_csr`): row pointers of shape
    ``(n + 1,)`` and a concatenated, per-row-sorted indices array of shape
    ``(num_arcs,)``, both int64.  Implementations are immutable after
    construction — the graph layer relies on that to share one instance
    across engines and processes.
    """

    # -- shape and residency ------------------------------------------- #

    @property
    @abstractmethod
    def indptr(self) -> np.ndarray:
        """Row pointers, always an ordinary in-RAM ``(n + 1,)`` int64 array."""

    @property
    def n(self) -> int:
        """Number of rows (nodes)."""
        return self.indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Total number of stored arcs (directed edge slots)."""
        return int(self.indptr[-1])

    @property
    @abstractmethod
    def nbytes(self) -> int:
        """Payload size of the structure (indptr + indices) in bytes."""

    @property
    @abstractmethod
    def in_memory(self) -> bool:
        """``True`` when the full indices array is resident RAM (dense)."""

    # -- access paths --------------------------------------------------- #

    @abstractmethod
    def indices_array(self) -> np.ndarray:
        """The full indices array.

        Zero-copy where possible (dense storage; single-shard mmap returns
        the memmap itself, paged in lazily); a sharded mmap storage has no
        single underlying buffer and **materialises an O(m) in-RAM copy** —
        out-of-core consumers should prefer :meth:`iter_row_blocks`.
        """

    @abstractmethod
    def row_slice(self, v: int) -> np.ndarray:
        """The sorted neighbour slice ``indices[indptr[v]:indptr[v+1]]``."""

    @abstractmethod
    def iter_row_blocks(
        self, block_size: int | None = None
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(row_start, row_stop, block)`` covering all rows in order.

        ``block`` is ``indices[indptr[row_start]:indptr[row_stop]]``.  Blocks
        hold at most ``block_size`` rows (``None`` = backend-native chunking:
        one block for dense storage, one per shard for mmap storage) and
        never span a shard boundary, so a block is always a zero-copy view
        of one underlying buffer.  :class:`MmapStorage` additionally drops
        its mapping of each shard once iteration moves past it, which is
        what bounds the resident set of a blocked engine round.
        """

    def matvec(self, x: np.ndarray, *, block_size: int | None = None) -> np.ndarray:
        """``A @ x`` for the 0/1 adjacency this storage describes, streamed.

        ``x`` may be a vector of shape ``(n,)`` or a matrix of shape
        ``(n, q)``; the result has the same shape in float64.  The product is
        driven entirely by :meth:`iter_row_blocks`, so the indices array is
        **never materialised**: the resident set is O(block) plus the dense
        input/output vectors, which is what lets eigensolves run against
        sharded memory-mapped storage at n = 10⁶ (see
        :meth:`~repro.graphs.graph.Graph.adjacency_operator`).

        Each row's neighbour values are summed independently with
        ``np.add.reduceat`` (a block never splits a row), so the result is
        **bit-identical** for every ``block_size`` and every backend — a
        dense and a sharded storage of the same graph produce the same
        floats, which the streamed-vs-dense eigensolve parity tests rely on.

        Because the structure is symmetric, this is also ``A.T @ x``
        (``rmatvec`` in scipy terms).
        """
        x = np.asarray(x)
        if x.ndim not in (1, 2) or x.shape[0] != self.n:
            raise CSRStorageError(
                f"matvec operand has shape {x.shape}, expected ({self.n},) or ({self.n}, q)"
            )
        x = x.astype(np.float64, copy=False)
        if block_size is None and self.in_memory:
            # Dense storage's native chunking is ONE block — the whole
            # indices array — and the gather below materialises an
            # O(arcs · q) float64 temporary per block.  Bound it to the
            # same working set a shard gives mmap storage; the result is
            # bit-identical for every block size by construction.
            block_size = self.suggested_block_rows()
        indptr = self.indptr
        out = np.zeros(x.shape, dtype=np.float64)
        for r0, r1, block in self.iter_row_blocks(block_size):
            if block.size == 0:
                continue
            base = int(indptr[r0])
            starts = indptr[r0:r1] - base
            lengths = np.diff(indptr[r0 : r1 + 1])
            nonempty = lengths > 0
            # reduceat cannot express empty segments (it would re-use the
            # next row's first value), so reduce only the non-empty rows and
            # scatter; empty rows keep the zero the output started with.
            sums = np.add.reduceat(x[block], starts[nonempty], axis=0)
            out[r0:r1][nonempty] = sums
        return out

    def materialize(self) -> "DenseStorage":
        """An in-RAM :class:`DenseStorage` with identical contents."""
        return DenseStorage(self.indptr, self.indices_array())

    def suggested_block_rows(self, target_arcs: int = DEFAULT_SHARD_ARCS) -> int:
        """A row-block size whose blocks hold roughly ``target_arcs`` arcs."""
        mean_degree = max(1, self.num_arcs // max(1, self.n))
        return max(1, min(self.n, target_arcs // mean_degree))


class DenseStorage(CSRStorage):
    """The in-RAM backend: two contiguous int64 arrays, zero behaviour change.

    Every validated or trusted :class:`~repro.graphs.graph.Graph`
    constructor builds one of these; it is exactly the ``_CSR`` container
    the graph used to hold inline, promoted to the storage contract.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int64)
        if self._indptr.ndim != 1 or self._indptr.size < 1:
            raise CSRStorageError("indptr must be a one-dimensional array of size n + 1")
        if self._indices.ndim != 1:
            raise CSRStorageError("indices must be a one-dimensional array")
        # The storage is the graph's immutable substrate, and (unlike the
        # graph-level accessors, which wrap read-only views) it hands out
        # its arrays directly — so freeze them.  Adoption is still
        # zero-copy; the flag change is visible to a caller that handed us
        # its own array, which is exactly the documented contract ("callers
        # must not mutate them afterwards").
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def nbytes(self) -> int:
        return int(self._indptr.nbytes + self._indices.nbytes)

    @property
    def in_memory(self) -> bool:
        return True

    def indices_array(self) -> np.ndarray:
        return self._indices

    def row_slice(self, v: int) -> np.ndarray:
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def iter_row_blocks(self, block_size=None):
        n = self.n
        if block_size is None:
            yield 0, n, self._indices
            return
        if block_size < 1:
            raise CSRStorageError(f"block_size must be >= 1, got {block_size}")
        for r0 in range(0, n, block_size):
            r1 = min(n, r0 + block_size)
            yield r0, r1, self._indices[self._indptr[r0] : self._indptr[r1]]

    def materialize(self) -> "DenseStorage":
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenseStorage):
            return NotImplemented
        return np.array_equal(self._indptr, other._indptr) and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:  # pragma: no cover - storages are rarely hashed
        return hash((self._indptr.tobytes(), self._indices.tobytes()))


def _shard_file_name(index: int) -> str:
    return f"indices-{index:04d}.npy"


class MmapStorage(CSRStorage):
    """The out-of-core backend: row-chunked ``.npy`` shards + JSON manifest.

    Layout of a storage directory::

        manifest.json      {"format": "csr-sharded", "layout_version": 1,
                            "n": ..., "num_arcs": ...,
                            "shards": [{"file": "indices-0000.npy",
                                        "row_start": r0, "row_stop": r1,
                                        "arc_start": a0, "arc_stop": a1}, ...],
                            "extra": {...}}        # caller metadata (cache key etc.)
        indptr.npy         full (n + 1,) int64 row pointers (loaded into RAM)
        indices-XXXX.npy   one shard of the indices array per entry above

    Every shard is mapped **eagerly** at construction with
    ``np.load(mmap_mode="r")`` — mapping costs one ``mmap`` syscall per
    shard and touches no data pages.  The OS pages shards in on demand, and
    because file-backed read-only mappings are shared, any number of worker
    processes opening the same directory share one copy of the adjacency
    in the page cache.  Eager mapping also makes an open storage immune to
    its entry being deleted from disk (e.g. by cache pruning in another
    process): POSIX keeps unlinked-but-mapped pages readable for the
    lifetime of the mapping.  :meth:`iter_row_blocks` releases each shard's
    *resident pages* (``madvise(MADV_DONTNEED)``, best-effort) after moving
    past it, so streaming consumers keep an O(shard) resident set without
    ever unmapping.

    Pickling ships **only the directory path** (``__reduce__``): a
    ``ProcessPoolExecutor`` worker receiving an mmap-backed graph re-opens
    the manifest instead of deserialising hundreds of MB of arrays.

    Write side: :meth:`write` splits an in-RAM CSR pair into shards of at
    most ``shard_arcs`` arcs, cutting **only at row boundaries** (a single
    row larger than ``shard_arcs`` becomes one oversized shard) so that any
    row's neighbour slice lives in exactly one shard.
    """

    __slots__ = ("_directory", "_indptr", "_shards", "_arrays", "_extra", "_num_arcs")

    def __init__(self, directory: str | Path):
        self._directory = Path(directory)
        manifest_path = self._directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise CSRStorageError(f"no manifest at {manifest_path}") from exc
        except (OSError, ValueError) as exc:
            raise CSRStorageError(f"unreadable manifest at {manifest_path}: {exc}") from exc
        if manifest.get("format") != "csr-sharded":
            raise CSRStorageError(f"{manifest_path} is not a csr-sharded manifest")
        self._indptr = np.ascontiguousarray(
            np.load(self._directory / "indptr.npy"), dtype=np.int64
        )
        self._shards = list(manifest.get("shards", []))
        self._extra = dict(manifest.get("extra", {}))
        self._num_arcs = int(manifest.get("num_arcs", self._indptr[-1]))
        n = int(manifest.get("n", self._indptr.size - 1))
        if self._indptr.size != n + 1 or int(self._indptr[-1]) != self._num_arcs:
            raise CSRStorageError(f"{manifest_path} disagrees with indptr.npy")
        if not self._shards and self._num_arcs:
            raise CSRStorageError(f"{manifest_path} lists no shards for {self._num_arcs} arcs")
        covered = 0
        for shard in self._shards:
            if int(shard["arc_start"]) != covered:
                raise CSRStorageError(f"{manifest_path} has non-contiguous shards")
            covered = int(shard["arc_stop"])
        if covered != self._num_arcs:
            raise CSRStorageError(f"{manifest_path} shards cover {covered}/{self._num_arcs} arcs")
        self._indptr.setflags(write=False)
        # Map every shard now (cheap: no data pages are touched) so the
        # storage keeps working even if the entry is unlinked later.
        self._arrays = [self._map_shard(i) for i in range(len(self._shards))]

    # -- manifest-side metadata ----------------------------------------- #

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def extra(self) -> dict[str, Any]:
        """Caller metadata stored in the manifest (the cache key lives here)."""
        return self._extra

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    # -- CSRStorage ------------------------------------------------------ #

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def num_arcs(self) -> int:
        return self._num_arcs

    @property
    def nbytes(self) -> int:
        return int(self._indptr.nbytes + 8 * self._num_arcs)

    @property
    def in_memory(self) -> bool:
        return False

    def _map_shard(self, index: int) -> np.ndarray:
        shard = self._shards[index]
        expected = int(shard["arc_stop"]) - int(shard["arc_start"])
        if expected == 0:
            # A zero-length buffer cannot be memory-mapped; an empty array
            # is exactly equivalent.
            return np.empty(0, dtype=np.int64)
        path = self._directory / shard["file"]
        try:
            arr = np.load(path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise CSRStorageError(f"cannot map shard {path}: {exc}") from exc
        if arr.ndim != 1 or arr.size != expected:
            raise CSRStorageError(
                f"shard {path} holds {arr.size} arcs, manifest says {expected}"
            )
        return arr

    def _release_shard(self, index: int) -> None:
        # Best-effort: drop the shard's resident pages (they re-read from
        # the page cache / disk on next touch) without unmapping, so the
        # array stays valid.  `_mmap` is numpy's underlying mmap object;
        # absent or unsupported platforms simply keep the pages.
        mm = getattr(self._arrays[index], "_mmap", None)
        if mm is not None and hasattr(_mmap, "MADV_DONTNEED"):
            try:
                mm.madvise(_mmap.MADV_DONTNEED)
            except (ValueError, OSError):  # pragma: no cover - platform quirk
                pass

    def indices_array(self) -> np.ndarray:
        if not self._shards:
            out = np.empty(0, dtype=np.int64)
        elif len(self._shards) == 1:
            return self._arrays[0]  # mapped read-only already
        else:
            # Materialising concatenation: no single underlying buffer.
            out = np.concatenate(self._arrays)
        out.setflags(write=False)
        return out

    def materialize(self) -> DenseStorage:
        arr = self.indices_array()
        if isinstance(arr, np.memmap):
            arr = np.array(arr)  # single shard: copy out of the mapping
        return DenseStorage(self._indptr, arr)

    def _shard_of_row(self, v: int) -> int:
        # Shards partition the row range; binary-search by row_start.
        lo, hi = 0, len(self._shards) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if int(self._shards[mid]["row_start"]) <= v:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def row_slice(self, v: int) -> np.ndarray:
        start, stop = int(self._indptr[v]), int(self._indptr[v + 1])
        if start == stop:
            return np.empty(0, dtype=np.int64)
        index = self._shard_of_row(int(v))
        base = int(self._shards[index]["arc_start"])
        return self._arrays[index][start - base : stop - base]

    def iter_row_blocks(self, block_size=None):
        if block_size is not None and block_size < 1:
            raise CSRStorageError(f"block_size must be >= 1, got {block_size}")
        for i, shard in enumerate(self._shards):
            r0, r1 = int(shard["row_start"]), int(shard["row_stop"])
            base = int(shard["arc_start"])
            arr = self._arrays[i]
            if block_size is None:
                yield r0, r1, arr
            else:
                for b0 in range(r0, r1, block_size):
                    b1 = min(r1, b0 + block_size)
                    yield b0, b1, arr[self._indptr[b0] - base : self._indptr[b1] - base]
            self._release_shard(i)

    def suggested_block_rows(self, target_arcs: int = DEFAULT_SHARD_ARCS) -> int:
        # Blocked consumers of mmap storage should not exceed one shard per
        # block (a block never spans shards anyway); align the suggestion.
        rows = super().suggested_block_rows(target_arcs)
        max_shard_rows = max(
            (int(s["row_stop"]) - int(s["row_start"]) for s in self._shards), default=rows
        )
        return max(1, min(rows, max_shard_rows))

    # -- process boundary ------------------------------------------------ #

    def __reduce__(self):
        # Ship the path, not the arrays: the receiving process re-opens the
        # manifest and shares the page cache with every other process
        # mapping the same entry.
        return (type(self), (str(self._directory),))

    # -- writer ----------------------------------------------------------- #

    @staticmethod
    def write(
        directory: str | Path,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        shard_arcs: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> Path:
        """Write a sharded storage directory for the given CSR arrays.

        Not atomic by itself — callers that need crash safety (the instance
        cache) write into a temporary directory and ``os.replace`` it into
        place.  Returns the directory path.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.size < 1 or indptr[0] != 0 or int(indptr[-1]) != indices.size:
            raise CSRStorageError("indptr does not describe the indices array")
        writer = ShardWriter(directory, indptr.size - 1, shard_arcs=shard_arcs)
        writer.append_rows(np.diff(indptr), indices)
        return writer.finalise(extra=extra)


class ShardWriter:
    """Append-only writer of the sharded layout read by :class:`MmapStorage`.

    Streams a CSR structure to disk in row order without ever holding the
    full index array: callers append per-row neighbour slices as they are
    produced (any chunking of whole rows works), the writer maintains the
    running ``indptr`` — its only O(n) allocation — plus a buffer bounded
    by one shard of pending arcs, and cuts shards with exactly the greedy
    row-boundary rule of the materialising path.  A finalised directory is
    therefore byte-identical to :meth:`MmapStorage.write` of the same
    arrays (which now delegates here), so streamed and materialised cache
    entries are interchangeable, digests included.
    """

    def __init__(
        self,
        directory: str | Path,
        n: int,
        *,
        shard_arcs: int | None = None,
    ) -> None:
        shard_arcs = DEFAULT_SHARD_ARCS if shard_arcs is None else int(shard_arcs)
        if shard_arcs < 1:
            raise CSRStorageError(f"shard_arcs must be >= 1, got {shard_arcs}")
        if n < 0:
            raise CSRStorageError(f"node count must be >= 0, got {n}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._n = int(n)
        self._shard_arcs = shard_arcs
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        self._rows = 0  # rows appended so far
        self._chunks: list[np.ndarray] = []  # pending (unflushed) arcs
        self._shard_row0 = 0  # first row of the shard being accumulated
        self._shards: list[dict[str, int | str]] = []
        self._finalised = False

    @property
    def rows_appended(self) -> int:
        return self._rows

    @property
    def arcs_appended(self) -> int:
        return int(self._indptr[self._rows])

    def append_rows(self, counts: np.ndarray, indices: np.ndarray) -> None:
        """Append the next ``counts.size`` rows of the CSR structure.

        ``counts`` holds the arc count of each row, ``indices`` their
        concatenated neighbour ids (sorted within each row, as everywhere
        else in the CSR contract).  Rows must arrive in node order; full
        shards are flushed to disk as soon as their cut row is known.
        """
        if self._finalised:
            raise CSRStorageError("ShardWriter is already finalised")
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if counts.ndim != 1 or indices.ndim != 1:
            raise CSRStorageError("append_rows expects 1-D counts and indices")
        if self._rows + counts.size > self._n:
            raise CSRStorageError(
                f"appending {counts.size} rows at row {self._rows} exceeds n={self._n}"
            )
        if counts.size and int(counts.min()) < 0:
            raise CSRStorageError("negative row count in append_rows")
        if int(counts.sum()) != indices.size:
            raise CSRStorageError(
                f"row counts sum to {int(counts.sum())} but {indices.size} indices given"
            )
        stop = self._rows + counts.size
        np.cumsum(counts, out=self._indptr[self._rows + 1 : stop + 1])
        self._indptr[self._rows + 1 : stop + 1] += self._indptr[self._rows]
        self._rows = stop
        if indices.size:
            self._chunks.append(indices)
        self._flush(final=False)

    def finalise(self, *, extra: dict[str, Any] | None = None) -> Path:
        """Flush the tail shard, write ``indptr.npy`` and the manifest."""
        if self._finalised:
            raise CSRStorageError("ShardWriter is already finalised")
        if self._rows != self._n:
            raise CSRStorageError(
                f"finalise after {self._rows} of {self._n} rows were appended"
            )
        np.save(self._directory / "indptr.npy", self._indptr)
        self._flush(final=True)
        manifest = {
            "format": "csr-sharded",
            "layout_version": SHARDED_LAYOUT_VERSION,
            "n": self._n,
            "num_arcs": int(self._indptr[-1]),
            "shards": self._shards,
            "extra": dict(extra or {}),
        }
        manifest_path = self._directory / MANIFEST_NAME
        manifest_path.write_text(json.dumps(manifest, indent=1), encoding="utf-8")
        # Durability matters less than atomicity here, but fsyncing the
        # manifest last means a visible manifest implies complete shards.
        try:
            fd = os.open(manifest_path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:  # pragma: no cover - fsync unavailable (exotic fs)
            pass
        self._finalised = True
        return self._directory

    def _flush(self, *, final: bool) -> None:
        indptr = self._indptr
        while self._shard_row0 < self._n:
            arc_start = int(indptr[self._shard_row0])
            limit = arc_start + self._shard_arcs
            if not final and int(indptr[self._rows]) <= limit:
                # The cut row is not known yet: rows still to come may have
                # zero arcs and belong to this shard under the greedy rule.
                return
            # Furthest row whose slice still fits in this shard; always make
            # progress even when a single row exceeds shard_arcs.
            row_stop = (
                int(np.searchsorted(indptr[: self._rows + 1], limit, side="right")) - 1
            )
            row_stop = max(self._shard_row0 + 1, min(self._n, row_stop))
            arc_stop = int(indptr[row_stop])
            file_name = _shard_file_name(len(self._shards))
            np.save(self._directory / file_name, self._take(arc_stop - arc_start))
            self._shards.append(
                {
                    "file": file_name,
                    "row_start": self._shard_row0,
                    "row_stop": row_stop,
                    "arc_start": arc_start,
                    "arc_stop": arc_stop,
                }
            )
            self._shard_row0 = row_stop

    def _take(self, count: int) -> np.ndarray:
        """Pop the next ``count`` arcs from the pending buffer."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        head = self._chunks[0]
        if head.size == count:
            return self._chunks.pop(0)
        if head.size > count:
            self._chunks[0] = head[count:]
            return head[:count]
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            head = self._chunks[0]
            need = count - filled
            if head.size <= need:
                out[filled : filled + head.size] = head
                filled += head.size
                self._chunks.pop(0)
            else:
                out[filled:] = head[:need]
                self._chunks[0] = head[need:]
                filled = count
        return out
