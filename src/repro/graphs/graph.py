"""Core graph data structure used throughout the reproduction.

The paper's algorithm only ever needs three graph operations from a node's
point of view:

* know its own degree,
* draw a uniformly random neighbour (used by the matching protocol of
  Section 2.2 of the paper), and
* enumerate its neighbours (used by baselines such as label propagation and
  the Becchetti et al. averaging dynamics).

``Graph`` stores an undirected simple graph in compressed sparse row (CSR)
form, which gives O(1) degree queries, O(1) uniformly-random-neighbour
sampling and contiguous neighbour slices (cache friendly, per the HPC
guides).  The structure is immutable after construction: algorithms never
mutate the topology, which lets us safely share one ``Graph`` instance across
the distributed simulator, the centralised implementation and the baselines.

Self-loops are supported because the almost-regular extension of the paper
(Section 4.5) conceptually adds ``D - d_v`` self-loops at every node to view
the graph as ``D``-regular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["Graph", "GraphError"]


class GraphError(ValueError):
    """Raised when a graph is constructed from inconsistent data."""


@dataclass(frozen=True)
class _CSR:
    """Minimal immutable CSR container for the adjacency structure."""

    indptr: np.ndarray
    indices: np.ndarray

    def neighbours(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


class Graph:
    """An immutable undirected graph stored in CSR form.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are identified by integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Each undirected edge should appear
        exactly once; the constructor symmetrises the structure.  Self-loops
        ``(v, v)`` are allowed and count once towards the degree of ``v``
        (matching the convention used by the paper's almost-regular
        construction where a self-loop keeps half of the node's load in
        place but never participates in a matching with another node).
    name:
        Optional human-readable name used in reports and benchmark tables.

    Notes
    -----
    Duplicate edges raise :class:`GraphError`: the paper works with simple
    graphs and duplicate edges would silently bias the random-neighbour
    distribution used by the matching protocol.
    """

    __slots__ = ("_n", "_csr", "_degrees", "_num_edges", "_num_self_loops", "name")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], *, name: str = "graph"):
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be an iterable of (u, v) pairs")
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n):
            raise GraphError("edge endpoint out of range")

        u = edge_array[:, 0]
        v = edge_array[:, 1]
        loop_mask = u == v
        non_loop_u = u[~loop_mask]
        non_loop_v = v[~loop_mask]

        # Detect duplicates among non-loop edges (order-insensitive).
        if non_loop_u.size:
            lo = np.minimum(non_loop_u, non_loop_v)
            hi = np.maximum(non_loop_u, non_loop_v)
            keys = lo.astype(np.int64) * n + hi
            if np.unique(keys).size != keys.size:
                raise GraphError("duplicate undirected edges are not allowed")
        loops = u[loop_mask]
        if loops.size and np.unique(loops).size != loops.size:
            raise GraphError("duplicate self-loops are not allowed")

        # Build symmetric CSR: each non-loop edge contributes two directed
        # arcs, each self-loop contributes a single arc v -> v.
        src = np.concatenate([non_loop_u, non_loop_v, loops])
        dst = np.concatenate([non_loop_v, non_loop_u, loops])
        # Canonical CSR: arcs sorted by (source, destination) so that two
        # graphs with the same edge set compare equal regardless of the
        # order in which edges were supplied.
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        indptr = np.cumsum(indptr)
        self._csr = _CSR(indptr=indptr, indices=dst.astype(np.int64))
        self._n = int(n)
        self._degrees = np.diff(indptr).astype(np.int64)
        self._num_edges = int(non_loop_u.size + loops.size)
        self._num_self_loops = int(loops.size)
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray | sp.spmatrix, *, name: str = "graph") -> "Graph":
        """Build a graph from a dense or sparse symmetric 0/1 adjacency matrix."""
        if sp.issparse(adjacency):
            a = sp.coo_matrix(adjacency)
            mask = a.row <= a.col
            edges = list(zip(a.row[mask].tolist(), a.col[mask].tolist()))
            n = a.shape[0]
        else:
            a = np.asarray(adjacency)
            if a.ndim != 2 or a.shape[0] != a.shape[1]:
                raise GraphError("adjacency matrix must be square")
            if not np.array_equal(a, a.T):
                raise GraphError("adjacency matrix must be symmetric")
            n = a.shape[0]
            iu = np.triu_indices(n)
            sel = a[iu] != 0
            edges = list(zip(iu[0][sel].tolist(), iu[1][sel].tolist()))
        return cls(n, edges, name=name)

    @classmethod
    def from_networkx(cls, g, *, name: str | None = None) -> "Graph":
        """Convert a :mod:`networkx` graph with integer-convertible nodes."""
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges()]
        return cls(len(nodes), edges, name=name or getattr(g, "name", "") or "networkx-graph")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_nodes(self) -> int:
        """Alias of :attr:`n`."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (self-loops count once)."""
        return self._num_edges

    @property
    def num_self_loops(self) -> int:
        """Number of self-loops."""
        return self._num_self_loops

    @property
    def degrees(self) -> np.ndarray:
        """Degree vector (read-only view); self-loops contribute one."""
        view = self._degrees.view()
        view.setflags(write=False)
        return view

    @property
    def max_degree(self) -> int:
        return int(self._degrees.max())

    @property
    def min_degree(self) -> int:
        return int(self._degrees.min())

    @property
    def volume(self) -> int:
        """Total volume ``sum_v d_v`` of the graph."""
        return int(self._degrees.sum())

    def degree(self, v: int) -> int:
        return int(self._degrees[v])

    def is_regular(self) -> bool:
        """``True`` iff every node has the same degree."""
        return self.max_degree == self.min_degree

    def degree_ratio(self) -> float:
        """Ratio ``Δ/δ`` between maximum and minimum degree (∞ if δ = 0)."""
        if self.min_degree == 0:
            return float("inf")
        return self.max_degree / self.min_degree

    def neighbours(self, v: int) -> np.ndarray:
        """Read-only array of neighbours of ``v`` (includes ``v`` for a self-loop)."""
        out = self._csr.neighbours(v).view()
        out.setflags(write=False)
        return out

    # American-spelling alias, used by a few baselines.
    neighbors = neighbours

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only ``(indptr, indices)`` views of the CSR adjacency structure.

        This is the raw substrate the vectorised round engine samples random
        neighbours from: ``indices[indptr[v]:indptr[v+1]]`` are the neighbours
        of ``v``, so a uniform neighbour of every node in an array ``vs`` is
        ``indices[indptr[vs] + offsets]`` with per-node uniform ``offsets`` —
        one fancy-indexing expression instead of ``n`` Python-level calls.
        """
        indptr = self._csr.indptr.view()
        indptr.setflags(write=False)
        indices = self._csr.indices.view()
        indices.setflags(write=False)
        return indptr, indices

    def random_neighbour(self, v: int, rng: np.random.Generator) -> int:
        """Return a uniformly random neighbour of ``v``.

        This is the "random neighbour oracle" of Section 1.2 of the paper;
        it is O(1) thanks to the CSR layout.
        """
        start = self._csr.indptr[v]
        end = self._csr.indptr[v + 1]
        if end == start:
            raise GraphError(f"node {v} has no neighbours")
        return int(self._csr.indices[start + rng.integers(end - start)])

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self._csr.neighbours(u) == v))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(min, max)`` pairs."""
        for u in range(self._n):
            for v in self._csr.neighbours(u):
                if v >= u:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array (each edge once)."""
        rows = np.repeat(np.arange(self._n), np.diff(self._csr.indptr))
        cols = self._csr.indices
        mask = cols >= rows
        return np.stack([rows[mask], cols[mask]], axis=1)

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The symmetric adjacency matrix ``A`` (self-loops appear once on the diagonal)."""
        rows = np.repeat(np.arange(self._n), np.diff(self._csr.indptr))
        cols = self._csr.indices
        data = np.ones(rows.shape[0], dtype=np.float64)
        a = sp.csr_matrix((data, (rows, cols)), shape=(self._n, self._n))
        if sparse:
            return a
        return a.toarray()

    def random_walk_matrix(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The random walk matrix ``P = D^{-1} A`` (row-stochastic).

        For a ``d``-regular graph this coincides with the paper's
        ``P = (1/d) A``.
        """
        a = self.adjacency_matrix(sparse=True)
        inv_deg = np.zeros(self._n)
        nz = self._degrees > 0
        inv_deg[nz] = 1.0 / self._degrees[nz]
        p = sp.diags(inv_deg) @ a
        if sparse:
            return sp.csr_matrix(p)
        return p.toarray()

    def lazy_random_walk_matrix(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The lazy walk ``(I + P) / 2``, often used for mixing arguments."""
        p = self.random_walk_matrix(sparse=True)
        lazy = 0.5 * (sp.identity(self._n, format="csr") + p)
        if sparse:
            return sp.csr_matrix(lazy)
        return lazy.toarray()

    def normalized_laplacian(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The symmetric normalised Laplacian ``I - D^{-1/2} A D^{-1/2}``."""
        a = self.adjacency_matrix(sparse=True)
        inv_sqrt = np.zeros(self._n)
        nz = self._degrees > 0
        inv_sqrt[nz] = 1.0 / np.sqrt(self._degrees[nz])
        d_half = sp.diags(inv_sqrt)
        lap = sp.identity(self._n, format="csr") - d_half @ a @ d_half
        if sparse:
            return sp.csr_matrix(lap)
        return lap.toarray()

    # ------------------------------------------------------------------ #
    # Subgraphs and transformations
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Subgraph induced on ``nodes`` (relabelled to ``0..len(nodes)-1``)."""
        nodes = np.asarray(sorted(set(int(x) for x in nodes)), dtype=np.int64)
        index = -np.ones(self._n, dtype=np.int64)
        index[nodes] = np.arange(nodes.size)
        sub_edges = []
        for u in nodes:
            for v in self._csr.neighbours(int(u)):
                if v >= u and index[v] >= 0:
                    sub_edges.append((int(index[u]), int(index[v])))
        return Graph(nodes.size, sub_edges, name=f"{self.name}[induced]")

    def with_self_loops_to_degree(self, target_degree: int) -> "Graph":
        """Return a copy where node ``v`` gains a self-loop if ``d_v < target_degree``.

        This models (in a single loop rather than ``D - d_v`` parallel loops —
        parallel self-loops would not change the *matching* behaviour since a
        self-loop can never be part of a matching with another node) the
        almost-regular construction of Section 4.5 of the paper.  The
        spectral utilities account for the weighting separately.
        """
        if target_degree < self.max_degree:
            raise GraphError(
                f"target degree {target_degree} below maximum degree {self.max_degree}"
            )
        edges = list(self.edges())
        for v in range(self._n):
            if self._degrees[v] < target_degree and not self.has_edge(v, v):
                edges.append((v, v))
        return Graph(self._n, edges, name=f"{self.name}+selfloops")

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (used only by tests/inspection)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #

    def connected_components(self) -> list[np.ndarray]:
        """Connected components as arrays of node ids (BFS, iterative)."""
        seen = np.zeros(self._n, dtype=bool)
        components: list[np.ndarray] = []
        for start in range(self._n):
            if seen[start]:
                continue
            frontier = [start]
            seen[start] = True
            members = [start]
            while frontier:
                nxt: list[int] = []
                for u in frontier:
                    for v in self._csr.neighbours(u):
                        if not seen[v]:
                            seen[v] = True
                            members.append(int(v))
                            nxt.append(int(v))
                frontier = nxt
            components.append(np.asarray(sorted(members), dtype=np.int64))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(name={self.name!r}, n={self._n}, m={self._num_edges}, "
            f"degree range [{self.min_degree}, {self.max_degree}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._csr.indptr, other._csr.indptr)
            and np.array_equal(self._csr.indices, other._csr.indices)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._num_edges, self._csr.indices.tobytes()))
