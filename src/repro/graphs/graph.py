"""Core graph data structure used throughout the reproduction.

The paper's algorithm only ever needs three graph operations from a node's
point of view:

* know its own degree,
* draw a uniformly random neighbour (used by the matching protocol of
  Section 2.2 of the paper), and
* enumerate its neighbours (used by baselines such as label propagation and
  the Becchetti et al. averaging dynamics).

``Graph`` stores an undirected simple graph in compressed sparse row (CSR)
form, which gives O(1) degree queries, O(1) uniformly-random-neighbour
sampling and contiguous neighbour slices (cache friendly, per the HPC
guides).  The structure is immutable after construction: algorithms never
mutate the topology, which lets us safely share one ``Graph`` instance across
the distributed simulator, the centralised implementation and the baselines.

*Where* the CSR arrays live is delegated to a pluggable
:class:`~repro.graphs.store.CSRStorage` backend: :class:`~repro.graphs.store.DenseStorage`
(in-RAM int64 arrays, the default and the historical behaviour) or
:class:`~repro.graphs.store.MmapStorage` (row-chunked ``.npy`` shards paged
in on demand, for instances that outgrow RAM and for cheap multi-process
sharing).  Every accessor below goes through the storage contract, so the
two backends are interchangeable everywhere a ``Graph`` is consumed.

Self-loops are supported because the almost-regular extension of the paper
(Section 4.5) conceptually adds ``D - d_v`` self-loops at every node to view
the graph as ``D``-regular.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from .store import CSRStorage, DenseStorage

__all__ = ["Graph", "GraphError"]


class GraphError(ValueError):
    """Raised when a graph is constructed from inconsistent data."""


def _find_roots(parent: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Vectorised union-find *find* with path halving for a batch of nodes.

    Mutates ``parent`` in place (halving only ever re-points a node at its
    grandparent, so concurrent batch entries for the same node write the
    same value) and returns the root of every entry in ``nodes``.
    """
    cur = nodes
    while True:
        par = parent[cur]
        grand = parent[par]
        if np.array_equal(par, grand):
            return par
        parent[cur] = grand  # path halving
        cur = grand


def _union_edge_batch(parent: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """Union every edge ``(u[i], v[i])`` into the ``parent`` forest.

    Hooks the larger root under the smaller one.  Conflicting scatter
    writes within one pass can drop a union, but every dropped pair stays
    live (its roots still differ) and is retried; each pass strictly
    decreases the parent of at least one root, so the loop terminates.
    """
    while u.size:
        ru = _find_roots(parent, u)
        rv = _find_roots(parent, v)
        live = ru != rv
        if not live.any():
            return
        ru = ru[live]
        rv = rv[live]
        hi = np.maximum(ru, rv)
        parent[hi] = np.minimum(ru, rv)
        u, v = ru, rv


class Graph:
    """An immutable undirected graph stored in CSR form.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are identified by integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Each undirected edge should appear
        exactly once; the constructor symmetrises the structure.  Self-loops
        ``(v, v)`` are allowed and count once towards the degree of ``v``
        (matching the convention used by the paper's almost-regular
        construction where a self-loop keeps half of the node's load in
        place but never participates in a matching with another node).
    name:
        Optional human-readable name used in reports and benchmark tables.

    Notes
    -----
    Duplicate edges raise :class:`GraphError`: the paper works with simple
    graphs and duplicate edges would silently bias the random-neighbour
    distribution used by the matching protocol.
    """

    __slots__ = ("_n", "_store", "_degrees", "_num_edges", "_num_self_loops", "name")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], *, name: str = "graph"):
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        if isinstance(edges, np.ndarray):
            edge_array = np.asarray(edges, dtype=np.int64)
        else:
            edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be an iterable of (u, v) pairs")
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n):
            raise GraphError("edge endpoint out of range")

        u = edge_array[:, 0]
        v = edge_array[:, 1]
        loop_mask = u == v
        non_loop_u = u[~loop_mask]
        non_loop_v = v[~loop_mask]

        # Detect duplicates among non-loop edges (order-insensitive).  The
        # check is a sort + adjacent compare: numpy's hash-based `unique` is
        # several times slower at the 10⁷-edge scale the generators produce.
        if non_loop_u.size:
            lo = np.minimum(non_loop_u, non_loop_v)
            hi = np.maximum(non_loop_u, non_loop_v)
            keys = np.sort(lo * n + hi)
            if np.any(keys[1:] == keys[:-1]):
                raise GraphError("duplicate undirected edges are not allowed")
        loops = u[loop_mask]
        if loops.size:
            sorted_loops = np.sort(loops)
            if np.any(sorted_loops[1:] == sorted_loops[:-1]):
                raise GraphError("duplicate self-loops are not allowed")

        # Build symmetric CSR: each non-loop edge contributes two directed
        # arcs, each self-loop contributes a single arc v -> v.
        src = np.concatenate([non_loop_u, non_loop_v, loops])
        dst = np.concatenate([non_loop_v, non_loop_u, loops])
        self._finalise_from_arcs(
            int(n),
            src,
            dst,
            num_edges=int(non_loop_u.size + loops.size),
            num_self_loops=int(loops.size),
            name=name,
        )

    def _finalise_from_arcs(
        self,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        num_edges: int,
        num_self_loops: int,
        name: str,
    ) -> None:
        """Sort symmetric arc arrays into canonical CSR and fill the slots.

        Canonical CSR: arcs sorted by (source, destination) so that two
        graphs with the same edge set compare equal regardless of the order
        in which edges were supplied, and so that each row's neighbour slice
        is sorted (which :meth:`has_edge` binary-searches).
        """
        if n <= 3_000_000_000:
            # Fuse (src, dst) into one int64 key: a single np.sort is ~6x
            # faster than np.lexsort on tens of millions of arcs, and both
            # the destination column and the row pointers fall out of the
            # sorted keys without materialising a permutation.
            keys = np.sort(src.astype(np.int64) * n + np.asarray(dst, dtype=np.int64))
            indices = keys % n
            indptr = np.searchsorted(keys, np.arange(n + 1, dtype=np.int64) * n)
        else:  # pragma: no cover - keys would overflow int64 (n > 3e9)
            order = np.lexsort((dst, src))
            indices = np.asarray(dst, dtype=np.int64)[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.add.at(indptr, np.asarray(src, dtype=np.int64) + 1, 1)
            indptr = np.cumsum(indptr)
        self._store = DenseStorage(indptr, indices)
        self._n = n
        self._degrees = np.diff(indptr).astype(np.int64)
        self._num_edges = num_edges
        self._num_self_loops = num_self_loops
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edge_array(cls, n: int, edges: np.ndarray, *, name: str = "graph") -> "Graph":
        """Build a graph from an ``(m, 2)`` int64 edge array, fully validated.

        Semantically identical to ``Graph(n, edges)`` (range checks and
        vectorised duplicate detection included) but skips the Python-level
        ``list(edges)`` round trip: the array is consumed as-is.  This is the
        constructor every generator uses.
        """
        return cls(n, np.asarray(edges, dtype=np.int64), name=name)

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str = "graph",
        validate: bool = False,
    ) -> "Graph":
        """Adopt existing CSR arrays as a graph — the trusted zero-copy path.

        ``indptr``/``indices`` must describe a *canonical* symmetric CSR
        structure: for every arc ``u → v`` with ``u ≠ v`` the reverse arc is
        present, each row's neighbour slice is sorted, and self-loops appear
        as a single arc ``v → v``.  Both :meth:`csr_arrays` outputs and
        anything produced by :meth:`_finalise_from_arcs` qualify.  The arrays
        are adopted without copying (when already int64 and contiguous), so
        callers must not mutate them afterwards.

        ``validate=True`` runs O(n + m) structural checks (monotone pointers,
        per-row sortedness, endpoint range, symmetry) for untrusted input.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        n = indptr.size - 1
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError("indptr does not describe the indices array")
        if validate:
            if np.any(np.diff(indptr) < 0):
                raise GraphError("indptr must be non-decreasing")
            if indices.size and (indices.min() < 0 or indices.max() >= n):
                raise GraphError("edge endpoint out of range")
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            keys = rows * n + indices
            if np.any(np.diff(keys) <= 0):
                raise GraphError("rows must be sorted with unique entries")
            reverse = np.searchsorted(keys, indices * n + rows)
            if np.any(reverse >= keys.size) or np.any(keys[np.minimum(reverse, keys.size - 1)] != indices * n + rows):
                raise GraphError("CSR structure is not symmetric")
            loops = int(np.count_nonzero(rows == indices))
        else:
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            loops = int(np.count_nonzero(rows == indices))
        self = object.__new__(cls)
        self._store = DenseStorage(indptr, indices)
        self._n = int(n)
        self._degrees = np.diff(indptr).astype(np.int64)
        self._num_edges = int((indices.size - loops) // 2 + loops)
        self._num_self_loops = loops
        self.name = name
        return self

    @classmethod
    def from_storage(
        cls,
        storage: CSRStorage,
        *,
        name: str = "graph",
        num_edges: int | None = None,
        num_self_loops: int | None = None,
    ) -> "Graph":
        """Adopt a :class:`~repro.graphs.store.CSRStorage` backend as a graph.

        This is how the out-of-core substrate enters the graph layer: the
        instance cache opens a sharded entry as an
        :class:`~repro.graphs.store.MmapStorage` and wraps it here without
        ever materialising the indices.  The storage must describe a
        canonical symmetric CSR structure (same contract as
        :meth:`from_csr`, which is trusted likewise).

        ``num_edges`` / ``num_self_loops`` let a caller that persisted the
        counts (the v2 cache manifest) skip the O(m) self-loop scan; when
        omitted they are recovered with one streaming pass over the row
        blocks, so opening stays O(block)-resident even for sharded storage.
        """
        n = storage.n
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        indptr = storage.indptr
        if indptr[0] != 0 or int(indptr[-1]) != storage.num_arcs:
            raise GraphError("indptr does not describe the indices array")
        if num_self_loops is None:
            loops = 0
            for r0, r1, block in storage.iter_row_blocks():
                rows = np.repeat(
                    np.arange(r0, r1, dtype=np.int64), np.diff(indptr[r0 : r1 + 1])
                )
                loops += int(np.count_nonzero(rows == block))
        else:
            loops = int(num_self_loops)
        self = object.__new__(cls)
        self._store = storage
        self._n = int(n)
        self._degrees = np.diff(indptr).astype(np.int64)
        self._num_edges = (
            int((storage.num_arcs - loops) // 2 + loops) if num_edges is None else int(num_edges)
        )
        self._num_self_loops = loops
        self.name = name
        return self

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray | sp.spmatrix, *, name: str = "graph") -> "Graph":
        """Build a graph from a dense or sparse symmetric 0/1 adjacency matrix."""
        if sp.issparse(adjacency):
            a = sp.coo_matrix(adjacency)
            mask = a.row <= a.col
            edges = np.stack([a.row[mask], a.col[mask]], axis=1).astype(np.int64)
            n = a.shape[0]
        else:
            a = np.asarray(adjacency)
            if a.ndim != 2 or a.shape[0] != a.shape[1]:
                raise GraphError("adjacency matrix must be square")
            if not np.array_equal(a, a.T):
                raise GraphError("adjacency matrix must be symmetric")
            n = a.shape[0]
            iu = np.triu_indices(n)
            sel = a[iu] != 0
            edges = np.stack([iu[0][sel], iu[1][sel]], axis=1).astype(np.int64)
        return cls.from_edge_array(n, edges, name=name)

    @classmethod
    def from_networkx(cls, g, *, name: str | None = None) -> "Graph":
        """Convert a :mod:`networkx` graph with integer-convertible nodes."""
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges()]
        return cls(len(nodes), edges, name=name or getattr(g, "name", "") or "networkx-graph")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_nodes(self) -> int:
        """Alias of :attr:`n`."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (self-loops count once)."""
        return self._num_edges

    @property
    def num_self_loops(self) -> int:
        """Number of self-loops."""
        return self._num_self_loops

    @property
    def degrees(self) -> np.ndarray:
        """Degree vector (read-only view); self-loops contribute one."""
        view = self._degrees.view()
        view.setflags(write=False)
        return view

    @property
    def max_degree(self) -> int:
        return int(self._degrees.max())

    @property
    def min_degree(self) -> int:
        return int(self._degrees.min())

    @property
    def volume(self) -> int:
        """Total volume ``sum_v d_v`` of the graph."""
        return int(self._degrees.sum())

    def degree(self, v: int) -> int:
        return int(self._degrees[v])

    def is_regular(self) -> bool:
        """``True`` iff every node has the same degree."""
        return self.max_degree == self.min_degree

    def degree_ratio(self) -> float:
        """Ratio ``Δ/δ`` between maximum and minimum degree (∞ if δ = 0)."""
        if self.min_degree == 0:
            return float("inf")
        return self.max_degree / self.min_degree

    @property
    def storage(self) -> CSRStorage:
        """The adjacency storage backend (dense in-RAM or memory-mapped).

        Out-of-core consumers (the blocked round engine, streaming scans)
        use this to iterate row blocks without materialising the indices;
        everyone else keeps calling the graph-level accessors below.
        """
        return self._store

    def neighbours(self, v: int) -> np.ndarray:
        """Read-only array of neighbours of ``v`` (includes ``v`` for a self-loop)."""
        out = self._store.row_slice(v).view()
        out.setflags(write=False)
        return out

    # American-spelling alias, used by a few baselines.
    neighbors = neighbours

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only ``(indptr, indices)`` views of the CSR adjacency structure.

        This is the raw substrate the vectorised round engine samples random
        neighbours from: ``indices[indptr[v]:indptr[v+1]]`` are the neighbours
        of ``v``, so a uniform neighbour of every node in an array ``vs`` is
        ``indices[indptr[vs] + offsets]`` with per-node uniform ``offsets`` —
        one fancy-indexing expression instead of ``n`` Python-level calls.

        For multi-shard :class:`~repro.graphs.store.MmapStorage` the indices
        half is a **materialising O(m) copy** (there is no single underlying
        buffer); out-of-core consumers should iterate
        ``graph.storage.iter_row_blocks()`` instead.
        """
        indptr = self._store.indptr.view()
        indptr.setflags(write=False)
        indices = self._store.indices_array().view()
        indices.setflags(write=False)
        return indptr, indices

    def random_neighbour(self, v: int, rng: np.random.Generator) -> int:
        """Return a uniformly random neighbour of ``v``.

        This is the "random neighbour oracle" of Section 1.2 of the paper;
        it is O(1) thanks to the CSR layout.
        """
        row = self._store.row_slice(v)
        if row.size == 0:
            raise GraphError(f"node {v} has no neighbours")
        return int(row[rng.integers(row.size)])

    def has_edge(self, u: int, v: int) -> bool:
        """O(log d_u) membership test: rows are sorted, so binary-search.

        The canonical CSR built at construction keeps every neighbour slice
        sorted, which turns the seed's O(d) linear scan into a
        ``searchsorted`` — noticeable on the high-degree nodes of the dense
        clique families.
        """
        row = self._store.row_slice(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(min, max)`` pairs.

        Prefer :meth:`edge_array` in new code — this iterator exists for the
        few remaining tuple consumers (networkx export, tests) and is backed
        by the vectorised array extraction rather than a per-node scan.
        """
        for u, v in self.edge_array().tolist():
            yield (u, v)

    def _arc_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Expanded ``(src, dst)`` arc arrays (both directions of every edge)."""
        rows = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._store.indptr))
        return rows, self._store.indices_array()

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array (each edge once)."""
        rows, cols = self._arc_arrays()
        mask = cols >= rows
        return np.stack([rows[mask], cols[mask]], axis=1)

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The symmetric adjacency matrix ``A`` (self-loops appear once on the diagonal)."""
        data = np.ones(self._store.num_arcs, dtype=np.float64)
        # The internal structure already is canonical CSR, so the matrix is a
        # straight copy of the index arrays instead of a COO round trip.  The
        # copies keep the (mutable) scipy matrix from aliasing the immutable
        # graph internals.
        a = sp.csr_matrix(
            (data, np.array(self._store.indices_array()), self._store.indptr.copy()),
            shape=(self._n, self._n),
        )
        if sparse:
            return a
        return a.toarray()

    def random_walk_matrix(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The random walk matrix ``P = D^{-1} A`` (row-stochastic).

        For a ``d``-regular graph this coincides with the paper's
        ``P = (1/d) A``.
        """
        a = self.adjacency_matrix(sparse=True)
        inv_deg = np.zeros(self._n)
        nz = self._degrees > 0
        inv_deg[nz] = 1.0 / self._degrees[nz]
        p = sp.diags(inv_deg) @ a
        if sparse:
            return sp.csr_matrix(p)
        return p.toarray()

    def lazy_random_walk_matrix(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The lazy walk ``(I + P) / 2``, often used for mixing arguments."""
        p = self.random_walk_matrix(sparse=True)
        lazy = 0.5 * (sp.identity(self._n, format="csr") + p)
        if sparse:
            return sp.csr_matrix(lazy)
        return lazy.toarray()

    def normalized_laplacian(self, *, sparse: bool = True) -> sp.csr_matrix | np.ndarray:
        """The symmetric normalised Laplacian ``I - D^{-1/2} A D^{-1/2}``."""
        a = self.adjacency_matrix(sparse=True)
        d_half = sp.diags(self._inv_sqrt_degrees())
        lap = sp.identity(self._n, format="csr") - d_half @ a @ d_half
        if sparse:
            return sp.csr_matrix(lap)
        return lap.toarray()

    def _inv_sqrt_degrees(self) -> np.ndarray:
        """The ``D^{-1/2}`` scaling vector; isolated nodes get 0.

        Shared by every degree-normalised view (the normalised Laplacian,
        the symmetric walk operator and its materialised twin in
        :mod:`repro.graphs.spectral`) so the isolated-node convention
        lives in exactly one place — the operator/matrix bit-parity
        contract depends on them agreeing.
        """
        inv_sqrt = np.zeros(self._n, dtype=np.float64)
        nz = self._degrees > 0
        inv_sqrt[nz] = 1.0 / np.sqrt(self._degrees[nz])
        return inv_sqrt

    # ------------------------------------------------------------------ #
    # Matrix-free operator views
    # ------------------------------------------------------------------ #

    def adjacency_operator(self, *, block_size: int | None = None):
        """A matrix-free :class:`scipy.sparse.linalg.LinearOperator` view of ``A``.

        Unlike :meth:`adjacency_matrix` this never materialises the
        adjacency: every ``matvec``/``matmat`` streams over the storage's
        row blocks (:meth:`~repro.graphs.store.CSRStorage.matvec`), so the
        resident set stays O(block) even for sharded memory-mapped graphs.
        ``A`` is symmetric, so ``rmatvec`` is the same product.

        ``block_size`` bounds the rows touched per block (``None`` = a
        bounded default: shard-sized blocks for dense storage — the gather
        allocates an O(arcs · q) float64 temporary per block, so one whole-
        array block would defeat the point — and one block per shard for
        mmap storage, already O(shard)-resident).  The produced floats are
        bit-identical for every block size and storage backend.
        """
        import scipy.sparse.linalg as spla

        store = self._store

        def _mv(x: np.ndarray) -> np.ndarray:
            return store.matvec(x, block_size=block_size)

        return spla.LinearOperator(
            shape=(self._n, self._n), dtype=np.float64,
            matvec=_mv, rmatvec=_mv, matmat=_mv,
        )

    def normalized_adjacency_operator(self, *, block_size: int | None = None):
        """Matrix-free view of ``N = D^{-1/2} A D^{-1/2}`` (symmetric walk operator).

        ``N`` is similar to the random walk matrix ``P = D^{-1} A`` and
        shares its eigenvalues; the spectral toolbox runs Lanczos against
        this operator so eigensolves stream the adjacency the same way the
        round engine streams matching rounds.  Isolated nodes contribute
        zero rows/columns (their scaling factor is defined as 0).
        """
        import scipy.sparse.linalg as spla

        store = self._store
        inv_sqrt = self._inv_sqrt_degrees()

        def _mv(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=np.float64)
            scale = inv_sqrt if x.ndim == 1 else inv_sqrt[:, np.newaxis]
            return scale * store.matvec(scale * x, block_size=block_size)

        return spla.LinearOperator(
            shape=(self._n, self._n), dtype=np.float64,
            matvec=_mv, rmatvec=_mv, matmat=_mv,
        )

    # ------------------------------------------------------------------ #
    # Subgraphs and transformations
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Subgraph induced on ``nodes`` (relabelled to ``0..len(nodes)-1``)."""
        nodes = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if nodes.size == 0:
            raise GraphError("graph must have at least one node, got n=0")
        if nodes[0] < 0 or nodes[-1] >= self._n:
            raise GraphError("induced_subgraph node id out of range")
        index = -np.ones(self._n, dtype=np.int64)
        index[nodes] = np.arange(nodes.size)
        src, dst = self._arc_arrays()
        keep = (index[src] >= 0) & (index[dst] >= 0)
        src = index[src[keep]]
        dst = index[dst[keep]]
        loops = int(np.count_nonzero(src == dst))
        sub = object.__new__(Graph)
        # The filtered arcs are already symmetric, so finalising them directly
        # skips the validated constructor's duplicate scan.
        sub._finalise_from_arcs(
            int(nodes.size),
            src,
            dst,
            num_edges=int((src.size - loops) // 2 + loops),
            num_self_loops=loops,
            name=f"{self.name}[induced]",
        )
        return sub

    def with_self_loops_to_degree(self, target_degree: int) -> "Graph":
        """Return a copy where node ``v`` gains a self-loop if ``d_v < target_degree``.

        This models (in a single loop rather than ``D - d_v`` parallel loops —
        parallel self-loops would not change the *matching* behaviour since a
        self-loop can never be part of a matching with another node) the
        almost-regular construction of Section 4.5 of the paper.  The
        spectral utilities account for the weighting separately.
        """
        if target_degree < self.max_degree:
            raise GraphError(
                f"target degree {target_degree} below maximum degree {self.max_degree}"
            )
        src, dst = self._arc_arrays()
        has_loop = np.zeros(self._n, dtype=bool)
        has_loop[src[src == dst]] = True
        gains = np.flatnonzero((self._degrees < target_degree) & ~has_loop)
        out = object.__new__(Graph)
        out._finalise_from_arcs(
            self._n,
            np.concatenate([src, gains]),
            np.concatenate([dst, gains]),
            num_edges=self._num_edges + gains.size,
            num_self_loops=self._num_self_loops + gains.size,
            name=f"{self.name}+selfloops",
        )
        return out

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (used only by tests/inspection)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #

    def _csgraph(self) -> sp.csr_matrix:
        """Boolean CSR adjacency for :mod:`scipy.sparse.csgraph` routines.

        Materialises the index array, so it is **not** on the connectivity
        path any more (``connected_components``/``is_connected`` run a
        streamed union-find instead); retained for inspection and for any
        future csgraph consumer that genuinely needs a scipy matrix.
        """
        return sp.csr_matrix(
            (
                np.ones(self._store.num_arcs, dtype=np.int8),
                np.asarray(self._store.indices_array()),
                self._store.indptr,
            ),
            shape=(self._n, self._n),
        )

    def _component_roots(self) -> np.ndarray:
        """Per-node component root via union-find streamed over row blocks.

        Path-halving union-find with union-by-minimum, driven by
        ``storage.iter_row_blocks`` — the parent array is the only O(n)
        allocation and the adjacency is only ever touched one row block at a
        time, so mmap-backed graphs stay out-of-core.  Union by minimum
        means the final root of every node is the smallest node id in its
        component, which is exactly the ordering key
        :meth:`connected_components` needs.
        """
        n = self._n
        dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        parent = np.arange(n, dtype=dtype)
        indptr = self._store.indptr
        for row_start, row_stop, block in self._store.iter_row_blocks():
            rows = np.repeat(
                np.arange(row_start, row_stop, dtype=np.int64),
                np.diff(indptr[row_start : row_stop + 1]),
            )
            # Symmetric CSR stores every edge as two arcs; keeping only
            # column > row unions each edge once and drops self-loops.
            keep = block > rows
            _union_edge_batch(parent, rows[keep], np.asarray(block)[keep])
        # Full compression: point every node directly at its root.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                return parent.astype(np.int64, copy=False)
            parent = grand

    def connected_components(self) -> list[np.ndarray]:
        """Connected components as sorted arrays of node ids.

        Runs the streamed union-find of :meth:`_component_roots` (earlier
        revisions delegated to scipy's csgraph, which materialises an O(m)
        matrix and capped ``--mmap`` analysis at n ≈ 10⁶).  The return shape
        is unchanged: one sorted int64 array per component, components
        ordered by their smallest member.
        """
        if self._n == 0:  # pragma: no cover - Graph forbids n == 0
            return []
        roots = self._component_roots()
        order = np.argsort(roots, kind="stable")
        boundaries = np.flatnonzero(np.diff(roots[order])) + 1
        return [
            np.ascontiguousarray(chunk, dtype=np.int64)
            for chunk in np.split(order, boundaries)
        ]

    def is_connected(self) -> bool:
        if self._n <= 1:
            return True
        roots = self._component_roots()
        return bool((roots == roots[0]).all())

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(name={self.name!r}, n={self._n}, m={self._num_edges}, "
            f"degree range [{self.min_degree}, {self.max_degree}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        # Storage-agnostic: a dense and an mmap-backed graph with the same
        # canonical CSR contents compare equal.
        return (
            self._n == other._n
            and np.array_equal(self._store.indptr, other._store.indptr)
            and np.array_equal(self._store.indices_array(), other._store.indices_array())
        )

    def __hash__(self) -> int:
        return hash((self._n, self._num_edges, self._store.indices_array().tobytes()))
