"""Partitions of a node set and distances between them.

Theorem 1.1 of the paper states accuracy as a bound on the number of
*misclassified* nodes: the size of the optimal symmetric difference between
the output labelling and the ground-truth partition, minimised over
permutations of labels.  :func:`misclassified_nodes` computes exactly that
quantity (via a maximum-weight assignment on the cluster-overlap matrix), and
:class:`Partition` is the shared representation of both ground truth and
algorithm output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = [
    "Partition",
    "PartitionError",
    "misclassified_nodes",
    "misclassification_rate",
    "best_label_permutation",
    "confusion_matrix",
]


class PartitionError(ValueError):
    """Raised for inconsistent partition data."""


class Partition:
    """A partition of ``{0, ..., n-1}`` into labelled clusters.

    The internal representation is a dense label vector; clusters are the
    preimages of the labels.  Labels are normalised to ``0..k-1`` in order of
    first appearance so that two partitions with the same grouping but
    different raw labels compare equal.
    """

    __slots__ = ("_labels", "_k", "_sizes")

    def __init__(self, labels: Sequence[int] | np.ndarray):
        raw = np.asarray(labels, dtype=np.int64)
        if raw.ndim != 1 or raw.size == 0:
            raise PartitionError("labels must be a non-empty 1-D sequence")
        if raw.min() < 0:
            raise PartitionError("labels must be non-negative")
        # Normalise labels to 0..k-1 by order of first appearance.
        _, first_index, inverse = np.unique(raw, return_index=True, return_inverse=True)
        order = np.argsort(np.argsort(first_index))
        self._labels = order[inverse].astype(np.int64)
        self._k = int(self._labels.max()) + 1
        self._sizes = np.bincount(self._labels, minlength=self._k)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_labels(cls, labels: Sequence[int] | np.ndarray) -> "Partition":
        """Build a partition from a label vector (alias of the constructor)."""
        return cls(labels)

    @classmethod
    def from_clusters(cls, clusters: Iterable[Iterable[int]], n: int | None = None) -> "Partition":
        """Build a partition from an iterable of disjoint clusters covering ``0..n-1``."""
        cluster_list = [np.asarray(sorted(set(int(x) for x in c)), dtype=np.int64) for c in clusters]
        cluster_list = [c for c in cluster_list if c.size > 0]
        if not cluster_list:
            raise PartitionError("at least one non-empty cluster is required")
        all_nodes = np.concatenate(cluster_list)
        if np.unique(all_nodes).size != all_nodes.size:
            raise PartitionError("clusters must be pairwise disjoint")
        size = int(all_nodes.max()) + 1 if n is None else int(n)
        if all_nodes.min() < 0 or all_nodes.max() >= size:
            raise PartitionError("cluster members out of range")
        if all_nodes.size != size:
            raise PartitionError("clusters must cover every node exactly once")
        labels = np.empty(size, dtype=np.int64)
        for i, c in enumerate(cluster_list):
            labels[c] = i
        return cls(labels)

    @classmethod
    def trivial(cls, n: int) -> "Partition":
        """The one-cluster partition of ``n`` nodes."""
        return cls(np.zeros(n, dtype=np.int64))

    @classmethod
    def singletons(cls, n: int) -> "Partition":
        """The partition where every node is its own cluster."""
        return cls(np.arange(n, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self._labels.size)

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self._k

    @property
    def labels(self) -> np.ndarray:
        """Normalised label vector (read-only view)."""
        view = self._labels.view()
        view.setflags(write=False)
        return view

    @property
    def sizes(self) -> np.ndarray:
        """Cluster sizes indexed by normalised label (read-only view)."""
        view = self._sizes.view()
        view.setflags(write=False)
        return view

    def cluster(self, label: int) -> np.ndarray:
        """Members of the cluster with the given (normalised) label."""
        if not 0 <= label < self._k:
            raise PartitionError(f"label {label} out of range [0, {self._k})")
        return np.flatnonzero(self._labels == label)

    def clusters(self) -> list[np.ndarray]:
        """All clusters as arrays of node ids, indexed by normalised label."""
        return [self.cluster(c) for c in range(self._k)]

    def label_of(self, v: int) -> int:
        return int(self._labels[v])

    def min_cluster_fraction(self) -> float:
        """``min_i |S_i| / n`` — a valid β for the paper's balance assumption."""
        return float(self._sizes.min() / self.n)

    def indicator(self, label: int, *, normalised: bool = True) -> np.ndarray:
        """The (normalised) indicator vector ``χ_S`` of the given cluster.

        With ``normalised=True`` this is the paper's ``χ_S`` with entries
        ``1/|S|`` on the cluster and ``0`` elsewhere (note the paper uses the
        1/|S| normalisation, not 1/sqrt(|S|)).
        """
        chi = np.zeros(self.n, dtype=np.float64)
        members = self.cluster(label)
        chi[members] = 1.0 / members.size if normalised else 1.0
        return chi

    def indicator_matrix(self, *, normalised: bool = True) -> np.ndarray:
        """Matrix whose columns are the cluster indicator vectors."""
        return np.stack(
            [self.indicator(c, normalised=normalised) for c in range(self._k)], axis=1
        )

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:
        return hash(self._labels.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(n={self.n}, k={self.k}, sizes={self._sizes.tolist()})"


# --------------------------------------------------------------------------- #
# Partition distances
# --------------------------------------------------------------------------- #

def confusion_matrix(predicted: Partition, truth: Partition) -> np.ndarray:
    """Cluster-overlap counts: entry ``(i, j)`` is ``|predicted_i ∩ truth_j|``."""
    if predicted.n != truth.n:
        raise PartitionError("partitions refer to different node sets")
    m = np.zeros((predicted.k, truth.k), dtype=np.int64)
    np.add.at(m, (predicted.labels, truth.labels), 1)
    return m


def best_label_permutation(predicted: Partition, truth: Partition) -> dict[int, int]:
    """Injective map from predicted labels to ground-truth labels maximising overlap.

    This is the permutation σ of Theorem 1.1.  When the two partitions have a
    different number of clusters, the map is a maximum-weight matching on the
    overlap matrix (unmatched predicted labels are mapped to ``-1``).
    """
    overlap = confusion_matrix(predicted, truth)
    rows, cols = linear_sum_assignment(-overlap)
    mapping = {int(r): int(c) for r, c in zip(rows, cols)}
    for r in range(predicted.k):
        mapping.setdefault(r, -1)
    return mapping


def misclassified_nodes(predicted: Partition, truth: Partition) -> int:
    """Number of misclassified nodes under the best label permutation.

    This is exactly the quantity bounded by ``o(n)`` in Theorem 1.1(1):
    ``|⋃_i {v ∈ S_i : ℓ_v ≠ σ(i)}|`` minimised over permutations σ.
    """
    overlap = confusion_matrix(predicted, truth)
    rows, cols = linear_sum_assignment(-overlap)
    matched = int(overlap[rows, cols].sum())
    return predicted.n - matched


def misclassification_rate(predicted: Partition, truth: Partition) -> float:
    """Fraction of misclassified nodes in ``[0, 1]``."""
    return misclassified_nodes(predicted, truth) / truth.n
