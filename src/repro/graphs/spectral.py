"""Spectral quantities of the random walk matrix.

The paper's analysis is phrased in terms of the eigenvalues
``1 = λ_1 ≥ λ_2 ≥ ... ≥ λ_n ≥ -1`` of the random walk matrix ``P`` and their
orthonormal eigenvectors ``f_1, ..., f_n``.  (For a ``d``-regular graph ``P``
is symmetric so this spectral decomposition exists directly; for
almost-regular graphs we use the standard similarity transform through the
symmetric normalised adjacency ``D^{-1/2} A D^{-1/2}`` and orthonormality is
with respect to the degree weighting — for bounded degree ratio this only
changes constants, mirroring Section 4.5 of the paper.)

This module computes:

* the spectrum of ``P`` (dense for small graphs, Lanczos for the top ``k+1``
  eigenpairs on larger graphs),
* the gap quantity ``1 - λ_{k+1}`` that controls the number of rounds
  ``T = Θ(log n / (1 - λ_{k+1}))``,
* the structure parameter ``Υ = (1 - λ_{k+1}) / ρ(k)``,
* the projection matrix ``Q`` onto the span of the top ``k`` eigenvectors
  (used by Lemma 4.1), and
* mixing-time style diagnostics used in benchmark E2.

The eigensolves are **matrix-free**: above the dense threshold Lanczos runs
against :meth:`~repro.graphs.graph.Graph.normalized_adjacency_operator`,
whose matvecs stream the adjacency through the storage's row blocks — a
memory-mapped n = 10⁶ instance never materialises O(m), let alone the n × n
dense operator (8 TB at that size).  Start vectors are deterministic and
seeded (:func:`lanczos_start_vector`), so repeated eigensolves are
bit-identical and never touch numpy's global RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .conductance import k_way_expansion_of_partition
from .graph import Graph
from .partition import Partition

__all__ = [
    "SpectralDecomposition",
    "spectral_decomposition",
    "symmetric_walk_matrix",
    "lanczos_start_vector",
    "top_eigenpairs",
    "random_walk_eigenvalues",
    "spectral_gap",
    "cluster_gap",
    "gap_parameter_upsilon",
    "top_eigenvector_projection",
    "theoretical_round_count",
    "lazy_mixing_time_bound",
    "ClusterStructureReport",
    "analyse_cluster_structure",
]

# Graphs up to this many nodes use a dense symmetric eigensolver; beyond it we
# switch to Lanczos for the requested number of extreme eigenpairs.
_DENSE_LIMIT = 1500

#: Fixed seed of the deterministic Lanczos start vector.  A function of this
#: constant and ``n`` only, so every eigensolve of a same-size graph starts
#: from the same vector and repeated calls are bit-identical.
_V0_SEED = 0x5BEC7A11


@dataclass(frozen=True)
class SpectralDecomposition:
    """Eigenvalues and eigenvectors of the random walk matrix.

    Attributes
    ----------
    eigenvalues:
        Eigenvalues of ``P`` sorted in *descending* order (the paper's
        convention: ``λ_1 = 1`` first).
    eigenvectors:
        Matrix whose column ``i`` is the orthonormal eigenvector ``f_{i+1}``
        corresponding to ``eigenvalues[i]``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    @property
    def n(self) -> int:
        return self.eigenvectors.shape[0]

    @property
    def count(self) -> int:
        """How many eigenpairs were computed (may be < n for Lanczos)."""
        return int(self.eigenvalues.size)

    def lambda_(self, i: int) -> float:
        """``λ_i`` using the paper's 1-based indexing."""
        if not 1 <= i <= self.count:
            raise IndexError(f"λ_{i} not computed (have {self.count} eigenvalues)")
        return float(self.eigenvalues[i - 1])

    def f(self, i: int) -> np.ndarray:
        """Eigenvector ``f_i`` using the paper's 1-based indexing."""
        if not 1 <= i <= self.count:
            raise IndexError(f"f_{i} not computed (have {self.count} eigenvectors)")
        return self.eigenvectors[:, i - 1]

    def top_k(self, k: int) -> np.ndarray:
        """Matrix of the top ``k`` eigenvectors (columns ``f_1 .. f_k``)."""
        if k > self.count:
            raise IndexError(f"only {self.count} eigenvectors available, asked for {k}")
        return self.eigenvectors[:, :k]

    def projection_matrix(self, k: int) -> np.ndarray:
        """The projection ``Q`` onto span(f_1, ..., f_k) as a dense matrix."""
        fk = self.top_k(k)
        return fk @ fk.T


def symmetric_walk_matrix(graph: Graph) -> sp.csr_matrix:
    """``N = D^{-1/2} A D^{-1/2}`` **materialised** as a scipy CSR matrix.

    This is the in-RAM realisation of
    :meth:`~repro.graphs.graph.Graph.normalized_adjacency_operator`; the
    spectral pipeline itself only builds it below the dense threshold, but
    benchmarks (E18) use it as the materialising comparison arm.
    """
    a = graph.adjacency_matrix(sparse=True)
    d_half = sp.diags(graph._inv_sqrt_degrees())
    return sp.csr_matrix(d_half @ a @ d_half)


def lanczos_start_vector(n: int) -> np.ndarray:
    """The deterministic unit-norm Lanczos start vector for an ``n``-node graph.

    Seeded from a module constant and ``n`` alone: without an explicit
    ``v0`` ARPACK draws its start vector from numpy's *global* RNG, which
    made every spectral result for n > ``_DENSE_LIMIT`` nondeterministic —
    and perturbed unrelated seeded code that shares the global stream.
    """
    v0 = np.random.default_rng(_V0_SEED).standard_normal(n)
    return v0 / np.linalg.norm(v0)


def spectral_decomposition(
    graph: Graph, *, num: int | None = None, dense: bool | None = None
) -> SpectralDecomposition:
    """Compute eigenpairs of the random walk matrix of ``graph``.

    Parameters
    ----------
    num:
        Number of largest eigenpairs to compute.  ``None`` means all of
        them, which requires the dense solver and is therefore only
        available below the dense threshold (or with an explicit
        ``dense=True``): a full spectrum needs an n × n float64 matrix,
        ~8 TB at n = 10⁶ — the historical silent blowup this guard replaces.
    dense:
        ``None`` (default) picks automatically: dense ``eigh`` for graphs
        up to ``_DENSE_LIMIT`` nodes (or when ``num`` demands ≥ n − 1
        eigenpairs), matrix-free Lanczos otherwise.  ``True`` forces the
        materialising dense path, ``False`` forces the streamed Lanczos
        path (``num`` required) — used by parity tests and benchmarks.

    Notes
    -----
    Eigenvectors are orthonormal with respect to the Euclidean inner product
    on the *symmetrised* operator; for a regular graph they are eigenvectors
    of ``P`` itself, which is the setting of the paper's analysis.

    The Lanczos path runs against the graph's
    :meth:`~repro.graphs.graph.Graph.normalized_adjacency_operator` — the
    adjacency streams through the storage's row blocks (never materialised,
    O(block) resident for memory-mapped graphs) — with a deterministic
    seeded start vector, so results are reproducible bit for bit.
    """
    n = graph.n
    use_dense = dense
    if use_dense is None:
        use_dense = num is None or num >= n - 1 or n <= _DENSE_LIMIT
        if use_dense and n > _DENSE_LIMIT:
            wanted = "all" if num is None else f"{num}"
            raise ValueError(
                f"computing {wanted} eigenpairs of an n={n} graph requires a dense "
                f"n x n operator (~{8 * n * n / 1e9:.1f} GB); request "
                f"num <= {n - 2} eigenpairs for the matrix-free Lanczos path, "
                "or pass dense=True to force the materialisation"
            )
    if use_dense:
        dense_op = symmetric_walk_matrix(graph).toarray()
        vals, vecs = la.eigh(dense_op)
        order = np.argsort(vals)[::-1]
        vals = vals[order]
        vecs = vecs[:, order]
        if num is not None:
            vals = vals[:num]
            vecs = vecs[:, :num]
        return SpectralDecomposition(eigenvalues=vals, eigenvectors=vecs)
    if num is None:
        raise ValueError("dense=False requires num: Lanczos computes extreme eigenpairs only")
    if num > n - 2:
        # ARPACK requires k < n - 1; raising beats silently returning fewer
        # eigenpairs than asked (the auto path routes such requests dense).
        raise ValueError(
            f"Lanczos can compute at most n - 2 = {n - 2} eigenpairs of an "
            f"n={n} graph; request fewer or pass dense=True"
        )
    operator = graph.normalized_adjacency_operator()
    vals, vecs = spla.eigsh(operator, k=num, which="LA", v0=lanczos_start_vector(n))
    order = np.argsort(vals)[::-1]
    return SpectralDecomposition(eigenvalues=vals[order], eigenvectors=vecs[:, order])


def top_eigenpairs(graph: Graph, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning (eigenvalues, eigenvectors) of the top ``k``."""
    dec = spectral_decomposition(graph, num=k)
    return dec.eigenvalues[:k], dec.eigenvectors[:, :k]


def random_walk_eigenvalues(
    graph: Graph, *, num: int | None = None, dense: bool | None = None
) -> np.ndarray:
    """Eigenvalues of ``P`` in descending order."""
    return spectral_decomposition(graph, num=num, dense=dense).eigenvalues


def spectral_gap(graph: Graph) -> float:
    """The classical spectral gap ``1 - λ_2`` of the random walk matrix."""
    vals = random_walk_eigenvalues(graph, num=2)
    return float(1.0 - vals[1])


def cluster_gap(graph: Graph, k: int) -> float:
    """The quantity ``1 - λ_{k+1}`` controlling the paper's round count ``T``."""
    vals = random_walk_eigenvalues(graph, num=k + 1)
    if vals.size < k + 1:
        raise ValueError(f"graph has fewer than {k + 1} computable eigenvalues")
    return float(1.0 - vals[k])


def gap_parameter_upsilon(graph: Graph, partition: Partition) -> float:
    """The paper's structure parameter ``Υ = (1 - λ_{k+1}) / ρ(k)``.

    ``ρ(k)`` is approximated by the k-way expansion of the *given* partition
    (an upper bound on the true minimum, hence the returned Υ is a lower
    bound on the true Υ — conservative for checking the gap condition).
    """
    k = partition.k
    rho = k_way_expansion_of_partition(graph, partition)
    if rho <= 0.0:
        return float("inf")
    return cluster_gap(graph, k) / rho


def top_eigenvector_projection(graph: Graph, k: int) -> np.ndarray:
    """The projection matrix ``Q`` onto the span of ``f_1, ..., f_k``."""
    return spectral_decomposition(graph, num=k).projection_matrix(k)


def theoretical_round_count(graph: Graph, k: int, *, constant: float = 16.0) -> int:
    """The paper's round count ``T = Θ(log n / (1 - λ_{k+1}))``.

    ``constant`` is the hidden constant of the Θ; the default of 16 was
    calibrated empirically (see EXPERIMENTS.md, E2 — it absorbs the 4/d̄
    slowdown of a matching round relative to a lazy walk step) and is exposed
    so benchmarks can sweep it.
    """
    gap = cluster_gap(graph, k)
    if gap <= 0:
        raise ValueError("1 - λ_{k+1} must be positive (is the graph connected with k+1 <= n?)")
    t = constant * np.log(max(graph.n, 2)) / gap
    return max(1, int(np.ceil(t)))


def lazy_mixing_time_bound(graph: Graph, *, eps: float = 0.25) -> float:
    """Upper bound on the ε-mixing time of the lazy random walk.

    Uses the standard relaxation-time bound ``t_mix(ε) ≤ log(n/ε) / gap`` with
    the lazy spectral gap.  Benchmarks compare this global mixing time with
    the (much smaller) local round count ``T`` on well-clustered graphs to
    illustrate the paper's comparison with Kempe–McSherry.

    Only ``λ_2`` enters the bound (the second largest lazy eigenvalue in
    absolute value equals the second largest eigenvalue, because lazy
    eigenvalues are non-negative), so only two eigenpairs are requested —
    the historical ``num=None`` call forced the dense O(n²)-memory branch
    at any size, which made this bound (and the Kempe–McSherry baseline
    that calls it) unusable at the scales the rest of the stack handles.
    """
    vals = random_walk_eigenvalues(graph, num=min(graph.n, 2))
    gap = 1.0 - (1.0 + float(vals[1])) / 2.0 if vals.size > 1 else 1.0
    if gap <= 0:
        return float("inf")
    return float(np.log(graph.n / eps) / gap)


@dataclass(frozen=True)
class ClusterStructureReport:
    """Summary of the spectral cluster structure of a graph.

    Produced by :func:`analyse_cluster_structure` and consumed by the theory
    module (`repro.core.theory`) and by the experiment harness.
    """

    n: int
    k: int
    lambda_k: float
    lambda_k_plus_1: float
    rho_k: float
    upsilon: float
    beta: float
    rounds_T: int
    gap_condition_rhs: float

    @property
    def gap(self) -> float:
        """``1 - λ_{k+1}``."""
        return 1.0 - self.lambda_k_plus_1

    @property
    def satisfies_gap_condition(self) -> bool:
        """Whether Υ exceeds the (constant-free) right-hand side of condition (2)."""
        return self.upsilon > self.gap_condition_rhs

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "k": self.k,
            "lambda_k": self.lambda_k,
            "lambda_k_plus_1": self.lambda_k_plus_1,
            "rho_k": self.rho_k,
            "upsilon": self.upsilon,
            "beta": self.beta,
            "rounds_T": self.rounds_T,
            "gap_condition_rhs": self.gap_condition_rhs,
            "satisfies_gap_condition": self.satisfies_gap_condition,
        }


def analyse_cluster_structure(
    graph: Graph, partition: Partition, *, round_constant: float = 16.0
) -> ClusterStructureReport:
    """Compute every spectral/structural quantity the paper's analysis refers to.

    The ``gap_condition_rhs`` field is the right-hand side of condition (2)
    with the ω(·) constant set to one:
    ``k^5 · (1/β³) · log⁴(1/β) · log n``.
    """
    k = partition.k
    vals = random_walk_eigenvalues(graph, num=min(graph.n, k + 1))
    lambda_k = float(vals[k - 1]) if vals.size >= k else float("nan")
    lambda_k1 = float(vals[k]) if vals.size >= k + 1 else float("nan")
    rho = k_way_expansion_of_partition(graph, partition)
    beta = partition.min_cluster_fraction()
    upsilon = float("inf") if rho == 0 else (1.0 - lambda_k1) / rho
    log_term = np.log(1.0 / beta) if beta < 1.0 else 1.0
    rhs = (k ** 5) * (1.0 / beta ** 3) * (log_term ** 4) * np.log(max(graph.n, 2))
    gap = 1.0 - lambda_k1
    rounds = max(1, int(np.ceil(round_constant * np.log(max(graph.n, 2)) / gap))) if gap > 0 else 0
    return ClusterStructureReport(
        n=graph.n,
        k=k,
        lambda_k=lambda_k,
        lambda_k_plus_1=lambda_k1,
        rho_k=rho,
        upsilon=upsilon,
        beta=beta,
        rounds_T=rounds,
        gap_condition_rhs=float(rhs),
    )
