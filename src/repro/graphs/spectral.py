"""Spectral quantities of the random walk matrix.

The paper's analysis is phrased in terms of the eigenvalues
``1 = λ_1 ≥ λ_2 ≥ ... ≥ λ_n ≥ -1`` of the random walk matrix ``P`` and their
orthonormal eigenvectors ``f_1, ..., f_n``.  (For a ``d``-regular graph ``P``
is symmetric so this spectral decomposition exists directly; for
almost-regular graphs we use the standard similarity transform through the
symmetric normalised adjacency ``D^{-1/2} A D^{-1/2}`` and orthonormality is
with respect to the degree weighting — for bounded degree ratio this only
changes constants, mirroring Section 4.5 of the paper.)

This module computes:

* the spectrum of ``P`` (dense for small graphs, Lanczos for the top ``k+1``
  eigenpairs on larger graphs),
* the gap quantity ``1 - λ_{k+1}`` that controls the number of rounds
  ``T = Θ(log n / (1 - λ_{k+1}))``,
* the structure parameter ``Υ = (1 - λ_{k+1}) / ρ(k)``,
* the projection matrix ``Q`` onto the span of the top ``k`` eigenvectors
  (used by Lemma 4.1), and
* mixing-time style diagnostics used in benchmark E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .conductance import k_way_expansion_of_partition
from .graph import Graph
from .partition import Partition

__all__ = [
    "SpectralDecomposition",
    "spectral_decomposition",
    "top_eigenpairs",
    "random_walk_eigenvalues",
    "spectral_gap",
    "cluster_gap",
    "gap_parameter_upsilon",
    "top_eigenvector_projection",
    "theoretical_round_count",
    "lazy_mixing_time_bound",
    "ClusterStructureReport",
    "analyse_cluster_structure",
]

# Graphs up to this many nodes use a dense symmetric eigensolver; beyond it we
# switch to Lanczos for the requested number of extreme eigenpairs.
_DENSE_LIMIT = 1500


@dataclass(frozen=True)
class SpectralDecomposition:
    """Eigenvalues and eigenvectors of the random walk matrix.

    Attributes
    ----------
    eigenvalues:
        Eigenvalues of ``P`` sorted in *descending* order (the paper's
        convention: ``λ_1 = 1`` first).
    eigenvectors:
        Matrix whose column ``i`` is the orthonormal eigenvector ``f_{i+1}``
        corresponding to ``eigenvalues[i]``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    @property
    def n(self) -> int:
        return self.eigenvectors.shape[0]

    @property
    def count(self) -> int:
        """How many eigenpairs were computed (may be < n for Lanczos)."""
        return int(self.eigenvalues.size)

    def lambda_(self, i: int) -> float:
        """``λ_i`` using the paper's 1-based indexing."""
        if not 1 <= i <= self.count:
            raise IndexError(f"λ_{i} not computed (have {self.count} eigenvalues)")
        return float(self.eigenvalues[i - 1])

    def f(self, i: int) -> np.ndarray:
        """Eigenvector ``f_i`` using the paper's 1-based indexing."""
        if not 1 <= i <= self.count:
            raise IndexError(f"f_{i} not computed (have {self.count} eigenvectors)")
        return self.eigenvectors[:, i - 1]

    def top_k(self, k: int) -> np.ndarray:
        """Matrix of the top ``k`` eigenvectors (columns ``f_1 .. f_k``)."""
        if k > self.count:
            raise IndexError(f"only {self.count} eigenvectors available, asked for {k}")
        return self.eigenvectors[:, :k]

    def projection_matrix(self, k: int) -> np.ndarray:
        """The projection ``Q`` onto span(f_1, ..., f_k) as a dense matrix."""
        fk = self.top_k(k)
        return fk @ fk.T


def _symmetric_walk_operator(graph: Graph) -> sp.csr_matrix:
    """``N = D^{-1/2} A D^{-1/2}``, similar to ``P`` and symmetric."""
    a = graph.adjacency_matrix(sparse=True)
    deg = graph.degrees.astype(np.float64)
    inv_sqrt = np.zeros_like(deg)
    nz = deg > 0
    inv_sqrt[nz] = 1.0 / np.sqrt(deg[nz])
    d_half = sp.diags(inv_sqrt)
    return sp.csr_matrix(d_half @ a @ d_half)


def spectral_decomposition(graph: Graph, *, num: int | None = None) -> SpectralDecomposition:
    """Compute eigenpairs of the random walk matrix of ``graph``.

    Parameters
    ----------
    num:
        Number of largest eigenpairs to compute.  ``None`` means all of them
        (always the case for graphs below the dense-solver threshold).

    Notes
    -----
    Eigenvectors are orthonormal with respect to the Euclidean inner product
    on the *symmetrised* operator; for a regular graph they are eigenvectors
    of ``P`` itself, which is the setting of the paper's analysis.
    """
    n = graph.n
    sym = _symmetric_walk_operator(graph)
    if num is None or num >= n - 1 or n <= _DENSE_LIMIT:
        dense = sym.toarray()
        vals, vecs = la.eigh(dense)
        order = np.argsort(vals)[::-1]
        vals = vals[order]
        vecs = vecs[:, order]
        if num is not None:
            vals = vals[:num]
            vecs = vecs[:, :num]
        return SpectralDecomposition(eigenvalues=vals, eigenvectors=vecs)
    k = min(num, n - 2)
    vals, vecs = spla.eigsh(sym, k=k, which="LA")
    order = np.argsort(vals)[::-1]
    return SpectralDecomposition(eigenvalues=vals[order], eigenvectors=vecs[:, order])


def top_eigenpairs(graph: Graph, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning (eigenvalues, eigenvectors) of the top ``k``."""
    dec = spectral_decomposition(graph, num=k)
    return dec.eigenvalues[:k], dec.eigenvectors[:, :k]


def random_walk_eigenvalues(graph: Graph, *, num: int | None = None) -> np.ndarray:
    """Eigenvalues of ``P`` in descending order."""
    return spectral_decomposition(graph, num=num).eigenvalues


def spectral_gap(graph: Graph) -> float:
    """The classical spectral gap ``1 - λ_2`` of the random walk matrix."""
    vals = random_walk_eigenvalues(graph, num=2)
    return float(1.0 - vals[1])


def cluster_gap(graph: Graph, k: int) -> float:
    """The quantity ``1 - λ_{k+1}`` controlling the paper's round count ``T``."""
    vals = random_walk_eigenvalues(graph, num=k + 1)
    if vals.size < k + 1:
        raise ValueError(f"graph has fewer than {k + 1} computable eigenvalues")
    return float(1.0 - vals[k])


def gap_parameter_upsilon(graph: Graph, partition: Partition) -> float:
    """The paper's structure parameter ``Υ = (1 - λ_{k+1}) / ρ(k)``.

    ``ρ(k)`` is approximated by the k-way expansion of the *given* partition
    (an upper bound on the true minimum, hence the returned Υ is a lower
    bound on the true Υ — conservative for checking the gap condition).
    """
    k = partition.k
    rho = k_way_expansion_of_partition(graph, partition)
    if rho <= 0.0:
        return float("inf")
    return cluster_gap(graph, k) / rho


def top_eigenvector_projection(graph: Graph, k: int) -> np.ndarray:
    """The projection matrix ``Q`` onto the span of ``f_1, ..., f_k``."""
    return spectral_decomposition(graph, num=k).projection_matrix(k)


def theoretical_round_count(graph: Graph, k: int, *, constant: float = 16.0) -> int:
    """The paper's round count ``T = Θ(log n / (1 - λ_{k+1}))``.

    ``constant`` is the hidden constant of the Θ; the default of 16 was
    calibrated empirically (see EXPERIMENTS.md, E2 — it absorbs the 4/d̄
    slowdown of a matching round relative to a lazy walk step) and is exposed
    so benchmarks can sweep it.
    """
    gap = cluster_gap(graph, k)
    if gap <= 0:
        raise ValueError("1 - λ_{k+1} must be positive (is the graph connected with k+1 <= n?)")
    t = constant * np.log(max(graph.n, 2)) / gap
    return max(1, int(np.ceil(t)))


def lazy_mixing_time_bound(graph: Graph, *, eps: float = 0.25) -> float:
    """Upper bound on the ε-mixing time of the lazy random walk.

    Uses the standard relaxation-time bound ``t_mix(ε) ≤ log(n/ε) / gap`` with
    the lazy spectral gap.  Benchmarks compare this global mixing time with
    the (much smaller) local round count ``T`` on well-clustered graphs to
    illustrate the paper's comparison with Kempe–McSherry.
    """
    vals = random_walk_eigenvalues(graph)
    lazy_vals = (1.0 + vals) / 2.0
    # The second largest lazy eigenvalue in absolute value equals the second
    # largest eigenvalue because lazy eigenvalues are non-negative.
    gap = 1.0 - float(lazy_vals[1]) if lazy_vals.size > 1 else 1.0
    if gap <= 0:
        return float("inf")
    return float(np.log(graph.n / eps) / gap)


@dataclass(frozen=True)
class ClusterStructureReport:
    """Summary of the spectral cluster structure of a graph.

    Produced by :func:`analyse_cluster_structure` and consumed by the theory
    module (`repro.core.theory`) and by the experiment harness.
    """

    n: int
    k: int
    lambda_k: float
    lambda_k_plus_1: float
    rho_k: float
    upsilon: float
    beta: float
    rounds_T: int
    gap_condition_rhs: float

    @property
    def gap(self) -> float:
        """``1 - λ_{k+1}``."""
        return 1.0 - self.lambda_k_plus_1

    @property
    def satisfies_gap_condition(self) -> bool:
        """Whether Υ exceeds the (constant-free) right-hand side of condition (2)."""
        return self.upsilon > self.gap_condition_rhs

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "k": self.k,
            "lambda_k": self.lambda_k,
            "lambda_k_plus_1": self.lambda_k_plus_1,
            "rho_k": self.rho_k,
            "upsilon": self.upsilon,
            "beta": self.beta,
            "rounds_T": self.rounds_T,
            "gap_condition_rhs": self.gap_condition_rhs,
            "satisfies_gap_condition": self.satisfies_gap_condition,
        }


def analyse_cluster_structure(
    graph: Graph, partition: Partition, *, round_constant: float = 16.0
) -> ClusterStructureReport:
    """Compute every spectral/structural quantity the paper's analysis refers to.

    The ``gap_condition_rhs`` field is the right-hand side of condition (2)
    with the ω(·) constant set to one:
    ``k^5 · (1/β³) · log⁴(1/β) · log n``.
    """
    k = partition.k
    vals = random_walk_eigenvalues(graph, num=min(graph.n, k + 1))
    lambda_k = float(vals[k - 1]) if vals.size >= k else float("nan")
    lambda_k1 = float(vals[k]) if vals.size >= k + 1 else float("nan")
    rho = k_way_expansion_of_partition(graph, partition)
    beta = partition.min_cluster_fraction()
    upsilon = float("inf") if rho == 0 else (1.0 - lambda_k1) / rho
    log_term = np.log(1.0 / beta) if beta < 1.0 else 1.0
    rhs = (k ** 5) * (1.0 / beta ** 3) * (log_term ** 4) * np.log(max(graph.n, 2))
    gap = 1.0 - lambda_k1
    rounds = max(1, int(np.ceil(round_constant * np.log(max(graph.n, 2)) / gap))) if gap > 0 else 0
    return ClusterStructureReport(
        n=graph.n,
        k=k,
        lambda_k=lambda_k,
        lambda_k_plus_1=lambda_k1,
        rho_k=rho,
        upsilon=upsilon,
        beta=beta,
        rounds_T=rounds,
        gap_condition_rhs=float(rhs),
    )
