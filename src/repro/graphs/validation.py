"""Validation helpers for clustered-graph instances.

Benchmarks only make sense when the generated instance really satisfies the
assumptions of Theorem 1.1 (connectivity, near-regularity, cluster balance,
a healthy gap Υ).  :func:`validate_instance` checks these assumptions and
returns a structured report; the experiment harness calls it before running
an algorithm so that "the algorithm failed" and "the instance was bad" can be
told apart in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .generators import ClusteredGraph
from .spectral import analyse_cluster_structure

__all__ = ["ValidationIssue", "InstanceReport", "validate_instance"]


@dataclass(frozen=True)
class ValidationIssue:
    """A single validation finding."""

    severity: str  # "error" | "warning"
    message: str


@dataclass(frozen=True)
class InstanceReport:
    """Outcome of validating a clustered-graph instance."""

    issues: tuple[ValidationIssue, ...] = field(default_factory=tuple)
    structure: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff there are no error-severity issues."""
        return not any(i.severity == "error" for i in self.issues)

    @property
    def warnings(self) -> list[str]:
        return [i.message for i in self.issues if i.severity == "warning"]

    @property
    def errors(self) -> list[str]:
        return [i.message for i in self.issues if i.severity == "error"]


def validate_instance(
    instance: ClusteredGraph,
    *,
    max_degree_ratio: float = 4.0,
    min_upsilon: float = 1.0,
    check_spectral: bool = True,
) -> InstanceReport:
    """Check that an instance satisfies the paper's structural assumptions.

    Parameters
    ----------
    max_degree_ratio:
        Largest tolerated ``Δ/δ`` (the paper's almost-regular condition asks
        for a constant bound; 4 is the default used in our experiments).
    min_upsilon:
        Smallest tolerated gap Υ.  Theorem 1.1 needs Υ = ω(...); for finite
        instances we simply require Υ above this threshold and record the
        measured value in the report.
    check_spectral:
        Allow skipping the eigenvalue computation for very large instances.
    """
    graph = instance.graph
    partition = instance.partition
    issues: list[ValidationIssue] = []

    if graph.n != partition.n:
        issues.append(ValidationIssue("error", "graph and partition sizes differ"))
        return InstanceReport(issues=tuple(issues))

    if not graph.is_connected():
        issues.append(ValidationIssue("error", "graph is not connected"))

    if graph.min_degree == 0:
        issues.append(ValidationIssue("error", "graph has isolated nodes"))
    else:
        ratio = graph.degree_ratio()
        if ratio > max_degree_ratio:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"degree ratio Δ/δ = {ratio:.2f} exceeds {max_degree_ratio} "
                    "(outside the paper's almost-regular assumption)",
                )
            )

    beta = partition.min_cluster_fraction()
    if beta * partition.k < 0.5:
        issues.append(
            ValidationIssue(
                "warning",
                f"clusters are unbalanced: min |S_i|/n = {beta:.3f} "
                f"vs 1/k = {1.0 / partition.k:.3f}",
            )
        )

    structure: dict = {}
    if check_spectral:
        report = analyse_cluster_structure(graph, partition)
        structure = report.as_dict()
        if report.gap <= 0:
            issues.append(ValidationIssue("error", "1 - λ_{k+1} is not positive"))
        elif report.upsilon < min_upsilon:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"gap parameter Υ = {report.upsilon:.2f} below threshold {min_upsilon}",
                )
            )

    return InstanceReport(issues=tuple(issues), structure=structure)
