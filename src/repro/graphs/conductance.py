"""Conductance, volume and k-way expansion.

Definitions follow Section 1.1 of the paper:

* ``vol(S)`` is the number of edges with at least one endpoint in ``S``
  (note: *not* the sum of degrees; the two differ by the number of internal
  edges — the paper's choice makes ``ϕ_G(S) ≤ 1`` automatic),
* ``ϕ_G(S) = |E(S, V\\S)| / vol(S)``,
* ``ρ(k) = min over k-way partitions of max_i ϕ_G(A_i)`` (coNP-hard exactly;
  we expose both the value on a *given* partition, which upper-bounds ρ(k),
  and a greedy local-search heuristic that tries to improve it).

These quantities feed the structure parameter ``Υ = (1 - λ_{k+1})/ρ(k)``.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph
from .partition import Partition

__all__ = [
    "cut_size",
    "volume",
    "degree_volume",
    "conductance",
    "inner_conductance",
    "k_way_expansion_of_partition",
    "cluster_conductances",
    "normalized_cut",
    "sweep_cut",
]


def _membership_mask(graph: Graph, nodes) -> np.ndarray:
    mask = np.zeros(graph.n, dtype=bool)
    idx = np.asarray(list(nodes), dtype=np.int64)
    if idx.size:
        if idx.min() < 0 or idx.max() >= graph.n:
            raise ValueError("node index out of range")
        mask[idx] = True
    return mask


def cut_size(graph: Graph, nodes) -> int:
    """``|E(S, V \\ S)|`` — the number of edges leaving the set ``S``."""
    mask = _membership_mask(graph, nodes)
    edges = graph.edge_array()
    u_in = mask[edges[:, 0]]
    v_in = mask[edges[:, 1]]
    return int(np.count_nonzero(u_in != v_in))


def volume(graph: Graph, nodes) -> int:
    """``vol(S)``: the number of edges with at least one endpoint in ``S``.

    This is the paper's definition (Section 1.1).  It equals
    ``(sum of degrees in S) - (number of internal edges of S)``.
    """
    mask = _membership_mask(graph, nodes)
    edges = graph.edge_array()
    u_in = mask[edges[:, 0]]
    v_in = mask[edges[:, 1]]
    return int(np.count_nonzero(u_in | v_in))


def degree_volume(graph: Graph, nodes) -> int:
    """The more common volume ``sum_{v in S} d_v`` (used by some baselines)."""
    mask = _membership_mask(graph, nodes)
    return int(graph.degrees[mask].sum())


def conductance(graph: Graph, nodes) -> float:
    """``ϕ_G(S) = |E(S, V\\S)| / vol(S)`` per the paper's definition.

    Returns 0.0 for the full node set (no outgoing edges) and raises for an
    empty set or a set with zero volume.
    """
    mask = _membership_mask(graph, nodes)
    if not mask.any():
        raise ValueError("conductance of the empty set is undefined")
    edges = graph.edge_array()
    u_in = mask[edges[:, 0]]
    v_in = mask[edges[:, 1]]
    cut = int(np.count_nonzero(u_in != v_in))
    vol = int(np.count_nonzero(u_in | v_in))
    if vol == 0:
        raise ValueError("conductance undefined for a set with zero volume")
    return cut / vol


def inner_conductance(graph: Graph, nodes) -> float:
    """Conductance of the subgraph induced by ``nodes`` (its own worst cut).

    Used to verify that generated clusters really are expanders, in the
    spirit of the inner/outer-conductance formulation of Oveis Gharan and
    Trevisan discussed in the paper's related work.  Computed by a spectral
    (Cheeger) *lower bound* ``(1 - λ_2)/2`` on the induced subgraph, which is
    cheap and sufficient for validation purposes.
    """
    from .spectral import random_walk_eigenvalues  # local import to avoid a cycle

    idx = np.asarray(sorted(set(int(x) for x in nodes)), dtype=np.int64)
    if idx.size < 2:
        return 1.0
    sub = graph.induced_subgraph(idx)
    if sub.min_degree == 0:
        return 0.0
    vals = random_walk_eigenvalues(sub, num=2)
    return float((1.0 - vals[1]) / 2.0)


def cluster_conductances(graph: Graph, partition: Partition) -> np.ndarray:
    """``ϕ_G(S_i)`` for every cluster of the partition."""
    return np.asarray(
        [conductance(graph, partition.cluster(c)) for c in range(partition.k)],
        dtype=np.float64,
    )


def k_way_expansion_of_partition(graph: Graph, partition: Partition) -> float:
    """``max_i ϕ_G(S_i)`` for the given partition.

    Evaluating this on the ground-truth partition of a generated graph gives
    an upper bound on the true k-way expansion constant ``ρ(k)``.
    """
    if partition.k == 1:
        return 0.0
    return float(cluster_conductances(graph, partition).max())


def normalized_cut(graph: Graph, partition: Partition) -> float:
    """The normalised-cut objective ``sum_i cut(S_i)/vol(S_i)`` (baseline metric)."""
    total = 0.0
    for c in range(partition.k):
        members = partition.cluster(c)
        total += conductance(graph, members)
    return total


def sweep_cut(graph: Graph, score: np.ndarray, *, max_size: int | None = None) -> tuple[np.ndarray, float]:
    """Best conductance prefix of the nodes sorted by ``score`` (descending).

    This is the classical "sweep" rounding used by spectral and local
    clustering baselines (Spielman–Teng / PageRank–Nibble): sort the nodes by
    the score vector and return the prefix set with the smallest conductance.

    Returns
    -------
    (set, phi):
        The best prefix as an array of node ids, and its conductance.
    """
    score = np.asarray(score, dtype=np.float64)
    if score.shape != (graph.n,):
        raise ValueError("score vector must have one entry per node")
    order = np.argsort(-score, kind="stable")
    limit = graph.n - 1 if max_size is None else min(max_size, graph.n - 1)

    edges = graph.edge_array()
    position = np.empty(graph.n, dtype=np.int64)
    position[order] = np.arange(graph.n)
    # For a prefix of size t (positions 0..t-1): an edge is cut iff exactly one
    # endpoint has position < t; it touches the prefix iff min position < t.
    pos_u = position[edges[:, 0]]
    pos_v = position[edges[:, 1]]
    lo = np.minimum(pos_u, pos_v)
    hi = np.maximum(pos_u, pos_v)
    best_phi = np.inf
    best_size = 1
    # Vectorised sweep: for each prefix size t, cut(t) = #{edges: lo < t <= hi},
    # vol(t) = #{edges: lo < t}.  Build them with cumulative histograms.
    lo_counts = np.bincount(lo, minlength=graph.n + 1)
    hi_counts = np.bincount(hi, minlength=graph.n + 1)
    touching = np.cumsum(lo_counts)           # touching[t-1] = #{edges: lo <= t-1} = vol(prefix t)
    internal = np.cumsum(hi_counts)           # internal[t-1] = #{edges: hi <= t-1}
    for t in range(1, limit + 1):
        vol = touching[t - 1]
        cut = vol - internal[t - 1]
        if vol == 0:
            continue
        phi = cut / vol
        if phi < best_phi:
            best_phi = phi
            best_size = t
    return order[:best_size].copy(), float(best_phi)
