"""Conductance, volume and k-way expansion — streamed over storage row blocks.

Definitions follow Section 1.1 of the paper:

* ``vol(S)`` is the number of edges with at least one endpoint in ``S``
  (note: *not* the sum of degrees; the two differ by the number of internal
  edges — the paper's choice makes ``ϕ_G(S) ≤ 1`` automatic),
* ``ϕ_G(S) = |E(S, V\\S)| / vol(S)``,
* ``ρ(k) = min over k-way partitions of max_i ϕ_G(A_i)`` (coNP-hard exactly;
  we expose both the value on a *given* partition, which upper-bounds ρ(k),
  and a greedy local-search heuristic that tries to improve it).

These quantities feed the structure parameter ``Υ = (1 - λ_{k+1})/ρ(k)``.

Every function here is driven by
:meth:`~repro.graphs.store.CSRStorage.iter_row_blocks`, never by
``graph.edge_array()``: the arc counts that define cuts and volumes are
integers accumulated block by block, so the values are **identical** for
every block size and every storage backend (dense or memory-mapped), and a
sharded n = 10⁷ instance is scored with an O(block + n) resident set instead
of a materialised O(m) edge array.  The workhorse is
:func:`partition_cut_metrics`, which computes the cut, volume and internal
degree of *all* clusters of a partition in one O(m + k) sweep — replacing
the per-cluster O(k·m) loop the evaluation layer used to pay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph
from .partition import Partition

__all__ = [
    "ClusterCutMetrics",
    "partition_cut_metrics",
    "cut_size",
    "volume",
    "degree_volume",
    "conductance",
    "inner_conductance",
    "k_way_expansion_of_partition",
    "cluster_conductances",
    "normalized_cut",
    "sweep_cut",
]


def _membership_mask(graph: Graph, nodes) -> np.ndarray:
    mask = np.zeros(graph.n, dtype=bool)
    idx = np.asarray(list(nodes), dtype=np.int64)
    if idx.size:
        if idx.min() < 0 or idx.max() >= graph.n:
            raise ValueError("node index out of range")
        mask[idx] = True
    return mask


def _set_arc_counts(
    graph: Graph, mask: np.ndarray, *, block_size: int | None = None
) -> tuple[int, int, int]:
    """``(cut_arcs, internal_nonloop_arcs, loops_inside)`` of a node set.

    One streamed pass over the storage row blocks.  Every non-loop edge
    appears as two arcs, so ``cut_arcs`` and ``internal_nonloop_arcs`` are
    even and halving them recovers exact edge counts; a self-loop appears as
    one arc with equal endpoints.
    """
    storage = graph.storage
    indptr = storage.indptr
    cut = internal = loops = 0
    for r0, r1, block in storage.iter_row_blocks(block_size):
        if block.size == 0:
            continue
        counts = np.diff(indptr[r0 : r1 + 1])
        u_in = np.repeat(mask[r0:r1], counts)
        v_in = mask[block]
        cut += int(np.count_nonzero(u_in != v_in))
        both = u_in & v_in
        if np.any(both):
            rows = np.repeat(np.arange(r0, r1, dtype=np.int64), counts)
            loop = rows == block
            loops += int(np.count_nonzero(both & loop))
            internal += int(np.count_nonzero(both & ~loop))
    return cut, internal, loops


def cut_size(graph: Graph, nodes, *, block_size: int | None = None) -> int:
    """``|E(S, V \\ S)|`` — the number of edges leaving the set ``S``."""
    mask = _membership_mask(graph, nodes)
    cut_arcs, _, _ = _set_arc_counts(graph, mask, block_size=block_size)
    return cut_arcs // 2


def volume(graph: Graph, nodes, *, block_size: int | None = None) -> int:
    """``vol(S)``: the number of edges with at least one endpoint in ``S``.

    This is the paper's definition (Section 1.1).  It equals
    ``(sum of degrees in S) - (number of internal non-loop edges of S)``.
    """
    mask = _membership_mask(graph, nodes)
    _, internal_arcs, _ = _set_arc_counts(graph, mask, block_size=block_size)
    return int(graph.degrees[mask].sum()) - internal_arcs // 2


def degree_volume(graph: Graph, nodes) -> int:
    """The more common volume ``sum_{v in S} d_v`` (used by some baselines)."""
    mask = _membership_mask(graph, nodes)
    return int(graph.degrees[mask].sum())


def conductance(graph: Graph, nodes, *, block_size: int | None = None) -> float:
    """``ϕ_G(S) = |E(S, V\\S)| / vol(S)`` per the paper's definition.

    Returns 0.0 for the full node set (no outgoing edges) and raises for an
    empty set or a set with zero volume.
    """
    mask = _membership_mask(graph, nodes)
    if not mask.any():
        raise ValueError("conductance of the empty set is undefined")
    cut_arcs, internal_arcs, _ = _set_arc_counts(graph, mask, block_size=block_size)
    cut = cut_arcs // 2
    vol = int(graph.degrees[mask].sum()) - internal_arcs // 2
    if vol == 0:
        raise ValueError("conductance undefined for a set with zero volume")
    return cut / vol


def inner_conductance(graph: Graph, nodes) -> float:
    """Conductance of the subgraph induced by ``nodes`` (its own worst cut).

    Used to verify that generated clusters really are expanders, in the
    spirit of the inner/outer-conductance formulation of Oveis Gharan and
    Trevisan discussed in the paper's related work.  Computed by a spectral
    (Cheeger) *lower bound* ``(1 - λ_2)/2`` on the induced subgraph, which is
    cheap and sufficient for validation purposes.
    """
    from .spectral import random_walk_eigenvalues  # local import to avoid a cycle

    idx = np.asarray(sorted(set(int(x) for x in nodes)), dtype=np.int64)
    if idx.size < 2:
        return 1.0
    sub = graph.induced_subgraph(idx)
    if sub.min_degree == 0:
        return 0.0
    vals = random_walk_eigenvalues(sub, num=2)
    return float((1.0 - vals[1]) / 2.0)


@dataclass(frozen=True)
class ClusterCutMetrics:
    """Cut/volume structure of *every* cluster of a partition, from one sweep.

    All fields are exact ``(k,)`` int64 arrays; the derived conductances are
    therefore bit-identical across storage backends and block sizes.  Arc
    conventions: a non-loop edge internal to a cluster contributes **two**
    ``internal_arcs`` (one per direction); a cut edge contributes one
    ``cut_arcs`` entry to each of the two clusters it joins; a self-loop
    contributes one ``loop_arcs`` entry and one degree unit.
    """

    degree_volumes: np.ndarray  #: per-cluster ``sum_{v in S} d_v``
    cut_arcs: np.ndarray  #: per-cluster ``|E(S, V \ S)|``
    internal_arcs: np.ndarray  #: per-cluster non-loop internal arcs (2·edges)
    loop_arcs: np.ndarray  #: per-cluster self-loops

    @property
    def k(self) -> int:
        return int(self.degree_volumes.size)

    @property
    def cuts(self) -> np.ndarray:
        """``cut(S_i)`` — cut edges per cluster (cut arcs already count each once)."""
        return self.cut_arcs

    @property
    def volumes(self) -> np.ndarray:
        """The paper's ``vol(S_i)``: edges with at least one endpoint inside."""
        return self.degree_volumes - self.internal_arcs // 2

    @property
    def internal_edges(self) -> np.ndarray:
        """Non-loop edges with both endpoints inside each cluster."""
        return self.internal_arcs // 2

    @property
    def conductances(self) -> np.ndarray:
        """``ϕ_G(S_i)`` for every cluster; raises on a zero-volume cluster."""
        vols = self.volumes
        if np.any(vols == 0):
            raise ValueError("conductance undefined for a set with zero volume")
        return self.cuts.astype(np.float64) / vols.astype(np.float64)


def partition_cut_metrics(
    graph: Graph,
    partition: Partition | np.ndarray,
    *,
    block_size: int | None = None,
) -> ClusterCutMetrics:
    """Cut/volume/internal-degree of all clusters in one O(m + k) sweep.

    The streamed replacement for scoring a partition cluster by cluster:
    one pass over :meth:`~repro.graphs.store.CSRStorage.iter_row_blocks`
    bincounts, per block, the arcs whose endpoints disagree on their label
    (cut arcs), agree off the diagonal (internal arcs) and sit on it
    (self-loops); per-cluster degree sums are one O(n) scatter-add.  The
    resident set is O(block + n + k), so memory-mapped instances are scored
    without materialising the edge array, and every count is an integer, so
    the result is identical for every ``block_size`` and storage backend.

    ``partition`` may be a :class:`~repro.graphs.partition.Partition` or a
    raw label array (any non-negative integer labelling; cluster ``c``'s row
    in the result corresponds to label value ``c``).
    """
    labels = (
        partition.labels
        if isinstance(partition, Partition)
        else np.asarray(partition, dtype=np.int64)
    )
    if labels.shape != (graph.n,):
        raise ValueError(
            f"partition labels {labels.shape} do not match graph with n={graph.n}"
        )
    if labels.size and int(labels.min()) < 0:
        raise ValueError("partition labels must be non-negative")
    k = int(labels.max()) + 1 if labels.size else 0
    storage = graph.storage
    indptr = storage.indptr
    cut = np.zeros(k, dtype=np.int64)
    internal = np.zeros(k, dtype=np.int64)
    loops = np.zeros(k, dtype=np.int64)
    for r0, r1, block in storage.iter_row_blocks(block_size):
        if block.size == 0:
            continue
        counts = np.diff(indptr[r0 : r1 + 1])
        lu = np.repeat(labels[r0:r1], counts)
        lv = labels[block]
        mismatch = lu != lv
        cut += np.bincount(lu[mismatch], minlength=k)
        same = lu[~mismatch]
        rows = np.repeat(np.arange(r0, r1, dtype=np.int64), counts)
        loop = (rows == block)[~mismatch]
        internal += np.bincount(same[~loop], minlength=k)
        loops += np.bincount(same[loop], minlength=k)
    degree_volumes = np.zeros(k, dtype=np.int64)
    np.add.at(degree_volumes, labels, graph.degrees)
    return ClusterCutMetrics(
        degree_volumes=degree_volumes,
        cut_arcs=cut,
        internal_arcs=internal,
        loop_arcs=loops,
    )


def cluster_conductances(
    graph: Graph, partition: Partition, *, block_size: int | None = None
) -> np.ndarray:
    """``ϕ_G(S_i)`` for every cluster of the partition — one streamed sweep.

    Replaces the per-cluster loop (k membership masks, k passes over the
    edges — O(k·m)) with a single :func:`partition_cut_metrics` pass; the
    values are identical, cluster by cluster, to calling
    :func:`conductance` on each member set.
    """
    return partition_cut_metrics(graph, partition, block_size=block_size).conductances


def k_way_expansion_of_partition(
    graph: Graph, partition: Partition, *, block_size: int | None = None
) -> float:
    """``max_i ϕ_G(S_i)`` for the given partition.

    Evaluating this on the ground-truth partition of a generated graph gives
    an upper bound on the true k-way expansion constant ``ρ(k)``.
    """
    if partition.k == 1:
        return 0.0
    return float(cluster_conductances(graph, partition, block_size=block_size).max())


def normalized_cut(
    graph: Graph, partition: Partition, *, block_size: int | None = None
) -> float:
    """The normalised-cut objective ``sum_i cut(S_i)/vol(S_i)`` (baseline metric)."""
    phis = cluster_conductances(graph, partition, block_size=block_size)
    # Sequential accumulation, exactly as the historical per-cluster loop
    # summed its Python floats (np.sum's pairwise reduction could differ in
    # the last bit).
    total = 0.0
    for phi in phis:
        total += float(phi)
    return total


def sweep_cut(
    graph: Graph,
    score: np.ndarray,
    *,
    max_size: int | None = None,
    block_size: int | None = None,
) -> tuple[np.ndarray, float]:
    """Best conductance prefix of the nodes sorted by ``score`` (descending).

    This is the classical "sweep" rounding used by spectral and local
    clustering baselines (Spielman–Teng / PageRank–Nibble): sort the nodes by
    the score vector and return the prefix set with the smallest conductance.

    The per-prefix cut and volume come from two cumulative histograms over
    the min/max endpoint positions of every edge, accumulated block by block
    over the storage (each edge counted once via its ``col ≥ row`` arc), and
    the best prefix is the first argmin of the vectorised ϕ array — exactly
    the first strict improvement the historical Python loop kept.

    Returns
    -------
    (set, phi):
        The best prefix as an array of node ids, and its conductance.
    """
    score = np.asarray(score, dtype=np.float64)
    if score.shape != (graph.n,):
        raise ValueError("score vector must have one entry per node")
    order = np.argsort(-score, kind="stable")
    limit = graph.n - 1 if max_size is None else min(max_size, graph.n - 1)

    n = graph.n
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    # For a prefix of size t (positions 0..t-1): an edge is cut iff exactly one
    # endpoint has position < t; it touches the prefix iff min position < t.
    # Each undirected edge is seen once as its col >= row arc (loops included,
    # with lo == hi, so they add volume but never cut — as edge_array() did).
    storage = graph.storage
    indptr = storage.indptr
    lo_counts = np.zeros(n + 1, dtype=np.int64)
    hi_counts = np.zeros(n + 1, dtype=np.int64)
    for r0, r1, block in storage.iter_row_blocks(block_size):
        if block.size == 0:
            continue
        counts = np.diff(indptr[r0 : r1 + 1])
        rows = np.repeat(np.arange(r0, r1, dtype=np.int64), counts)
        once = block >= rows
        pos_u = position[rows[once]]
        pos_v = position[block[once]]
        lo_counts += np.bincount(np.minimum(pos_u, pos_v), minlength=n + 1)
        hi_counts += np.bincount(np.maximum(pos_u, pos_v), minlength=n + 1)
    touching = np.cumsum(lo_counts)           # touching[t-1] = vol(prefix t)
    internal = np.cumsum(hi_counts)           # internal[t-1] = #{edges: hi <= t-1}
    vols = touching[:limit]
    cuts = vols - internal[:limit]
    phis = np.full(limit, np.inf)
    np.divide(cuts, vols, out=phis, where=vols > 0)
    if phis.size == 0:
        return order[:1].copy(), float("inf")
    best = int(np.argmin(phis))               # first occurrence = first strict min
    return order[: best + 1].copy(), float(phis[best])
