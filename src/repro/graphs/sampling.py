"""Vectorised sparse-regime pair samplers for the instance pipeline.

The seed generators sampled Bernoulli edge masks over *every* candidate pair,
which is Θ(n²) time and memory per block regardless of how sparse the target
graph is.  At the paper's interesting regime (expected degree O(log n), so
m = O(n log n) edges out of Θ(n²) pairs) that dense detour dominates the whole
experiment once n reaches 10⁵.

The samplers here work in the *sparse* regime instead: draw the number of
edges of a block from the exact Binomial distribution, then sample that many
distinct pair *indices* uniformly at random and decode them to endpoints with
index arithmetic.  The resulting edge-set distribution is identical to the
per-pair Bernoulli scheme (a G(N, p) set is a uniformly random M-subset given
its Binomial(N, p) size M), but time and memory are O(m), not O(N).

Pair indices use two linear enumerations:

* **triangular** — pairs ``(u, v)`` with ``0 <= u < v < n`` in row-major
  order, ``index = u·n − u(u+1)/2 + (v − u − 1)``; used for within-block
  (symmetric) sampling.  The decode inverts the quadratic with one float
  ``sqrt`` plus an exact integer fix-up, so it is safe for ``N`` up to 2⁵³.
* **rectangular** — pairs ``(u, v)`` with ``u < rows`` and ``v < cols``,
  ``index = u·cols + v``; used for between-block sampling.

For *weighted* endpoint sampling (the LFR generator draws edge endpoints
proportionally to per-node degree budgets, millions of times per instance),
:class:`AliasTable` implements Walker's alias method: O(k) build, O(1) per
draw, versus the O(log k) binary search per draw of inverse-CDF sampling —
and, unlike ``Generator.choice(p=...)``, the table is built *once* and reused
across batches.  :class:`SegmentedAliasTable` is the grouped variant (one
table per community over a concatenated weight array) behind the LFR
two-stage same-community draw.

All functions draw only from the supplied :class:`numpy.random.Generator`,
so every caller remains seed-deterministic.
"""

from __future__ import annotations

import numpy as np

from .._accel import maybe_njit

__all__ = [
    "AliasTable",
    "SegmentedAliasTable",
    "merge_sorted_unique",
    "sample_distinct_indices",
    "triu_index_to_pair",
    "pair_to_triu_index",
    "bernoulli_triu_edges",
    "bernoulli_block_edges",
    "sample_triu_pairs_excluding",
]

#: Below this many candidate pairs the dense fallbacks (permutation /
#: setdiff1d over the full index range) are cheaper and unconditionally safe.
_DENSE_FALLBACK = 1 << 20


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sort-based deduplication (numpy's hash-based ``unique`` is ~6x slower
    on the multi-million-element int64 arrays these samplers produce)."""
    if values.size <= 1:
        return values
    values = np.sort(values)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def merge_sorted_unique(have: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Merge ``new`` values into the sorted-unique array ``have``.

    ``have`` must already be sorted and duplicate-free (the accumulator of
    every batched rejection loop here); ``new`` may be unsorted and carry
    duplicates.  Returns the sorted-unique union — exactly what
    ``_sorted_unique(np.concatenate([have, new]))`` returns, but only the
    *new* values are sorted, so the per-batch cost is
    O(|have| + |new|·log|new|) instead of re-sorting the whole accumulation
    every batch.  That re-sort was the remaining super-linear term of LFR
    generation at n = 10⁷, where late batches carry a few thousand new keys
    against tens of millions of accumulated ones.
    """
    if new.size == 0:
        return have
    new = _sorted_unique(new)
    if have.size == 0:
        return new
    # Drop values already present: each new value's insertion point either
    # lands on an equal element of ``have`` or it is genuinely fresh.
    pos = np.searchsorted(have, new)
    inside = pos < have.size
    taken = np.zeros(new.size, dtype=bool)
    taken[inside] = have[pos[inside]] == new[inside]
    fresh = new[~taken]
    if fresh.size == 0:
        return have
    # Scatter-merge: fresh value i belongs at (insertion point) + i once the
    # earlier fresh values are in place; everything else is ``have`` in order.
    out = np.empty(have.size + fresh.size, dtype=have.dtype)
    at = pos[~taken] + np.arange(fresh.size)
    out[at] = fresh
    keep = np.ones(out.size, dtype=bool)
    keep[at] = False
    out[keep] = have
    return out


def sample_distinct_indices(total: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``count`` distinct integers uniformly from ``[0, total)``, sorted.

    Uses batched rejection sampling: draw with replacement, keep the distinct
    values, top up until enough, then trim a uniformly random subset.  Each
    intermediate set of distinct values is exchangeable over ``[0, total)``,
    so the final ``count``-subset is uniform.  When ``count`` is a sizeable
    fraction of ``total`` (or ``total`` is small) a partial permutation is
    used instead — in that regime the output is Θ(total) anyway.
    """
    total = int(total)
    count = int(count)
    if count < 0 or count > total:
        raise ValueError(f"cannot sample {count} distinct indices from [0, {total})")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if 3 * count >= total or total <= _DENSE_FALLBACK:
        return np.sort(rng.permutation(total)[:count].astype(np.int64))
    have = np.empty(0, dtype=np.int64)
    while have.size < count:
        need = count - have.size
        # Overdraw by the expected number of collisions (with existing values
        # and within the batch) plus a few sigma, so one round almost always
        # suffices and the overshoot to trim stays small.
        expected_collisions = need * (count / total)
        overdraw = int(expected_collisions) + 4 * int(np.sqrt(expected_collisions + 1.0)) + 16
        batch = rng.integers(0, total, size=need + overdraw, dtype=np.int64)
        have = merge_sorted_unique(have, batch)
    excess = have.size - count
    if excess:
        # Dropping a uniformly random subset keeps the remaining set uniform.
        have = np.delete(have, rng.choice(have.size, size=excess, replace=False))
    return have


def pair_to_triu_index(u: np.ndarray, v: np.ndarray, n: int) -> np.ndarray:
    """Encode pairs ``(u, v)`` with ``u < v < n`` as triangular linear indices."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    return u * n - u * (u + 1) // 2 + (v - u - 1)


def triu_index_to_pair(index: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Decode triangular linear indices back to ``(u, v)`` pairs with ``u < v``."""
    index = np.asarray(index, dtype=np.int64)
    if index.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Solve u·n − u(u+1)/2 <= index for the largest integer u; the float
    # solution of the quadratic is then corrected exactly in integers.
    u = ((2 * n - 1) - np.sqrt((2.0 * n - 1) ** 2 - 8.0 * index)) / 2.0
    u = np.clip(u.astype(np.int64), 0, n - 2)

    def offset(rows: np.ndarray) -> np.ndarray:
        return rows * n - rows * (rows + 1) // 2

    for _ in range(2):
        u = np.clip(u - (offset(u) > index), 0, n - 2)
        u = np.clip(u + (offset(u + 1) <= index), 0, n - 2)
    v = index - offset(u) + u + 1
    return u, v


def bernoulli_triu_edges(n: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Sample an ``(m, 2)`` edge array of a G(n, p) graph on ``n`` nodes.

    Distributionally identical to flipping a ``p``-coin for every pair
    ``u < v``, but runs in O(m) — no dense mask is ever materialised.
    """
    total = n * (n - 1) // 2
    if total == 0 or p <= 0.0:
        return np.empty((0, 2), dtype=np.int64)
    count = int(rng.binomial(total, p)) if p < 1.0 else total
    u, v = triu_index_to_pair(sample_distinct_indices(total, count, rng), n)
    return np.stack([u, v], axis=1)


def bernoulli_block_edges(
    rows: int, cols: int, p: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample an ``(m, 2)`` array of pairs from a ``rows × cols`` Bernoulli block.

    The first column indexes ``[0, rows)``, the second ``[0, cols)``; callers
    add their block offsets to place the pairs in the global node numbering.
    """
    total = rows * cols
    if total == 0 or p <= 0.0:
        return np.empty((0, 2), dtype=np.int64)
    count = int(rng.binomial(total, p)) if p < 1.0 else total
    index = sample_distinct_indices(total, count, rng)
    return np.stack([index // cols, index % cols], axis=1)


def sample_triu_pairs_excluding(
    n: int,
    count: int,
    existing: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``count`` distinct pairs ``u < v`` avoiding ``existing`` indices.

    ``existing`` must be a *sorted* array of triangular indices (see
    :func:`pair_to_triu_index`).  Raises :class:`ValueError` when fewer than
    ``count`` free pairs remain.  Used by the noise generator to add missing
    edges without the seed path's Python-level rejection loop.
    """
    existing = np.asarray(existing, dtype=np.int64)
    total = n * (n - 1) // 2
    free = total - existing.size
    if count > free:
        raise ValueError(f"requested {count} new pairs but only {free} are missing")
    if count == 0:
        return np.empty((0, 2), dtype=np.int64)
    if total <= _DENSE_FALLBACK or 2 * count >= free:
        pool = np.setdiff1d(np.arange(total, dtype=np.int64), existing, assume_unique=True)
        chosen = np.sort(rng.choice(pool, size=count, replace=False))
    else:
        have = np.empty(0, dtype=np.int64)
        # Acceptance is >= 1/2 in this branch (free > 2·count and the
        # accumulated set stays below count), so the overdraw factor 2 wins.
        while have.size < count:
            need = count - have.size
            batch = rng.integers(0, total, size=2 * need + 16, dtype=np.int64)
            pos = np.searchsorted(existing, batch)
            pos = np.minimum(pos, existing.size - 1) if existing.size else pos
            taken = (existing[pos] == batch) if existing.size else np.zeros(batch.size, bool)
            have = merge_sorted_unique(have, batch[~taken])
        chosen = have
        if chosen.size > count:
            chosen = np.sort(rng.choice(chosen, size=count, replace=False))
    u, v = triu_index_to_pair(chosen, n)
    return np.stack([u, v], axis=1)


# --------------------------------------------------------------------------- #
# Walker alias method (weighted endpoint sampling)
# --------------------------------------------------------------------------- #

@maybe_njit(cache=True)
def _alias_build_segments(scaled, starts, prob, alias):
    """Fill the alias tables of every ``starts`` segment of ``scaled``.

    ``scaled`` holds each segment's weights pre-scaled to mean 1 (the
    caller's job) and is consumed as scratch.  Classic two-stack
    construction, entirely deterministic: the only floating-point operation
    is the residual update ``scaled[l] += scaled[s] - 1``, so the tables are
    a pure function of the weights.  Runs under numba when available; the
    plain-Python execution of the same body is the fallback.
    """
    for seg in range(starts.size - 1):
        lo = starts[seg]
        hi = starts[seg + 1]
        count = hi - lo
        if count <= 0:
            continue
        small = np.empty(count, dtype=np.int64)
        large = np.empty(count, dtype=np.int64)
        n_small = 0
        n_large = 0
        for i in range(lo, hi):
            alias[i] = i
            if scaled[i] < 1.0:
                small[n_small] = i
                n_small += 1
            else:
                large[n_large] = i
                n_large += 1
        while n_small > 0 and n_large > 0:
            n_small -= 1
            n_large -= 1
            s = small[n_small]
            l = large[n_large]
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] += scaled[s] - 1.0
            if scaled[l] < 1.0:
                small[n_small] = l
                n_small += 1
            else:
                large[n_large] = l
                n_large += 1
        # Leftovers on either stack are exactly-1 columns up to float
        # round-off; give them acceptance probability 1.
        while n_large > 0:
            n_large -= 1
            prob[large[n_large]] = 1.0
        while n_small > 0:
            n_small -= 1
            prob[small[n_small]] = 1.0


class AliasTable:
    """Walker alias table over ``k`` weights: O(k) build, O(1) per draw.

    Build is deterministic (no randomness consumed); ``draw`` spends exactly
    one uniform integer and one uniform float per sample from the supplied
    generator, so callers stay seed-deterministic.  Zero-weight entries are
    never drawn.  Weights must be finite, non-negative, with positive sum.
    """

    def __init__(self, weights: np.ndarray):
        w = np.ascontiguousarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-d array")
        if not np.all(np.isfinite(w)) or np.any(w < 0):
            raise ValueError("weights must be finite and non-negative")
        total = float(w.sum())
        if total <= 0:
            raise ValueError("weights must have positive sum")
        self.size = int(w.size)
        scaled = w * (self.size / total)
        self.prob = np.zeros(self.size, dtype=np.float64)
        self.alias = np.empty(self.size, dtype=np.int64)
        starts = np.array([0, self.size], dtype=np.int64)
        _alias_build_segments(scaled, starts, self.prob, self.alias)

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` independent indices distributed ∝ the build weights."""
        j = rng.integers(0, self.size, size=size)
        accept = rng.random(size) < self.prob[j]
        return np.where(accept, j, self.alias[j])


class SegmentedAliasTable:
    """One alias table per contiguous segment of a concatenated weight array.

    ``starts`` (length ``S + 1``) delimits the segments, e.g. the
    community-sorted node order of the LFR generator.
    :meth:`draw_in_segments` then samples, for each requested segment id, one
    *global* position distributed ∝ the weights within that segment — the
    O(1) replacement for a ``searchsorted`` over the segment's slice of a
    global CDF.  Segments may be empty or all-zero as long as they are never
    drawn from.
    """

    def __init__(self, weights: np.ndarray, starts: np.ndarray):
        w = np.ascontiguousarray(weights, dtype=np.float64)
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        if w.ndim != 1 or starts.ndim != 1 or starts.size < 2:
            raise ValueError("need 1-d weights and at least one segment")
        if starts[0] != 0 or starts[-1] != w.size or np.any(np.diff(starts) < 0):
            raise ValueError("starts must ascend from 0 to weights.size")
        if not np.all(np.isfinite(w)) or np.any(w < 0):
            raise ValueError("weights must be finite and non-negative")
        self.starts = starts
        self.sizes = np.diff(starts)
        # Scale each segment to mean 1 independently; zero-sum segments get
        # uniform scaled weights so the build is well-defined (drawing from
        # them is the caller's bug, not a crash here).
        sums = np.add.reduceat(w, starts[:-1]) if w.size else np.zeros(starts.size - 1)
        sums = np.where(self.sizes > 0, sums, 1.0)
        safe = np.where(sums > 0, sums, 1.0)
        factor = np.where(sums > 0, self.sizes / safe, 1.0)
        scaled = w * np.repeat(factor, self.sizes)
        scaled[np.repeat(sums <= 0, self.sizes)] = 1.0
        self.prob = np.zeros(w.size, dtype=np.float64)
        self.alias = np.empty(w.size, dtype=np.int64)
        _alias_build_segments(scaled, starts, self.prob, self.alias)

    def draw_in_segments(self, segments: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """For each entry of ``segments``, one global position ∝ in-segment weight."""
        segments = np.asarray(segments, dtype=np.int64)
        span = self.sizes[segments]
        if np.any(span <= 0):
            raise ValueError("cannot draw from an empty segment")
        j = self.starts[segments] + rng.integers(0, span)
        accept = rng.random(segments.size) < self.prob[j]
        return np.where(accept, j, self.alias[j])
