"""Failure injection for robustness experiments.

The paper assumes a fully reliable synchronous network.  Real deployments are
not so kind, and a natural question for a downstream user is how gracefully
the algorithm degrades when messages are lost or nodes crash.  The failure
models below plug into :class:`repro.distsim.network.SynchronousNetwork` and
are exercised by the robustness tests and the E11 sensitivity benchmark.

All failure decisions are drawn from the simulator's dedicated RNG stream so
that enabling failures never perturbs the nodes' own random choices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .messages import Message

__all__ = ["FailureModel", "NoFailures", "MessageDropFailures", "CrashFailures", "CompositeFailures"]


class FailureModel:
    """Interface for failure injection; the default injects nothing."""

    def reset(self, n: int, rng: np.random.Generator) -> None:
        """Called once before a simulation starts."""

    def on_round(self, round_index: int, rng: np.random.Generator) -> None:
        """Called at the beginning of every round."""

    def node_is_alive(self, node_id: int) -> bool:
        """Whether the node participates in this round."""
        return True

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        """Whether the message is delivered (``False`` drops it silently)."""
        return True


class NoFailures(FailureModel):
    """The reliable network of the paper (default)."""


@dataclass
class MessageDropFailures(FailureModel):
    """Each message is independently dropped with probability ``drop_probability``."""

    drop_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must lie in [0, 1)")

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        return bool(rng.random() >= self.drop_probability)


@dataclass
class CrashFailures(FailureModel):
    """A fixed fraction of nodes crashes (permanently) at a given round.

    Crashed nodes stop sending and receiving; their state is frozen.  The
    crash set is sampled uniformly at reset time.
    """

    crash_fraction: float
    crash_round: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_fraction < 1.0:
            raise ValueError("crash_fraction must lie in [0, 1)")
        if self.crash_round < 0:
            raise ValueError("crash_round must be non-negative")
        self._crashed: np.ndarray | None = None
        self._active = False

    def reset(self, n: int, rng: np.random.Generator) -> None:
        num_crashed = int(np.floor(self.crash_fraction * n))
        crashed = rng.choice(n, size=num_crashed, replace=False) if num_crashed else np.empty(0, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        mask[crashed] = True
        self._crashed = mask
        self._active = False

    def on_round(self, round_index: int, rng: np.random.Generator) -> None:
        if round_index >= self.crash_round:
            self._active = True

    def node_is_alive(self, node_id: int) -> bool:
        if not self._active or self._crashed is None:
            return True
        return not bool(self._crashed[node_id])

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        if not self._active or self._crashed is None:
            return True
        return not (self._crashed[message.sender] or self._crashed[message.receiver])


class CompositeFailures(FailureModel):
    """Combine several failure models (a message survives only if all agree)."""

    def __init__(self, *models: FailureModel):
        self._models = list(models)

    def reset(self, n: int, rng: np.random.Generator) -> None:
        for m in self._models:
            m.reset(n, rng)

    def on_round(self, round_index: int, rng: np.random.Generator) -> None:
        for m in self._models:
            m.on_round(round_index, rng)

    def node_is_alive(self, node_id: int) -> bool:
        return all(m.node_is_alive(node_id) for m in self._models)

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        return all(m.deliver(message, rng) for m in self._models)
