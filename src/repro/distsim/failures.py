"""Failure injection for robustness experiments.

The paper assumes a fully reliable synchronous network.  Real deployments are
not so kind, and a natural question for a downstream user is how gracefully
the algorithm degrades when messages are lost or nodes crash.  The failure
models below plug into :class:`repro.distsim.network.SynchronousNetwork` and
are exercised by the robustness tests and the E11/E21 benchmarks.

Two operating modes
-------------------
**Legacy (generator-driven).**  The network calls :meth:`FailureModel.reset`
with the simulator's dedicated RNG stream and consults the scalar methods
(:meth:`node_is_alive`, :meth:`deliver`) message by message.  Enabling
failures never perturbs the nodes' own random choices, but the decisions
depend on message *order*, so they are reproducible only within one backend.

**Bound (counter-driven).**  :meth:`FailureModel.bind` pins the model to a
64-bit seed, after which every decision is a splitmix64 counter hash from
:mod:`repro._rng` — a pure function of its coordinates:

* crash coins: ``counter_uniforms(stream_key(seed, 0, STREAM_CRASH), n)``,
  one draw per node, drawn once per run;
* delivery coins: ``pair_uniforms(message_key(seed, round, kind), u, v)``,
  one draw per directed message ``(round, kind, u → v)``.

Position-independence is the point: the same ``(seed, round, kind, u, v)``
always gets the same coin, no matter which backend asks, in what order, or
how the work was sliced across threads or row blocks.  That is what makes
the vectorized masks (:meth:`alive_mask`, :meth:`deliver_mask`) bit-identical
to the per-node simulator driven through the same bound model — pinned by
``tests/integration/test_failure_parity.py``.  A corollary worth knowing:
two messages with identical coordinates replay the same coin (deterministic
replay, not i.i.d. per send).  The clustering protocol sends at most one
message per ``(kind, u, v)`` per round, so this never matters for it.

The mask methods fall back to the scalar methods automatically, so a custom
subclass that only implements ``node_is_alive``/``deliver`` still works on
every backend (deterministically under a bound seed, though the fallback's
draws are order-dependent within a round).  :class:`NoFailures` — and any
model that overrides neither scalar hook — reports ``None`` masks and burns
zero draws, so engine output with it is bit-identical to ``failures=None``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import (
    MASK64,
    STREAM_CRASH,
    counter_uniforms,
    message_key,
    mix64,
    pair_uniform,
    pair_uniforms,
    stream_key,
)
from .messages import Message

__all__ = [
    "FailureModel",
    "NoFailures",
    "MessageDropFailures",
    "CrashFailures",
    "CompositeFailures",
    "make_failure_model",
]


class FailureModel:
    """Interface for failure injection; the default injects nothing.

    Scalar contract (legacy, message-at-a-time): :meth:`reset`,
    :meth:`on_round`, :meth:`node_is_alive`, :meth:`deliver`.

    Vectorized contract (mask-at-a-time): :meth:`bind` once per run, then
    :meth:`alive_mask` / :meth:`deliver_mask` per round.  ``None`` from a
    mask method means "all alive" / "all delivered" — callers can skip the
    masking work entirely.  The base implementations fall back to the scalar
    methods, so subclasses override masks only for speed or for exact
    cross-backend parity.
    """

    _bound_seed: int | None = None
    _bound_round: int = 0

    # ---------------------------------------------------------------- scalar
    def reset(self, n: int, rng: np.random.Generator) -> None:
        """Called once before a simulation starts."""

    def on_round(self, round_index: int, rng: np.random.Generator) -> None:
        """Called at the beginning of every round (subclasses call ``super``)."""
        self._bound_round = int(round_index)

    def node_is_alive(self, node_id: int) -> bool:
        """Whether the node participates in this round."""
        return True

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        """Whether the message is delivered (``False`` drops it silently)."""
        return True

    # ------------------------------------------------------------ vectorized
    @property
    def is_bound(self) -> bool:
        """Whether the model draws from a pinned counter stream."""
        return self._bound_seed is not None

    def bind(self, n: int, seed: int) -> None:
        """Pin all failure draws to counter streams derived from ``seed``.

        After binding, decisions are pure functions of their coordinates
        (see the module docstring) — the same ``(n, seed)`` bind yields the
        same crash set and the same delivery coins on every backend.
        Re-binding resets all round state, so one model instance can be
        passed to several engines in sequence.
        """
        self._bound_seed = int(seed) & MASK64
        self._bound_round = 0
        self.reset(n, np.random.default_rng(self._bound_seed))

    def begin_round(self, round_index: int) -> None:
        """Bound-mode round hook for mask-driven engines.

        Equivalent to the network's ``on_round`` call, with the RNG derived
        deterministically from ``(bound seed, round)`` so custom scalar
        models that consume it stay reproducible.  The built-in models never
        touch it — their masks are pure functions of the round index.
        """
        self.on_round(round_index, np.random.default_rng((self._require_bound(), int(round_index))))

    def alive_mask(self, round_index: int, n: int) -> np.ndarray | None:
        """Boolean alive mask for round ``round_index``, or ``None`` for all-alive.

        Base fallback: all-alive when :meth:`node_is_alive` is not
        overridden (zero draws), otherwise one scalar query per node.
        """
        if type(self).node_is_alive is FailureModel.node_is_alive:
            return None
        return np.fromiter(
            (self.node_is_alive(v) for v in range(n)), dtype=bool, count=n
        )

    def deliver_mask(
        self,
        round_index: int,
        kind: str,
        senders: np.ndarray,
        receivers: np.ndarray,
    ) -> np.ndarray | None:
        """Delivery mask for the ``kind`` messages ``senders[i] → receivers[i]``.

        ``None`` means all delivered.  Base fallback: all-delivered when
        :meth:`deliver` is not overridden (zero draws), otherwise one scalar
        :meth:`deliver` call per message against an RNG seeded from the
        ``(seed, round, kind)`` message key — deterministic, but dependent
        on the order of the pairs (exact parity needs a mask override).
        """
        if type(self).deliver is FailureModel.deliver:
            return None
        rng = np.random.default_rng(message_key(self._require_bound(), round_index, kind))
        out = np.empty(len(senders), dtype=bool)
        for i, (s, r) in enumerate(zip(senders, receivers)):
            out[i] = self.deliver(Message(int(s), int(r), kind, words=1), rng)
        return out

    def _require_bound(self) -> int:
        if self._bound_seed is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound: call bind(n, seed) before "
                "querying vectorized masks"
            )
        return self._bound_seed


class NoFailures(FailureModel):
    """The reliable network of the paper (default).

    Overrides neither scalar hook, so both mask methods report ``None`` and
    zero stream draws are burned: engine output under ``NoFailures`` is
    bit-identical to ``failures=None``.
    """


@dataclass
class MessageDropFailures(FailureModel):
    """Each message is independently dropped with probability ``drop_probability``.

    Bound mode draws the coin of message ``(round, kind, u → v)`` as
    ``pair_uniforms(message_key(seed, round, kind), u, v)`` — the scalar
    :meth:`deliver` and the vectorized :meth:`deliver_mask` read the *same*
    coin for the same message, which is what makes the per-node simulator
    and the array backends drop exactly the same messages.
    """

    drop_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must lie in [0, 1)")

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        if self.is_bound:
            key = message_key(self._bound_seed, self._bound_round, message.kind)
            return pair_uniform(key, message.sender, message.receiver) >= self.drop_probability
        return bool(rng.random() >= self.drop_probability)

    def deliver_mask(
        self,
        round_index: int,
        kind: str,
        senders: np.ndarray,
        receivers: np.ndarray,
    ) -> np.ndarray | None:
        key = message_key(self._require_bound(), round_index, kind)
        return pair_uniforms(key, senders, receivers) >= self.drop_probability


@dataclass
class CrashFailures(FailureModel):
    """A fixed fraction of nodes crashes (permanently) at a given round.

    Crashed nodes stop sending and receiving; their state is frozen.  The
    crash set is sampled at reset time: ``floor(crash_fraction · n)`` nodes,
    uniform without replacement.  Bound mode keeps the exact-count semantics
    by order statistics — the crashed nodes are those with the smallest
    ``counter_uniforms(stream_key(seed, 0, STREAM_CRASH), n)`` draws — so
    the set is a pure function of ``(seed, n)``, identical on every backend.
    """

    crash_fraction: float
    crash_round: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_fraction < 1.0:
            raise ValueError("crash_fraction must lie in [0, 1)")
        if self.crash_round < 0:
            raise ValueError("crash_round must be non-negative")
        self._crashed: np.ndarray | None = None
        self._active = False

    def reset(self, n: int, rng: np.random.Generator) -> None:
        num_crashed = int(np.floor(self.crash_fraction * n))
        if not num_crashed:
            crashed = np.empty(0, dtype=np.int64)
        elif self.is_bound:
            coins = counter_uniforms(stream_key(self._bound_seed, 0, STREAM_CRASH), n)
            crashed = np.argpartition(coins, num_crashed - 1)[:num_crashed]
        else:
            crashed = rng.choice(n, size=num_crashed, replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[crashed] = True
        self._crashed = mask
        self._active = False

    def on_round(self, round_index: int, rng: np.random.Generator) -> None:
        super().on_round(round_index, rng)
        if round_index >= self.crash_round:
            self._active = True

    def node_is_alive(self, node_id: int) -> bool:
        if not self._active or self._crashed is None:
            return True
        return not bool(self._crashed[node_id])

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        if not self._active or self._crashed is None:
            return True
        return not (self._crashed[message.sender] or self._crashed[message.receiver])

    def alive_mask(self, round_index: int, n: int) -> np.ndarray | None:
        # Stateless in the round index (crashes are monotone: once active,
        # always active), so mask-driven engines need no on_round calls.
        if self._crashed is None or round_index < self.crash_round or not self._crashed.any():
            return None
        return ~self._crashed

    def deliver_mask(
        self,
        round_index: int,
        kind: str,
        senders: np.ndarray,
        receivers: np.ndarray,
    ) -> np.ndarray | None:
        if self._crashed is None or round_index < self.crash_round or not self._crashed.any():
            return None
        return ~(self._crashed[np.asarray(senders)] | self._crashed[np.asarray(receivers)])


class CompositeFailures(FailureModel):
    """Combine several failure models (a message survives only if all agree)."""

    def __init__(self, *models: FailureModel):
        self._models = list(models)

    def reset(self, n: int, rng: np.random.Generator) -> None:
        for m in self._models:
            m.reset(n, rng)

    def bind(self, n: int, seed: int) -> None:
        # Each constituent gets its own derived seed, so two models of the
        # same class (e.g. two drop layers) draw decorrelated coins; the
        # derivation is deterministic, so parity across backends holds.
        self._bound_seed = int(seed) & MASK64
        self._bound_round = 0
        for i, m in enumerate(self._models):
            m.bind(n, mix64((self._bound_seed + (i + 1)) & MASK64))

    def on_round(self, round_index: int, rng: np.random.Generator) -> None:
        super().on_round(round_index, rng)
        for m in self._models:
            m.on_round(round_index, rng)

    def node_is_alive(self, node_id: int) -> bool:
        return all(m.node_is_alive(node_id) for m in self._models)

    def deliver(self, message: Message, rng: np.random.Generator) -> bool:
        return all(m.deliver(message, rng) for m in self._models)

    def alive_mask(self, round_index: int, n: int) -> np.ndarray | None:
        out: np.ndarray | None = None
        for m in self._models:
            mask = m.alive_mask(round_index, n)
            if mask is not None:
                out = mask.copy() if out is None else out & mask
        return out

    def deliver_mask(
        self,
        round_index: int,
        kind: str,
        senders: np.ndarray,
        receivers: np.ndarray,
    ) -> np.ndarray | None:
        out: np.ndarray | None = None
        for m in self._models:
            mask = m.deliver_mask(round_index, kind, senders, receivers)
            if mask is not None:
                out = mask.copy() if out is None else out & mask
        return out


def make_failure_model(
    *,
    drop_probability: float = 0.0,
    crash_fraction: float = 0.0,
    crash_round: int = 0,
) -> FailureModel | None:
    """Build the failure model of a robustness sweep point.

    Returns ``None`` when all knobs are zero (the reliable network, with the
    engines taking their unmasked fast paths), a single model when one knob
    is set, and a :class:`CompositeFailures` when both are.
    """
    models: list[FailureModel] = []
    if drop_probability > 0.0:
        models.append(MessageDropFailures(drop_probability))
    if crash_fraction > 0.0:
        models.append(CrashFailures(crash_fraction, crash_round))
    if not models:
        return None
    if len(models) == 1:
        return models[0]
    return CompositeFailures(*models)
