"""Synchronous message-passing simulator (the "parallel network" substrate).

This subpackage replaces the physical processor network of the paper with a
faithful simulation: algorithms are written against the per-node API of
:class:`NodeAlgorithm`/:class:`NodeContext` and can only communicate through
messages, so the recorded communication is exactly what a real deployment
would send.
"""

from .accounting import CommunicationLog, RoundStats
from .engine import (
    EngineResult,
    RoundEngine,
    available_engines,
    get_engine_factory,
    register_engine,
)
from .failures import (
    CompositeFailures,
    CrashFailures,
    FailureModel,
    MessageDropFailures,
    NoFailures,
    make_failure_model,
)
from .messages import Message, payload_words
from .network import SimulationResult, SynchronousNetwork
from .node import NodeAlgorithm, NodeContext
from .rng import NodeRngFactory
from .tracing import RoundTrace, SimulationTrace

__all__ = [
    "CommunicationLog",
    "RoundStats",
    "EngineResult",
    "RoundEngine",
    "available_engines",
    "get_engine_factory",
    "register_engine",
    "CompositeFailures",
    "CrashFailures",
    "FailureModel",
    "MessageDropFailures",
    "NoFailures",
    "make_failure_model",
    "Message",
    "payload_words",
    "SimulationResult",
    "SynchronousNetwork",
    "NodeAlgorithm",
    "NodeContext",
    "NodeRngFactory",
    "RoundTrace",
    "SimulationTrace",
]
