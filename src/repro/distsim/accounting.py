"""Communication accounting for the synchronous simulator.

The paper's cost model charges:

* one *message* per point-to-point send,
* the number of *words* carried by each message (Theorem 1.1(2) is stated in
  words), and
* at most ``⌊n/2⌋`` *matched edges* per round of the random matching model
  (the "low communication cost" remark of the introduction).

:class:`CommunicationLog` records these quantities per round and per message
kind, and exposes the aggregates the benchmarks report (total words, words
per node, messages per round, matched edges per round).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .messages import Message

__all__ = ["RoundStats", "CommunicationLog"]


@dataclass
class RoundStats:
    """Communication totals of one synchronous round."""

    round_index: int
    messages: int = 0
    words: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    matched_edges: int = 0
    active_nodes: int = 0

    def record(self, message: Message) -> None:
        self.messages += 1
        self.words += message.words
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1


class CommunicationLog:
    """Accumulates per-round communication statistics for a whole run."""

    def __init__(self) -> None:
        self._rounds: list[RoundStats] = []
        self._current: RoundStats | None = None

    # ------------------------------------------------------------------ #
    # Recording interface (used by the network simulator)
    # ------------------------------------------------------------------ #

    def start_round(self, round_index: int) -> None:
        if self._current is not None:
            raise RuntimeError("previous round was not finished")
        self._current = RoundStats(round_index=round_index)

    def record_message(self, message: Message) -> None:
        if self._current is None:
            raise RuntimeError("no round in progress")
        self._current.record(message)

    def record_matched_edges(self, count: int) -> None:
        if self._current is None:
            raise RuntimeError("no round in progress")
        self._current.matched_edges += int(count)

    def record_active_nodes(self, count: int) -> None:
        if self._current is None:
            raise RuntimeError("no round in progress")
        self._current.active_nodes += int(count)

    def finish_round(self) -> RoundStats:
        if self._current is None:
            raise RuntimeError("no round in progress")
        stats = self._current
        self._rounds.append(stats)
        self._current = None
        return stats

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def rounds(self) -> list[RoundStats]:
        return list(self._rounds)

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self._rounds)

    @property
    def total_words(self) -> int:
        return sum(r.words for r in self._rounds)

    @property
    def total_matched_edges(self) -> int:
        return sum(r.matched_edges for r in self._rounds)

    def words_per_round(self) -> np.ndarray:
        return np.asarray([r.words for r in self._rounds], dtype=np.int64)

    def messages_per_round(self) -> np.ndarray:
        return np.asarray([r.messages for r in self._rounds], dtype=np.int64)

    def matched_edges_per_round(self) -> np.ndarray:
        return np.asarray([r.matched_edges for r in self._rounds], dtype=np.int64)

    def max_matched_edges_in_a_round(self) -> int:
        if not self._rounds:
            return 0
        return int(self.matched_edges_per_round().max())

    def words_by_kind(self) -> dict[str, int]:
        """Total message count per message kind across all rounds."""
        totals: dict[str, int] = defaultdict(int)
        for r in self._rounds:
            for kind, count in r.by_kind.items():
                totals[kind] += count
        return dict(totals)

    def summary(self) -> dict:
        """Flat dictionary used by benchmark tables and EXPERIMENTS.md."""
        return {
            "rounds": self.num_rounds,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "total_matched_edges": self.total_matched_edges,
            "max_matched_edges_per_round": self.max_matched_edges_in_a_round(),
            "mean_words_per_round": (
                float(self.words_per_round().mean()) if self._rounds else 0.0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommunicationLog(rounds={self.num_rounds}, messages={self.total_messages}, "
            f"words={self.total_words})"
        )
