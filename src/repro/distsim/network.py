"""Synchronous round-based network simulator.

This is the substitute for the paper's "parallel network with n processors":
a faithful simulator of the synchronous message-passing model in which the
algorithm is stated.  The simulator

* instantiates one :class:`~repro.distsim.node.NodeContext` per node with an
  independent random stream,
* repeatedly executes the phases of one round: deliver the messages produced
  in the previous phase, then invoke every (alive) node's
  :meth:`~repro.distsim.node.NodeAlgorithm.run_phase`,
* records every delivered message in a
  :class:`~repro.distsim.accounting.CommunicationLog`, and
* applies an optional :class:`~repro.distsim.failures.FailureModel`.

The simulation is sequential Python under the hood (per the HPC guides the
numerically heavy work lives in the *vectorized* round-engine backend — see
:mod:`repro.distsim.engine` for the engine contract extracted from this
simulator, and :mod:`repro.core.engines` for both backends; the simulator's
job is fidelity and exact communication accounting, not speed), but nodes
are isolated: the only inter-node channel is the message queue, so the
measured communication equals what a real deployment would send.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..graphs.graph import Graph
from .accounting import CommunicationLog
from .failures import FailureModel, NoFailures
from .messages import Message
from .node import NodeAlgorithm, NodeContext
from .rng import NodeRngFactory
from .tracing import RoundTrace, SimulationTrace

__all__ = ["SimulationResult", "SynchronousNetwork"]


@dataclass
class SimulationResult:
    """Everything a benchmark needs to know about one simulation run."""

    rounds_executed: int
    contexts: list[NodeContext]
    communication: CommunicationLog
    trace: SimulationTrace
    converged_early: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    def node_state(self, node_id: int) -> dict[str, Any]:
        return self.contexts[node_id].state

    def states(self, key: str) -> list[Any]:
        """Collect ``state[key]`` across nodes (None where missing)."""
        return [ctx.state.get(key) for ctx in self.contexts]


class SynchronousNetwork:
    """Simulator for synchronous message-passing algorithms on a graph.

    Parameters
    ----------
    graph:
        The communication topology.
    algorithm:
        The per-node behaviour.
    seed:
        Root seed for all node streams (and the simulator stream).
    config:
        Read-only configuration dictionary made available to every node
        (e.g. ``{"beta": 0.25, "rounds": 40}``).
    failures:
        Optional failure model; the default is the reliable network the
        paper assumes.
    failure_bind_seed:
        When set, the failure model is *bound* to this 64-bit counter seed
        (:meth:`~repro.distsim.failures.FailureModel.bind`) instead of being
        reset from the simulator's RNG stream: every drop/crash decision
        becomes a pure function of ``(seed, round, kind, sender, receiver)``,
        matching the masks the vectorized backends draw from the same seed.
        ``None`` (the default) keeps the legacy generator-driven behaviour.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: NodeAlgorithm,
        *,
        seed: int | None = None,
        config: dict[str, Any] | None = None,
        failures: FailureModel | None = None,
        failure_bind_seed: int | None = None,
    ):
        self.graph = graph
        self.algorithm = algorithm
        self.config = dict(config or {})
        self.failures = failures or NoFailures()
        self._failure_bind_seed = failure_bind_seed
        self._rng_factory = NodeRngFactory(seed, graph.n)
        self._contexts: list[NodeContext] = [
            NodeContext(
                node_id=v,
                n=graph.n,
                neighbours=graph.neighbours(v),
                rng=self._rng_factory.for_node(v),
                config=self.config,
            )
            for v in range(graph.n)
        ]
        self._log = CommunicationLog()
        self._trace = SimulationTrace()
        self._pending: dict[int, list[Message]] = {v: [] for v in range(graph.n)}
        self._initialised = False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def contexts(self) -> list[NodeContext]:
        return self._contexts

    @property
    def communication(self) -> CommunicationLog:
        return self._log

    def run(
        self,
        rounds: int,
        *,
        stop_when_converged: bool = False,
        round_callback: Callable[[int, "SynchronousNetwork"], None] | None = None,
    ) -> SimulationResult:
        """Run the algorithm for at most ``rounds`` synchronous rounds.

        Parameters
        ----------
        stop_when_converged:
            If ``True``, stop after a round in which *every* node's
            :meth:`~repro.distsim.node.NodeAlgorithm.has_converged` returns
            ``True`` (an idealised global convergence detector used only for
            diagnostics; the paper's algorithm always runs the full ``T``
            rounds).
        round_callback:
            Optional observer invoked after every round with
            ``(round_index, network)``; used by benchmarks that track
            per-round error curves.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        sim_rng = self._rng_factory.for_simulator()
        if not self._initialised:
            if self._failure_bind_seed is not None:
                self.failures.bind(self.graph.n, self._failure_bind_seed)
            else:
                self.failures.reset(self.graph.n, sim_rng)
            for ctx in self._contexts:
                self.algorithm.initialise(ctx)
            self._initialised = True

        phases = list(self.algorithm.phases())
        if not phases:
            raise ValueError("algorithm must declare at least one phase per round")

        converged_early = False
        executed = 0
        for round_index in range(rounds):
            self.failures.on_round(round_index, sim_rng)
            self._log.start_round(round_index)
            round_trace = RoundTrace(round_index=round_index)

            for phase in phases:
                # Deliver messages queued at the previous phase boundary.
                inboxes = self._pending
                self._pending = {v: [] for v in range(self.graph.n)}
                for ctx in self._contexts:
                    alive = self.failures.node_is_alive(ctx.node_id)
                    inbox = inboxes[ctx.node_id] if alive else []
                    if not alive:
                        continue
                    self.algorithm.run_phase(ctx, round_index, phase, inbox)
                    for message in ctx.drain_outbox():
                        if not self.failures.deliver(message, sim_rng):
                            round_trace.dropped_messages += 1
                            continue
                        self._log.record_message(message)
                        self._pending[message.receiver].append(message)
                round_trace.phases_executed += 1

            stats = self._log.finish_round()
            round_trace.messages = stats.messages
            round_trace.words = stats.words
            self._trace.append(round_trace)
            executed = round_index + 1

            if round_callback is not None:
                round_callback(round_index, self)

            if stop_when_converged and all(
                self.algorithm.has_converged(ctx) for ctx in self._contexts
            ):
                converged_early = True
                break

        for ctx in self._contexts:
            self.algorithm.finalise(ctx)

        return SimulationResult(
            rounds_executed=executed,
            contexts=self._contexts,
            communication=self._log,
            trace=self._trace,
            converged_early=converged_early,
            metadata={
                "n": self.graph.n,
                "m": self.graph.num_edges,
                "seed_entropy": self._rng_factory.root_entropy,
                "config": dict(self.config),
            },
        )

    # ------------------------------------------------------------------ #
    # Accounting helpers used by algorithms with a notion of matching
    # ------------------------------------------------------------------ #

    def record_matched_edges(self, count: int) -> None:
        """Let the running algorithm report how many edges were matched this round."""
        self._log.record_matched_edges(count)

    def record_active_nodes(self, count: int) -> None:
        self._log.record_active_nodes(count)
