"""Messages exchanged by simulated nodes.

Theorem 1.1(2) of the paper bounds the *message complexity* of the algorithm
in **words**, where one word holds an identifier or a numeric value
(``O(log n)`` bits).  To measure that quantity faithfully, every message
carries an explicit word count: by default it is the number of scalar values
in the payload plus one word for the message kind.  The accounting layer
(:mod:`repro.distsim.accounting`) aggregates these counts per round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Message", "payload_words"]


def payload_words(payload: Any) -> int:
    """Number of machine words needed to transmit ``payload``.

    Counting rules (conservative and simple):

    * ``None`` costs 0;
    * a scalar (int, float, bool, numpy scalar) costs 1;
    * a string costs 1 (identifiers are assumed to fit one word, as in the
      paper where IDs are integers in ``[1, n³]``);
    * a sequence or ndarray costs the sum of its elements' costs;
    * a mapping costs the sum over keys and values.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, int, float, complex, np.integer, np.floating, np.bool_)):
        return 1
    if isinstance(payload, str):
        return 1
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_words(x) for x in payload)
    # Fallback: unknown objects count as one word; algorithms that send richer
    # objects should pass an explicit word count.
    return 1


@dataclass(frozen=True)
class Message:
    """A point-to-point message delivered at the next phase boundary.

    Attributes
    ----------
    sender, receiver:
        Node identifiers (0-based).
    kind:
        Short string tag used by the receiving algorithm to dispatch
        (e.g. ``"propose"``, ``"accept"``, ``"state"``).
    payload:
        Arbitrary picklable content.  Algorithms should keep payloads to
        plain scalars/tuples/ndarrays so the word counting stays meaningful.
    words:
        Number of words charged for this message (kind + payload by default).
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None
    words: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.words < 0:
            object.__setattr__(self, "words", 1 + payload_words(self.payload))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message({self.sender}->{self.receiver}, kind={self.kind!r}, "
            f"words={self.words})"
        )
