"""The round-engine abstraction: interchangeable executors for the protocol.

The paper's algorithm is a synchronous round protocol — seeding, ``T``
averaging rounds over random matchings, then a local query — and this module
defines the *engine* contract for executing those rounds, extracted from the
original design in which :class:`~repro.distsim.network.SynchronousNetwork`
was the only executor.  Two interchangeable backends implement it (in
:mod:`repro.core.engines`):

``message-passing``
    The faithful per-node simulator built on :class:`SynchronousNetwork`:
    one isolated :class:`~repro.distsim.node.NodeContext` per node, real
    message queues, exact communication accounting and failure injection.
    Fidelity over speed.

``vectorized``
    The array backend: one round is a batched random-matching draw plus a
    fancy-indexed averaging over all seed dimensions at once.  No message
    objects exist, so no communication log — but runs are orders of
    magnitude faster and scale to ``n = 10^5`` and beyond.

Both backends finish with the same observable outcome — the final ``(n, s)``
load configuration together with the seed set that generated it — captured
in :class:`EngineResult`.  Everything downstream (query, result assembly,
scoring) is backend-agnostic and lives in :mod:`repro.core.engines`.

A tiny registry maps backend names to factories so drivers, the CLI and the
evaluation runner can select a backend by string without importing concrete
engine classes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .accounting import CommunicationLog
from .tracing import SimulationTrace

__all__ = [
    "EngineResult",
    "RoundEngine",
    "RoundCallback",
    "register_engine",
    "available_engines",
    "get_engine_factory",
]

#: Observer invoked after every averaging round with ``(round_index, loads)``
#: where ``loads`` is a snapshot of the current ``(n, s)`` configuration
#: (safe to keep across rounds).
RoundCallback = Callable[[int, np.ndarray], None]


@dataclass
class EngineResult:
    """Backend-agnostic outcome of one protocol execution.

    Attributes
    ----------
    rounds_executed:
        Number of averaging rounds actually run.
    loads:
        Final ``(n, s)`` load configuration.  The per-node backend
        reconstructs it from the node states (a real deployment would not);
        the array backend produces it natively.
    seeds:
        Node ids of the active seed nodes, in ascending order (= column
        order of ``loads``).
    seed_ids:
        Random identifier (prefix) of each seed, aligned with ``seeds``.
    matched_edges_per_round:
        Number of matched pairs in each round.
    labels / unlabelled:
        Per-node query outcome when the backend computed it locally (the
        message-passing nodes run the query themselves); ``None`` when the
        driver should apply the query centrally from ``loads``.
    communication:
        Exact message log — message-passing backend only.
    trace:
        Per-round simulator trace — message-passing backend only.
    metadata:
        Free-form provenance (backend name, seed entropy, config, ...).
    """

    rounds_executed: int
    loads: np.ndarray
    seeds: np.ndarray
    seed_ids: np.ndarray
    matched_edges_per_round: list[int] = field(default_factory=list)
    labels: np.ndarray | None = None
    unlabelled: np.ndarray | None = None
    communication: CommunicationLog | None = None
    trace: SimulationTrace | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def num_seeds(self) -> int:
        return int(np.asarray(self.seeds).size)


class RoundEngine(ABC):
    """Executes seeding + averaging rounds of the load-balancing protocol.

    An engine is constructed for one ``(graph, parameters)`` pair and run
    once; :meth:`run` returns an :class:`EngineResult` from which the driver
    assembles the user-facing clustering result.  Engines are free to choose
    *how* rounds execute (per-node messages, array updates, ...) but must
    implement the same protocol distribution: the statistical parity of the
    backends is part of the test-suite contract.
    """

    #: Registry name of the backend (subclasses override).
    name: str = "abstract"

    #: ``True`` when the backend computes per-node labels itself (fills
    #: ``EngineResult.labels``), so a driver-level query fallback request
    #: cannot override the engine's configured policy; ``False`` when the
    #: query runs centrally at result assembly.
    labels_locally: bool = False

    @abstractmethod
    def run(self, *, round_callback: RoundCallback | None = None) -> EngineResult:
        """Execute the full protocol; ``round_callback`` observes each round."""

    def _claim_single_use(self) -> None:
        """Enforce the run-once contract (call at the top of :meth:`run`).

        An engine's random streams and node states are consumed by a run; a
        second :meth:`run` would silently continue from the consumed state
        and produce non-reproducible results, so it is an error.  Drivers
        constructing engines by name get a fresh engine per run and never
        hit this.
        """
        if getattr(self, "_engine_ran", False):
            raise RuntimeError(
                "this round engine has already run; engines are single-use — "
                "construct a fresh one for another run"
            )
        self._engine_ran = True


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #

_ENGINE_FACTORIES: dict[str, Callable[..., RoundEngine]] = {}


def register_engine(name: str, factory: Callable[..., RoundEngine], *, aliases: tuple[str, ...] = ()) -> None:
    """Register an engine factory under ``name`` (and optional aliases)."""
    for key in (name, *aliases):
        _ENGINE_FACTORIES[key] = factory


def available_engines() -> list[str]:
    """Sorted list of registered backend names (including aliases)."""
    return sorted(_ENGINE_FACTORIES)


def get_engine_factory(name: str) -> Callable[..., RoundEngine]:
    """Look up a registered engine factory by name.

    The concrete backends register themselves when :mod:`repro.core.engines`
    is imported; going through :func:`repro.core.engines.make_engine` (or
    importing :mod:`repro.core`) guarantees that has happened.
    """
    try:
        return _ENGINE_FACTORIES[name]
    except KeyError:
        known = ", ".join(available_engines()) or "<none registered>"
        raise ValueError(f"unknown round engine {name!r}; available: {known}") from None
