"""The node-side programming model of the simulator.

An algorithm is written once as a :class:`NodeAlgorithm` subclass describing
what a *single node* does in each phase of each synchronous round, exactly as
one would implement it on a real processor:

* a node only sees its own identifier, its degree, the identifiers of its
  neighbours, its private random stream and its local state;
* it communicates exclusively by sending messages through
  :meth:`NodeContext.send`, which are delivered at the next phase boundary;
* global quantities (the number of nodes ``n`` and, where the paper assumes
  them known, the balance parameter ``β`` and the round budget ``T``) are
  provided as *configuration*, mirroring the paper's "known threshold β" and
  fixed ``T``.

The simulator (:class:`repro.distsim.network.SynchronousNetwork`) drives all
nodes phase by phase.  Because the per-node API never exposes other nodes'
state, the communication accounting of the simulator is an exact measure of
what a real message-passing implementation would send.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from .messages import Message

__all__ = ["NodeContext", "NodeAlgorithm"]


class NodeContext:
    """Per-node view of the system handed to :class:`NodeAlgorithm` hooks.

    Instances are created by the network simulator; algorithms never build
    them directly.
    """

    __slots__ = ("node_id", "n", "degree", "neighbours", "rng", "state", "_outbox", "config")

    def __init__(
        self,
        node_id: int,
        n: int,
        neighbours: np.ndarray,
        rng: np.random.Generator,
        config: dict[str, Any],
    ):
        self.node_id = int(node_id)
        self.n = int(n)
        self.neighbours = neighbours
        self.degree = int(neighbours.size)
        self.rng = rng
        self.config = config
        self.state: dict[str, Any] = {}
        self._outbox: list[Message] = []

    # ------------------------------------------------------------------ #
    # Communication
    # ------------------------------------------------------------------ #

    def send(self, receiver: int, kind: str, payload: Any = None, *, words: int | None = None) -> None:
        """Queue a message for delivery at the next phase boundary.

        ``receiver`` must be a neighbour of this node (the algorithm runs on
        the communication graph; sending to arbitrary nodes would be
        cheating).  ``words`` overrides the automatic word count.
        """
        receiver = int(receiver)
        if receiver != self.node_id and receiver not in self.neighbours:
            raise ValueError(
                f"node {self.node_id} attempted to message non-neighbour {receiver}"
            )
        self._outbox.append(
            Message(
                sender=self.node_id,
                receiver=receiver,
                kind=kind,
                payload=payload,
                words=-1 if words is None else int(words),
            )
        )

    def random_neighbour(self) -> int:
        """Draw a uniformly random neighbour using the node's own stream."""
        if self.degree == 0:
            raise ValueError(f"node {self.node_id} has no neighbours")
        return int(self.neighbours[self.rng.integers(self.degree)])

    # ------------------------------------------------------------------ #
    # Simulator-facing helpers
    # ------------------------------------------------------------------ #

    def drain_outbox(self) -> list[Message]:
        out = self._outbox
        self._outbox = []
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeContext(id={self.node_id}, degree={self.degree})"


class NodeAlgorithm(ABC):
    """Behaviour of a single node in a synchronous message-passing algorithm.

    Subclasses implement the three hooks below.  One *round* consists of the
    phases returned by :meth:`phases`, executed in order; messages sent in
    phase ``i`` are delivered to their recipients at the start of phase
    ``i + 1`` (messages sent in the last phase of a round are delivered in
    the first phase of the next round).
    """

    @abstractmethod
    def phases(self) -> Sequence[str]:
        """Names of the phases making up one synchronous round."""

    @abstractmethod
    def initialise(self, node: NodeContext) -> None:
        """Set up the node's local state before round 0."""

    @abstractmethod
    def run_phase(
        self, node: NodeContext, round_index: int, phase: str, inbox: list[Message]
    ) -> None:
        """Execute one phase at one node.

        ``inbox`` contains exactly the messages addressed to this node that
        were sent during the previous phase.
        """

    def finalise(self, node: NodeContext) -> None:
        """Optional post-processing after the last round (e.g. the query step)."""

    # Optional hook: simulators call this to let the algorithm report whether
    # it has converged early (all-node conjunction).  Default: never.
    def has_converged(self, node: NodeContext) -> bool:
        return False
