"""Deterministic per-node random number streams.

Every simulated node draws randomness from its own
:class:`numpy.random.Generator`, spawned from a single root seed with
``SeedSequence.spawn``.  This gives three properties the experiments rely on:

* **Reproducibility** — a simulation is fully determined by
  ``(graph, algorithm, seed)``.
* **Independence** — streams of different nodes are statistically
  independent, mirroring real distributed deployments where every processor
  has its own entropy source.
* **Schedule invariance** — the values a node draws do not depend on the
  order in which the simulator iterates over nodes, so refactoring the
  simulator cannot silently change experimental results.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NodeRngFactory"]


class NodeRngFactory:
    """Factory producing one independent random stream per node.

    Parameters
    ----------
    seed:
        Root seed (or an existing :class:`numpy.random.SeedSequence`).
    n:
        Number of nodes; streams are created lazily but bounds-checked
        against this value.
    """

    def __init__(self, seed: int | np.random.SeedSequence | None, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        self._n = n
        # Spawn one child sequence per node plus one extra stream reserved for
        # the simulator itself (e.g. failure injection), so node streams are
        # never perturbed by simulator-level randomness.
        children = self._root.spawn(n + 1)
        self._node_sequences = children[:n]
        self._simulator_sequence = children[n]
        self._cache: dict[int, np.random.Generator] = {}
        self._simulator_rng: np.random.Generator | None = None

    @property
    def n(self) -> int:
        return self._n

    @property
    def root_entropy(self) -> tuple:
        """The root entropy, recorded by experiment metadata for provenance."""
        return tuple(np.atleast_1d(self._root.entropy).tolist())

    def for_node(self, node_id: int) -> np.random.Generator:
        """The dedicated generator of ``node_id`` (cached, stable identity)."""
        if not 0 <= node_id < self._n:
            raise IndexError(f"node id {node_id} out of range [0, {self._n})")
        if node_id not in self._cache:
            self._cache[node_id] = np.random.default_rng(self._node_sequences[node_id])
        return self._cache[node_id]

    def for_simulator(self) -> np.random.Generator:
        """Generator reserved for simulator-level decisions (failures etc.)."""
        if self._simulator_rng is None:
            self._simulator_rng = np.random.default_rng(self._simulator_sequence)
        return self._simulator_rng
