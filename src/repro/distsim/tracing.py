"""Lightweight per-round traces of a simulation.

Traces record *what happened* each round (messages, words, drops, custom
per-round observations) without retaining the messages themselves, so they
stay cheap even for long runs.  Benchmarks use traces to plot per-round error
curves (E6) and communication profiles (E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RoundTrace", "SimulationTrace"]


@dataclass
class RoundTrace:
    """Summary of one round."""

    round_index: int
    phases_executed: int = 0
    messages: int = 0
    words: int = 0
    dropped_messages: int = 0
    observations: dict[str, Any] = field(default_factory=dict)


class SimulationTrace:
    """Ordered collection of :class:`RoundTrace` objects."""

    def __init__(self) -> None:
        self._rounds: list[RoundTrace] = []

    def append(self, round_trace: RoundTrace) -> None:
        self._rounds.append(round_trace)

    def __len__(self) -> int:
        return len(self._rounds)

    def __getitem__(self, index: int) -> RoundTrace:
        return self._rounds[index]

    def __iter__(self):
        return iter(self._rounds)

    def observe(self, round_index: int, key: str, value: Any) -> None:
        """Attach a custom observation to a round (used by round callbacks)."""
        self._rounds[round_index].observations[key] = value

    def series(self, key: str) -> np.ndarray:
        """Extract an observation series across rounds (NaN where missing)."""
        return np.asarray(
            [r.observations.get(key, np.nan) for r in self._rounds], dtype=np.float64
        )

    def words_series(self) -> np.ndarray:
        return np.asarray([r.words for r in self._rounds], dtype=np.int64)

    def messages_series(self) -> np.ndarray:
        return np.asarray([r.messages for r in self._rounds], dtype=np.int64)

    def dropped_series(self) -> np.ndarray:
        return np.asarray([r.dropped_messages for r in self._rounds], dtype=np.int64)
