"""Command-line interface.

Four subcommands cover the workflow a downstream user actually has:

``generate``
    Write a synthetic well-clustered instance (edge list + ground-truth
    labels) to disk.
``analyse``
    Print the structural diagnostics of a graph/partition pair: degrees,
    conductances, eigenvalue gap, Υ and the prescribed round count ``T``.
    Accepts an edge-list file or a sharded cache-entry directory; with
    ``--mmap`` the entry stays memory-mapped and the structural and
    spectral diagnostics run streamed — matrix-free Lanczos over the
    storage's row blocks for the spectral quantities, union-find over the
    same blocks for connectivity, and one blocked
    :func:`~repro.graphs.conductance.partition_cut_metrics` sweep for the
    per-cluster conductances of a supplied partition — so the full pass
    analyses n = 10⁷ instances without ever materialising the adjacency.
``cluster``
    Run the paper's algorithm (centralised, distributed or adaptive engine)
    on an edge-list file and write one label per node; optionally score the
    result against a ground-truth label file.
``sweep``
    Run a full experiment sweep (generated instance family × algorithms ×
    trials) through the evaluation runner, optionally fanning trials across
    worker processes (``--workers``), re-loading instances from the
    on-disk cache (``--cache-dir``) and serving them **memory-mapped**
    (``--mmap``: workers share adjacency pages instead of holding private
    copies, and the engine's row-blocked rounds keep the resident set
    O(block)).  Robustness sweeps inject failures into the paper's algorithm
    with ``--drop-prob``/``--crash-prob`` (round-engine backends only).
    See ``docs/experiments.md``.
``cache``
    Inspect (``cache list``) or size-bound (``cache prune --max-bytes``)
    an instance-cache directory; pruning evicts least-recently-used
    entries first.  Listing shows each entry's sibling label store and
    pruning counts label bytes toward the budget.
``serve`` / ``submit`` / ``jobs`` / ``query``
    The clustering service (:mod:`repro.service`): ``serve`` runs the
    stdlib REST frontend plus worker agents over a SQLite job store,
    ``submit`` enqueues a digest-addressed sweep (via ``--url`` to a
    running service, or ``--db`` straight into the store — add ``--run``
    to drain it inline), ``jobs`` shows per-job task states, and
    ``query`` answers the paper's primitive — "which cluster is node v
    in?" — from the precomputed mmap label store of an instance digest,
    without rebuilding the graph or re-running any clustering.

Examples
--------
::

    python -m repro generate sbm --n 400 --k 4 --p-in 0.3 --p-out 0.01 \
        --out graph.edges --labels-out truth.txt --seed 1
    python -m repro generate sbm --n 1000000 --k 4 --seed 1 \
        --cache-dir .instance-cache --shard-size 4000000
    python -m repro analyse graph.edges --labels truth.txt
    python -m repro analyse .instance-cache/planted_partition-0123abcd.csr --mmap
    python -m repro cluster graph.edges --k 4 --engine centralized \
        --out labels.txt --truth truth.txt
    python -m repro cluster graph.edges --k 4 --engine distributed \
        --backend vectorized --out labels.txt
    python -m repro cluster graph.edges --k 4 --engine distributed \
        --backend parallel --threads 8 --out labels.txt
    python -m repro sweep sbm --sizes 400 800 1600 --k 4 --p-in 0.3 \
        --p-out 0.01 --trials 5 --workers 8 --cache-dir .instance-cache \
        --mmap --json sweep.json
    python -m repro cache list .instance-cache
    python -m repro cache prune .instance-cache --max-bytes 2G
    python -m repro serve --db jobs.sqlite --cache-dir .instance-cache --port 8750
    python -m repro submit sbm --sizes 400 --k 4 --trials 2 --keep-labels \
        --url http://127.0.0.1:8750 --wait 120
    python -m repro jobs --url http://127.0.0.1:8750
    python -m repro query 0123abcd4567ef89 0 17 42 --url http://127.0.0.1:8750
    python -m repro query 0123abcd4567ef89 0 --cache-dir .instance-cache --seed 873
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser", "parse_size"]

_SIZE_SUFFIXES = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}


def parse_size(text: str) -> int:
    """Parse a byte count like ``500M``, ``2G`` or ``1048576`` into bytes."""
    raw = text.strip().upper().removesuffix("B")
    suffix = raw[-1:] if raw[-1:] in _SIZE_SUFFIXES and not raw[-1:].isdigit() else ""
    number = raw[: len(raw) - len(suffix)] if suffix else raw
    try:
        value = float(number)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r}: expected e.g. 500M, 2G or a plain byte count"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be non-negative, got {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def _format_bytes(nbytes: int) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")  # pragma: no cover


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed graph clustering by load balancing (Sun & Zanetti, SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # generate ----------------------------------------------------------
    gen = sub.add_parser("generate", help="generate a synthetic clustered instance")
    gen.add_argument(
        "family",
        choices=["sbm", "cliques", "expanders", "lfr"],
        help="instance family",
    )
    gen.add_argument("--n", type=int, default=200, help="number of nodes (sbm/lfr)")
    gen.add_argument("--k", type=int, default=4, help="number of clusters")
    gen.add_argument("--cluster-size", type=int, default=25, help="cluster size (cliques/expanders)")
    gen.add_argument("--degree", type=int, default=8, help="internal degree (expanders) / average degree (lfr)")
    gen.add_argument("--p-in", type=float, default=0.3, help="intra-cluster edge probability (sbm)")
    gen.add_argument("--p-out", type=float, default=0.01, help="inter-cluster edge probability (sbm)")
    gen.add_argument("--mu", type=float, default=0.1, help="mixing parameter (lfr)")
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", type=Path, default=None, help="edge-list output path")
    gen.add_argument("--labels-out", type=Path, default=None, help="ground-truth labels output path")
    gen.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="also (or instead) write the instance into this cache as a sharded v2 entry",
    )
    gen.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="arcs per indices shard for the sharded cache entry (default 4M = 32 MB)",
    )

    # analyse -----------------------------------------------------------
    ana = sub.add_parser("analyse", help="print structural diagnostics of a graph")
    ana.add_argument(
        "graph",
        type=Path,
        help=(
            "edge-list file, or a sharded cache-entry directory "
            "({generator}-{digest}.csr/ as written by `generate --cache-dir`)"
        ),
    )
    ana.add_argument("--labels", type=Path, default=None, help="partition file to analyse against")
    ana.add_argument("--k", type=int, default=None, help="number of clusters (if no labels given)")
    ana.add_argument(
        "--mmap",
        action="store_true",
        help=(
            "keep a sharded entry memory-mapped instead of materialising it: "
            "the spectral diagnostics run matrix-free Lanczos and the "
            "connectivity check streamed union-find, both over the storage's "
            "row blocks, so the adjacency is never materialised"
        ),
    )

    # cluster -----------------------------------------------------------
    clu = sub.add_parser("cluster", help="run the load-balancing clustering algorithm")
    clu.add_argument("graph", type=Path, help="edge-list file")
    clu.add_argument("--k", type=int, default=None, help="target number of clusters")
    clu.add_argument("--beta", type=float, default=None, help="balance lower bound β")
    clu.add_argument("--rounds", type=int, default=None, help="override the round count T")
    clu.add_argument(
        "--engine",
        choices=["centralized", "distributed", "adaptive"],
        default="centralized",
        help="implementation to run",
    )
    clu.add_argument(
        "--backend",
        choices=["message-passing", "vectorized", "parallel"],
        default="message-passing",
        help=(
            "round-engine backend for --engine distributed: 'message-passing' "
            "simulates every node with exact communication accounting, "
            "'vectorized' executes whole rounds as array operations "
            "(orders of magnitude faster, no message log), 'parallel' runs "
            "fused multi-core kernels (optional numba; falls back to "
            "'vectorized' with a warning when numba is missing)"
        ),
    )
    clu.add_argument(
        "--threads",
        type=int,
        default=None,
        help=(
            "compute threads for --backend parallel (default: the full "
            "thread pool); results are bit-identical at any thread count"
        ),
    )
    clu.add_argument("--seed", type=int, default=None)
    clu.add_argument("--out", type=Path, default=None, help="write one label per node to this file")
    clu.add_argument("--truth", type=Path, default=None, help="ground-truth labels to score against")

    # sweep -------------------------------------------------------------
    swp = sub.add_parser(
        "sweep",
        help="run an experiment sweep (instances x algorithms x trials), optionally in parallel",
    )
    swp.add_argument(
        "family",
        choices=["sbm", "cliques", "expanders"],
        help="generated instance family to sweep over",
    )
    swp.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[400, 800],
        help="swept sizes: n per instance (sbm) or cluster size (cliques/expanders)",
    )
    swp.add_argument("--k", type=int, default=4, help="number of clusters")
    swp.add_argument("--p-in", type=float, default=0.3, help="intra-cluster edge probability (sbm)")
    swp.add_argument("--p-out", type=float, default=0.01, help="inter-cluster edge probability (sbm)")
    swp.add_argument("--degree", type=int, default=8, help="internal degree (expanders)")
    swp.add_argument(
        "--algorithms",
        nargs="+",
        default=["ours"],
        choices=["ours", "spectral", "label-propagation"],
        help="algorithms to run on every instance",
    )
    swp.add_argument(
        "--backend",
        choices=["centralized", "vectorized", "message-passing", "parallel"],
        default="vectorized",
        help="execution backend for the paper's algorithm ('ours')",
    )
    swp.add_argument(
        "--threads",
        type=int,
        default=None,
        help=(
            "compute threads per trial for --backend parallel; combine with "
            "--workers carefully (each worker process runs this many threads)"
        ),
    )
    swp.add_argument(
        "--drop-prob",
        type=float,
        default=0.0,
        help=(
            "message-drop probability for failure injection into the paper's "
            "algorithm (round-engine backends only; 0 = reliable network)"
        ),
    )
    swp.add_argument(
        "--crash-prob",
        type=float,
        default=0.0,
        help=(
            "fraction of nodes that crash permanently (round-engine backends "
            "only; 0 = no crashes)"
        ),
    )
    swp.add_argument(
        "--crash-round",
        type=int,
        default=0,
        help="round at which the --crash-prob crash set goes down (default 0)",
    )
    swp.add_argument("--trials", type=int, default=3, help="independent trials per (instance, algorithm)")
    swp.add_argument("--seed", type=int, default=0, help="base seed for the trial-seed digests")
    swp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the trial grid (1 = in-process serial executor)",
    )
    swp.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="instance-cache directory; instances re-load in ~100 ms on later sweeps",
    )
    swp.add_argument(
        "--mmap",
        action="store_true",
        help=(
            "serve instances memory-mapped from sharded cache entries (requires "
            "--cache-dir): a cold sbm entry is generated straight into its "
            "shards (streamed, O(n + block) peak RSS), worker processes share "
            "adjacency pages instead of private copies, and the vectorized and "
            "parallel engines run row-blocked round loops so the per-round "
            "resident set is O(block), not O(m); records are bit-identical to "
            "the dense path"
        ),
    )
    swp.add_argument(
        "--block-size",
        type=int,
        default=None,
        help=(
            "rows per adjacency block in the vectorized engine's round loop "
            "(default: auto — unblocked for in-RAM instances, shard-aligned "
            "for --mmap instances; the parallel engine always shard-aligns "
            "its blocked kernels on --mmap instances)"
        ),
    )
    swp.add_argument(
        "--structural",
        action="store_true",
        help=(
            "additionally score each trial's prediction label-free: worst "
            "per-cluster conductance and normalised cut, computed in one "
            "streamed O(m + k) sweep per trial (works with --mmap; adds the "
            "max_conductance and normalized_cut table columns)"
        ),
    )
    swp.add_argument("--json", type=Path, default=None, help="write per-trial records to this JSON file")

    # cache -------------------------------------------------------------
    cache = sub.add_parser(
        "cache", help="inspect or prune an on-disk instance-cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_list = cache_sub.add_parser("list", help="list cache entries, most recently used first")
    cache_list.add_argument("cache_dir", type=Path, help="cache directory to inspect")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries until the cache fits a byte budget"
    )
    cache_prune.add_argument("cache_dir", type=Path, help="cache directory to prune")
    cache_prune.add_argument(
        "--max-bytes",
        type=parse_size,
        required=True,
        help="target size, e.g. 500M or 2G (suffixes K/M/G/T, powers of 1024)",
    )
    cache_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="only report what would be evicted",
    )

    # service: serve / submit / jobs / query ----------------------------
    srv = sub.add_parser(
        "serve",
        help="run the clustering service: REST frontend + worker agents over a job store",
    )
    srv.add_argument("--db", type=Path, required=True, help="SQLite job-store database path")
    srv.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="instance-cache directory: where workers resolve instances and write label stores",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    srv.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 (default) picks a free one and prints it",
    )
    srv.add_argument(
        "--workers", type=int, default=1, help="background worker threads draining the store"
    )

    smt = sub.add_parser(
        "submit",
        help="submit a sweep to the service (via --url) or straight into a job store (via --db)",
    )
    smt.add_argument(
        "family", choices=["sbm", "cliques", "expanders"], help="instance family to sweep"
    )
    smt.add_argument("--sizes", type=int, nargs="+", default=[400, 800], help="swept sizes")
    smt.add_argument("--k", type=int, default=4, help="number of clusters")
    smt.add_argument("--p-in", type=float, default=0.3, help="intra-cluster edge probability (sbm)")
    smt.add_argument("--p-out", type=float, default=0.01, help="inter-cluster edge probability (sbm)")
    smt.add_argument("--degree", type=int, default=8, help="internal degree (expanders)")
    smt.add_argument(
        "--algorithms",
        nargs="+",
        default=["ours"],
        choices=["ours", "spectral", "label-propagation"],
        help="algorithms to run on every instance",
    )
    smt.add_argument(
        "--backend",
        choices=["centralized", "vectorized", "message-passing", "parallel"],
        default="vectorized",
        help="execution backend for the paper's algorithm ('ours')",
    )
    smt.add_argument("--trials", type=int, default=1, help="independent trials per (instance, algorithm)")
    smt.add_argument("--seed", type=int, default=0, help="base seed for the trial-seed digests")
    smt.add_argument("--mmap", action="store_true", help="resolve instances memory-mapped on the workers")
    smt.add_argument("--structural", action="store_true", help="add label-free cut metrics per trial")
    smt.add_argument(
        "--keep-labels",
        action="store_true",
        help="persist each trial's predicted labels into the digest's mmap label store",
    )
    smt.add_argument("--url", default=None, help="service base URL, e.g. http://127.0.0.1:8750")
    smt.add_argument("--db", type=Path, default=None, help="submit directly into this job-store database")
    smt.add_argument(
        "--run",
        action="store_true",
        help="with --db: drain the job inline with a local worker before returning",
    )
    smt.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="with --db --run: cache directory for the inline worker",
    )
    smt.add_argument(
        "--wait",
        type=float,
        default=None,
        help="with --url: poll until the job is done (seconds of timeout)",
    )

    jbs = sub.add_parser("jobs", help="list the service's jobs and their task states")
    jbs.add_argument("--url", default=None, help="service base URL")
    jbs.add_argument("--db", type=Path, default=None, help="read a job-store database directly")

    qry = sub.add_parser(
        "query",
        help="answer 'which cluster is node v in?' from a precomputed mmap label store",
    )
    qry.add_argument("digest", help="instance digest (see `repro cache list` / `repro jobs`)")
    qry.add_argument("nodes", type=int, nargs="+", help="node ids to look up")
    qry.add_argument("--url", default=None, help="service base URL")
    qry.add_argument(
        "--cache-dir", type=Path, default=None, help="query a local cache directory directly"
    )
    qry.add_argument("--algorithm", default=None, help="algorithm whose labels to read")
    qry.add_argument("--seed", type=int, default=None, help="trial seed whose labels to read")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graphs import (
        cached_instance,
        instance_shard_dir,
        write_edge_list,
        write_partition,
    )

    if args.out is None and args.cache_dir is None:
        print("error: need --out and/or --cache-dir", file=sys.stderr)
        return 2
    if args.shard_size is not None and args.cache_dir is None:
        print("error: --shard-size requires --cache-dir", file=sys.stderr)
        return 2

    if args.family == "sbm":
        generator = "planted_partition"
        params = dict(
            n=args.n, k=args.k, p_in=args.p_in, p_out=args.p_out, ensure_connected=True
        )
    elif args.family == "cliques":
        generator = "cycle_of_cliques"
        params = dict(k=args.k, clique_size=args.cluster_size)
    elif args.family == "expanders":
        generator = "ring_of_expanders"
        params = dict(k=args.k, cluster_size=args.cluster_size, d=args.degree)
    else:
        generator = "lfr_benchmark"
        params = dict(n=args.n, mu=args.mu, average_degree=args.degree)

    # Routing generation through the cache layer means --cache-dir gets a
    # re-usable sharded (v2) entry as a side effect; without it the call is
    # a plain pass-through to the generator.
    instance = cached_instance(
        generator,
        seed=args.seed,
        cache_dir=args.cache_dir,
        mmap=args.cache_dir is not None,
        shard_arcs=args.shard_size,
        **params,
    )
    if args.cache_dir is not None:
        entry = instance_shard_dir(args.cache_dir, generator, params, args.seed)
        shards = instance.graph.storage.num_shards
        print(f"cached {instance.graph} at {entry} ({shards} shard(s))")

    if args.out is not None:
        write_edge_list(instance.graph, args.out)
        print(f"wrote {instance.graph} to {args.out}")
    if args.labels_out is not None:
        write_partition(instance.partition, args.labels_out)
        print(f"wrote ground-truth labels (k={instance.partition.k}) to {args.labels_out}")
    return 0


def _load_analyse_graph(path: Path, *, mmap: bool):
    """Resolve the ``analyse`` graph argument: edge list or sharded entry.

    Returns ``(graph, labels)`` where ``labels`` is the entry's ground-truth
    label array when the argument is a cache entry that carries one
    (``labels.npy``), else ``None``.
    """
    from .graphs import open_shard_entry, read_edge_list
    from .graphs.store import MANIFEST_NAME

    if path.is_dir():
        if (path / MANIFEST_NAME).is_file():
            graph, labels, _ = open_shard_entry(path, mmap=mmap)
            return graph, labels
        raise SystemExit(
            f"error: {path} is a directory but not a sharded cache entry "
            f"(no {MANIFEST_NAME}); expected an edge-list file or a "
            "{generator}-{digest}.csr/ entry directory"
        )
    if mmap:
        raise SystemExit(
            f"error: --mmap needs a sharded cache-entry directory, got {path} "
            "(create one with `repro generate ... --cache-dir`)"
        )
    return read_edge_list(path), None


def _cmd_analyse(args: argparse.Namespace) -> int:
    from .graphs import (
        Partition,
        analyse_cluster_structure,
        cluster_conductances,
        read_partition,
    )

    graph, entry_labels = _load_analyse_graph(args.graph, mmap=args.mmap)
    print(f"graph      : {graph}" + (" [mmap]" if args.mmap else ""))
    print(f"degree     : min={graph.min_degree} max={graph.max_degree} ratio={graph.degree_ratio():.2f}")
    print(f"connected  : {graph.is_connected()}")
    if args.labels is None and args.k is None and entry_labels is None:
        return 0
    if args.labels is not None or (entry_labels is not None and args.k is None):
        if args.labels is not None:
            partition = read_partition(args.labels)
        else:
            partition = Partition(entry_labels)
            print("labels     : ground truth from cache entry (labels.npy)")
        report = analyse_cluster_structure(graph, partition)
        phis = cluster_conductances(graph, partition)
        print(f"clusters   : k={partition.k} sizes={partition.sizes.tolist()}")
        print(f"conductance: max={phis.max():.4f} (= rho(k) upper bound)")
        print(
            f"spectrum   : lambda_k={report.lambda_k:.4f} lambda_k+1={report.lambda_k_plus_1:.4f} "
            f"gap={report.gap:.4f}"
        )
        print(f"Upsilon    : {report.upsilon:.2f}")
        print(f"round count: T = {report.rounds_T}")
    else:
        from .graphs import cluster_gap, theoretical_round_count

        print(f"gap 1-lambda_{{k+1}} : {cluster_gap(graph, args.k):.4f}")
        print(f"round count T       : {theoretical_round_count(graph, args.k)}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .core import (
        AdaptiveClustering,
        AlgorithmParameters,
        CentralizedClustering,
        DistributedClustering,
    )
    from .graphs import read_edge_list, read_partition

    graph = read_edge_list(args.graph)
    # Incompatible engine/backend combinations are errors, not warnings: a
    # silently ignored --backend (or --threads) means the user measured a
    # different engine than they asked for.
    if args.engine != "distributed" and args.backend != "message-passing":
        print(
            f"error: --backend {args.backend} only applies to --engine distributed "
            f"(the {args.engine} engine has no round-engine backend)",
            file=sys.stderr,
        )
        return 2
    if args.threads is not None and args.backend != "parallel":
        print(
            f"error: --threads only applies to --backend parallel "
            f"(the {args.backend} backend has no thread knob)",
            file=sys.stderr,
        )
        return 2
    if args.engine == "adaptive":
        if args.beta is None and args.k is None:
            print("error: the adaptive engine needs --beta or --k", file=sys.stderr)
            return 2
        beta = args.beta if args.beta is not None else 1.0 / (2.0 * args.k)
        result = AdaptiveClustering(graph, beta=beta, seed=args.seed).run()
    else:
        if args.k is None:
            print("error: --k is required for the centralized/distributed engines", file=sys.stderr)
            return 2
        params = AlgorithmParameters.from_graph(graph, args.k, beta=args.beta)
        if args.rounds is not None:
            params = params.with_rounds(args.rounds)
        if args.engine == "centralized":
            result = CentralizedClustering(graph, params, seed=args.seed).run(keep_loads=False)
        else:
            engine_options = {} if args.threads is None else {"threads": args.threads}
            result = DistributedClustering(
                graph, params, seed=args.seed, backend=args.backend, **engine_options
            ).run()

    print(
        f"clustered {graph.n} nodes: {result.num_clusters_found} clusters, "
        f"{result.num_seeds} seeds, {result.rounds} rounds, "
        f"{result.num_unlabelled} below-threshold nodes"
    )
    if result.communication is not None:
        print(f"communication: {result.communication.total_words} words "
              f"({result.communication.total_messages} messages)")

    if args.out is not None:
        np.savetxt(args.out, result.partition.labels, fmt="%d")
        print(f"wrote labels to {args.out}")

    if args.truth is not None:
        truth = read_partition(args.truth)
        error = result.error_against(truth)
        print(f"misclassification vs ground truth: {error:.4f} "
              f"({result.misclassified_against(truth)} / {truth.n} nodes)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .baselines import LabelPropagation, SpectralClustering
    from .evaluation import (
        evaluate_baseline,
        evaluate_load_balancing_clustering,
        run_trials,
        sweep,
    )
    from .distsim import make_failure_model
    from .graphs import cached_instance

    cache_dir = None if args.cache_dir is None else str(args.cache_dir)
    if args.mmap and cache_dir is None:
        print("error: --mmap requires --cache-dir (the mapped entry lives there)", file=sys.stderr)
        return 2
    if args.threads is not None and args.backend != "parallel":
        print(
            f"error: --threads only applies to --backend parallel "
            f"(the {args.backend} backend has no thread knob)",
            file=sys.stderr,
        )
        return 2
    failures = make_failure_model(
        drop_probability=args.drop_prob,
        crash_fraction=args.crash_prob,
        crash_round=args.crash_round,
    )
    if failures is not None and args.backend == "centralized":
        print(
            "error: --drop-prob/--crash-prob need a round-engine backend "
            "(the centralized driver has no message layer to fail)",
            file=sys.stderr,
        )
        return 2
    mmap = bool(args.mmap)
    if args.family == "sbm":
        def make_instance(n: int, cache_dir: str | None = None):
            return cached_instance(
                "planted_partition",
                n=n, k=args.k, p_in=args.p_in, p_out=args.p_out,
                ensure_connected=True, seed=args.seed + n, cache_dir=cache_dir,
                mmap=mmap,
            )
    elif args.family == "cliques":
        def make_instance(size: int, cache_dir: str | None = None):
            return cached_instance(
                "cycle_of_cliques",
                k=args.k, clique_size=size, seed=args.seed + size, cache_dir=cache_dir,
                mmap=mmap,
            )
    else:
        def make_instance(size: int, cache_dir: str | None = None):
            return cached_instance(
                "ring_of_expanders",
                k=args.k, cluster_size=size, d=args.degree,
                seed=args.seed + size, cache_dir=cache_dir,
                mmap=mmap,
            )

    structural = bool(args.structural)
    available = {
        "ours": lambda: evaluate_load_balancing_clustering(
            backend=args.backend, block_size=args.block_size, threads=args.threads,
            failures=failures, structural=structural,
        ),
        "spectral": lambda: evaluate_baseline(
            SpectralClustering(), structural=structural
        ),
        "label-propagation": lambda: evaluate_baseline(
            LabelPropagation(), structural=structural
        ),
    }
    algorithms = {name: available[name]() for name in args.algorithms}

    instances = list(sweep(args.sizes, make_instance, key="size", cache_dir=cache_dir))
    result = run_trials(
        instances,
        algorithms,
        trials=args.trials,
        base_seed=args.seed,
        executor="serial" if args.workers <= 1 else "process",
        workers=args.workers,
    )
    columns = ["size", "algorithm", "trials", "error", "ari", "nmi", "rounds"]
    if structural:
        columns += ["max_conductance", "normalized_cut"]
    print(
        result.table(
            ["size", "algorithm"],
            columns,
            title=f"sweep: {args.family} x {args.algorithms} "
            f"({args.trials} trials, {args.workers} worker(s))",
        )
    )
    if args.json is not None:
        payload = [
            {"config": r.config, "trial": r.trial, "values": r.values}
            for r in result.records
        ]
        args.json.write_text(json.dumps(payload, indent=2, default=float))
        print(f"wrote {len(payload)} trial records to {args.json}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .evaluation import format_table
    from .graphs import list_cache, prune_cache

    if args.cache_command == "list":
        entries = list_cache(args.cache_dir)
        if not entries:
            print(f"no cache entries in {args.cache_dir}")
            return 0
        rows = [
            [
                e.generator,
                e.digest,
                e.kind,
                _format_bytes(e.nbytes),
                _format_bytes(e.nbytes if e.kind == "labels" else e.labels_nbytes)
                if e.labels_path is not None or e.kind == "labels"
                else "-",
                _format_bytes(e.total_nbytes),
            ]
            for e in entries
        ]
        print(
            format_table(
                ["generator", "digest", "format", "size", "labels", "total"],
                rows,
                title=f"{args.cache_dir}: {len(entries)} entries, "
                f"{_format_bytes(sum(e.total_nbytes for e in entries))} (MRU first)",
            )
        )
        return 0

    evicted = prune_cache(args.cache_dir, args.max_bytes, dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    freed = sum(e.total_nbytes for e in evicted)
    remaining = sum(e.total_nbytes for e in list_cache(args.cache_dir))
    print(
        f"{verb} {len(evicted)} entr{'y' if len(evicted) == 1 else 'ies'} "
        f"({_format_bytes(freed)}); cache now {_format_bytes(remaining)} "
        f"/ budget {_format_bytes(args.max_bytes)}"
    )
    for entry in evicted:
        print(f"  {verb}: {entry.path.name} ({_format_bytes(entry.total_nbytes)})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.app import serve

    serve(
        args.db,
        cache_dir=None if args.cache_dir is None else str(args.cache_dir),
        host=args.host,
        port=args.port,
        workers=args.workers,
    )
    return 0


def _submit_spec(args: argparse.Namespace) -> dict:
    spec: dict = {
        "family": args.family,
        "sizes": list(args.sizes),
        "k": args.k,
        "algorithms": list(args.algorithms),
        "trials": args.trials,
        "seed": args.seed,
        "backend": args.backend,
    }
    if args.family == "sbm":
        spec["p_in"], spec["p_out"] = args.p_in, args.p_out
    if args.family == "expanders":
        spec["degree"] = args.degree
    for flag in ("mmap", "structural", "keep_labels"):
        if getattr(args, flag):
            spec[flag] = True
    return spec


def _print_job_status(status: dict) -> None:
    print(
        f"job {status['id']}: {status['state']} "
        f"({status['done']}/{status['tasks']} done, "
        f"{status['failed']} failed)"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    if (args.url is None) == (args.db is None):
        print("error: pass exactly one of --url or --db", file=sys.stderr)
        return 2
    spec = _submit_spec(args)
    if args.url is not None:
        from .service.client import ServiceClient, ServiceError

        client = ServiceClient(args.url)
        try:
            status = client.submit(spec)
            if args.wait is not None:
                status = client.wait(status["job"], timeout=args.wait)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        _print_job_status(status)
        return 0

    from .service import JobStore, Worker, submit_sweep

    store = JobStore(args.db)
    job_id = submit_sweep(store, spec)
    if args.run:
        cache_dir = None if args.cache_dir is None else str(args.cache_dir)
        Worker(store, name="submit-inline", cache_dir=cache_dir).run_job(job_id)
    status = store.job_status(job_id)
    _print_job_status(status)
    return 0 if status["state"] != "failed" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    if (args.url is None) == (args.db is None):
        print("error: pass exactly one of --url or --db", file=sys.stderr)
        return 2
    if args.url is not None:
        from .service.client import ServiceClient, ServiceError

        try:
            jobs = ServiceClient(args.url).jobs()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        from .service import JobStore

        jobs = JobStore(args.db).list_jobs()
    if not jobs:
        print("no jobs")
        return 0
    from .evaluation import format_table

    rows = [
        [
            j["id"],
            j["spec"].get("family", j["spec"].get("kind", "?")),
            j["state"],
            j["tasks"],
            j["pending"],
            j["running"],
            j["done"],
            j["failed"],
        ]
        for j in jobs
    ]
    print(
        format_table(
            ["job", "family", "state", "tasks", "pending", "running", "done", "failed"],
            rows,
        )
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.url is None) == (args.cache_dir is None):
        print("error: pass exactly one of --url or --cache-dir", file=sys.stderr)
        return 2
    if args.url is not None:
        from .service.client import ServiceClient, ServiceError

        try:
            labels = ServiceClient(args.url).query(
                args.digest, args.nodes, algorithm=args.algorithm, seed=args.seed
            )
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        from .service import LabelStoreError, query_labels

        try:
            labels = query_labels(
                args.cache_dir,
                args.digest,
                args.nodes,
                algorithm=args.algorithm,
                seed=args.seed,
            ).tolist()
        except LabelStoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    for node, label in zip(args.nodes, labels):
        print(f"{node}\t{label}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "analyse":
        return _cmd_analyse(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "query":
        return _cmd_query(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
