"""Local clustering via approximate personalised PageRank (PageRank–Nibble).

The paper's Related Work contrasts its global, distributed algorithm with
*local* algorithms (Spielman–Teng, Oveis Gharan–Trevisan, Allen-Zhu et al.)
that find a single low-conductance set around a seed node in time
proportional to the volume of the output.  We implement the canonical
representative — Andersen–Chung–Lang PageRank–Nibble:

* :func:`approximate_personalized_pagerank` — the push algorithm with
  residual threshold ``epsilon``;
* :func:`pagerank_nibble` — sweep-cut rounding of the PPR vector;
* :class:`LocalClustering` — a k-cluster baseline that repeatedly extracts a
  low-conductance set from a random seed in the un-assigned remainder (the
  "run a local algorithm k times" strategy whose weaknesses the paper
  discusses).
"""

from __future__ import annotations

import numpy as np

from ..graphs.conductance import conductance, sweep_cut
from ..graphs.graph import Graph
from ..graphs.partition import Partition
from .base import BaselineClusterer, BaselineResult

__all__ = ["approximate_personalized_pagerank", "pagerank_nibble", "LocalClustering"]


def approximate_personalized_pagerank(
    graph: Graph,
    seed_node: int,
    *,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    max_pushes: int = 1_000_000,
) -> np.ndarray:
    """Andersen–Chung–Lang push algorithm for approximate PPR.

    Returns the approximate PageRank vector ``p`` with teleport probability
    ``alpha`` and residual threshold ``epsilon`` (residual mass per degree
    below ``epsilon`` at every node on exit).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must lie in (0, 1)")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    n = graph.n
    p = np.zeros(n, dtype=np.float64)
    r = np.zeros(n, dtype=np.float64)
    r[seed_node] = 1.0
    degrees = np.maximum(graph.degrees.astype(np.float64), 1.0)
    queue = [seed_node]
    in_queue = np.zeros(n, dtype=bool)
    in_queue[seed_node] = True
    pushes = 0
    while queue and pushes < max_pushes:
        v = queue.pop()
        in_queue[v] = False
        if r[v] < epsilon * degrees[v]:
            continue
        pushes += 1
        rv = r[v]
        p[v] += alpha * rv
        r[v] = (1.0 - alpha) * rv / 2.0
        share = (1.0 - alpha) * rv / (2.0 * degrees[v])
        for u in graph.neighbours(v):
            r[u] += share
            if not in_queue[u] and r[u] >= epsilon * degrees[u]:
                queue.append(int(u))
                in_queue[u] = True
        if r[v] >= epsilon * degrees[v] and not in_queue[v]:
            queue.append(v)
            in_queue[v] = True
    return p


def pagerank_nibble(
    graph: Graph,
    seed_node: int,
    *,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    max_size: int | None = None,
) -> tuple[np.ndarray, float]:
    """PageRank–Nibble: PPR push followed by a degree-normalised sweep cut.

    Returns the best sweep set (as node ids) and its conductance.
    """
    p = approximate_personalized_pagerank(graph, seed_node, alpha=alpha, epsilon=epsilon)
    degrees = np.maximum(graph.degrees.astype(np.float64), 1.0)
    return sweep_cut(graph, p / degrees, max_size=max_size)


class LocalClustering(BaselineClusterer):
    """k-way clustering by repeated local cluster extraction.

    Repeatedly: pick a random unassigned seed, run PageRank–Nibble restricted
    to the unassigned remainder, and assign the returned set to a new
    cluster.  The final (k-th) cluster absorbs whatever remains.  This is the
    strategy the paper argues against for large ``k``; benchmark E8 reports
    its accuracy alongside the others.
    """

    name = "local-ppr"
    distributed = False

    def __init__(self, *, alpha: float = 0.15, epsilon: float = 1e-4, seeds_per_cluster: int = 3):
        self.alpha = alpha
        self.epsilon = epsilon
        self.seeds_per_cluster = seeds_per_cluster

    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        rng = np.random.default_rng(seed)
        n = graph.n
        labels = np.full(n, -1, dtype=np.int64)
        target_size = n // k if k > 0 else n
        for cluster_index in range(max(k - 1, 0)):
            unassigned = np.flatnonzero(labels < 0)
            if unassigned.size <= target_size:
                break
            best_set: np.ndarray | None = None
            best_phi = np.inf
            for _ in range(self.seeds_per_cluster):
                seed_node = int(unassigned[rng.integers(unassigned.size)])
                candidate, phi = pagerank_nibble(
                    graph,
                    seed_node,
                    alpha=self.alpha,
                    epsilon=self.epsilon,
                    max_size=min(2 * target_size, n - 1),
                )
                # Keep only unassigned members of the candidate set.
                candidate = candidate[labels[candidate] < 0]
                if candidate.size == 0:
                    continue
                phi_restricted = conductance(graph, candidate) if candidate.size < n else 1.0
                if phi_restricted < best_phi:
                    best_phi = phi_restricted
                    best_set = candidate
            if best_set is None or best_set.size == 0:
                break
            labels[best_set] = cluster_index
        labels[labels < 0] = max(int(labels.max()) + 1, 0)
        partition = Partition.from_labels(labels)
        return BaselineResult(
            name=self.name,
            partition=partition,
            rounds=0,
            words=0.0,
            info={"clusters_found": partition.k},
        )
