"""A multilevel graph partitioner (METIS-style), used as the "practice" baseline.

The calibration notes for this reproduction point out that, in practice,
spectral methods and METIS-style multilevel partitioners dominate graph
clustering deployments.  To compare against that practice without a
proprietary binary we implement the classical multilevel scheme from scratch:

1. **Coarsening** — repeatedly contract a heavy-edge matching until the graph
   is small (vertex weights accumulate, parallel edges merge into weighted
   edges);
2. **Initial partitioning** — recursive bisection of the coarsest graph by a
   greedy BFS-region-growing bisector (balanced, cut-aware);
3. **Uncoarsening + refinement** — project the partition back level by level
   and improve it with a Fiduccia–Mattheyses-style boundary refinement pass
   that respects balance constraints.

The implementation works on weighted graphs internally (dataclass
:class:`WeightedGraph`) but the public interface takes the repository's
:class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from .base import BaselineClusterer, BaselineResult

__all__ = ["WeightedGraph", "MultilevelPartitioner"]


@dataclass
class WeightedGraph:
    """Adjacency-list weighted graph used internally by the multilevel scheme."""

    node_weights: np.ndarray  # (n,)
    adjacency: list[dict[int, float]]  # adjacency[v] = {u: edge weight}

    @property
    def n(self) -> int:
        return int(self.node_weights.size)

    @property
    def total_node_weight(self) -> float:
        return float(self.node_weights.sum())

    @classmethod
    def from_graph(cls, graph: Graph) -> "WeightedGraph":
        # Build each node's dict straight from its (symmetric) CSR neighbour
        # slices, one row block at a time — no per-edge Python loop over
        # tuple pairs, and no materialised indices array for memory-mapped
        # storage (the adjacency dicts dwarf the block anyway, but an mmap
        # instance should never pay an extra O(m) array copy on top).
        indptr = graph.storage.indptr
        adjacency: list[dict[int, float]] = []
        for r0, r1, block in graph.storage.iter_row_blocks():
            bounds = (indptr[r0 : r1 + 1] - int(indptr[r0])).tolist()
            neighbours = np.asarray(block).tolist()
            adjacency.extend(
                {u: 1.0 for u in neighbours[bounds[i] : bounds[i + 1]] if u != r0 + i}
                for i in range(r1 - r0)
            )
        return cls(node_weights=np.ones(graph.n, dtype=np.float64), adjacency=adjacency)

    def cut_weight(self, labels: np.ndarray) -> float:
        cut = 0.0
        for v in range(self.n):
            for u, w in self.adjacency[v].items():
                if u > v and labels[u] != labels[v]:
                    cut += w
        return cut


def _heavy_edge_matching(graph: WeightedGraph, rng: np.random.Generator) -> np.ndarray:
    """Heavy-edge matching: visit nodes in random order, match with the
    heaviest unmatched neighbour."""
    n = graph.n
    partner = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n):
        if partner[v] != -1:
            continue
        best_u, best_w = -1, -1.0
        for u, w in graph.adjacency[v].items():
            if partner[u] == -1 and u != v and w > best_w:
                best_u, best_w = u, w
        if best_u >= 0:
            partner[v] = best_u
            partner[best_u] = v
    return partner


def _contract(graph: WeightedGraph, partner: np.ndarray) -> tuple[WeightedGraph, np.ndarray]:
    """Contract matched pairs; returns the coarse graph and the fine→coarse map."""
    n = graph.n
    coarse_of = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_of[v] != -1:
            continue
        u = partner[v]
        coarse_of[v] = next_id
        if u >= 0:
            coarse_of[u] = next_id
        next_id += 1
    node_weights = np.zeros(next_id, dtype=np.float64)
    for v in range(n):
        node_weights[coarse_of[v]] += graph.node_weights[v]
    adjacency: list[dict[int, float]] = [dict() for _ in range(next_id)]
    for v in range(n):
        cv = coarse_of[v]
        for u, w in graph.adjacency[v].items():
            cu = coarse_of[u]
            if cu == cv:
                continue
            adjacency[cv][cu] = adjacency[cv].get(cu, 0.0) + w
    # Each undirected weight was added twice (once from each endpoint's list);
    # halve to restore the undirected convention.
    for v in range(next_id):
        for u in adjacency[v]:
            adjacency[v][u] *= 0.5
    # Re-symmetrise exactly.
    for v in range(next_id):
        for u, w in list(adjacency[v].items()):
            adjacency[u][v] = w
    return WeightedGraph(node_weights=node_weights, adjacency=adjacency), coarse_of


def _grow_bisection(
    graph: WeightedGraph, rng: np.random.Generator, *, target_fraction: float = 0.5
) -> np.ndarray:
    """Greedy BFS region growing bisection of a (small) weighted graph.

    ``target_fraction`` is the share of the total node weight that side 0
    should receive — recursive k-way bisection uses ``k_left / k`` so that a
    3-way partition first splits 1/3 vs 2/3 instead of forcing a balanced cut
    through the middle of a cluster.
    """
    n = graph.n
    target = target_fraction * graph.total_node_weight
    best_labels: np.ndarray | None = None
    best_cut = np.inf
    attempts = min(8, n)
    starts = rng.choice(n, size=attempts, replace=False)
    for start in starts:
        labels = np.ones(n, dtype=np.int64)
        labels[start] = 0
        weight0 = float(graph.node_weights[start])
        frontier = [int(start)]
        visited = {int(start)}
        while weight0 < target and frontier:
            # Pick the frontier-adjacent node with the largest connectivity to
            # side 0 (greedy min-cut growth).
            candidates: dict[int, float] = {}
            for v in frontier:
                for u, w in graph.adjacency[v].items():
                    if u not in visited:
                        candidates[u] = candidates.get(u, 0.0) + w
            if not candidates:
                break
            chosen = max(candidates.items(), key=lambda kv: kv[1])[0]
            labels[chosen] = 0
            visited.add(chosen)
            frontier.append(chosen)
            weight0 += float(graph.node_weights[chosen])
        cut = graph.cut_weight(labels)
        if cut < best_cut and 0 < labels.sum() < n:
            best_cut = cut
            best_labels = labels
    if best_labels is None:
        best_labels = (np.arange(n) % 2).astype(np.int64)
    return best_labels


def _fm_refine(
    graph: WeightedGraph,
    labels: np.ndarray,
    *,
    num_parts: int,
    balance_tolerance: float,
    passes: int,
    rng: np.random.Generator,
    target_fractions: np.ndarray | None = None,
) -> np.ndarray:
    """Boundary Fiduccia–Mattheyses-style refinement with balance constraints.

    ``target_fractions`` (one entry per part, summing to 1) allows asymmetric
    balance targets, used when a bisection step represents an unequal number
    of final parts.
    """
    labels = labels.copy()
    total = graph.total_node_weight
    if target_fractions is None:
        target_fractions = np.full(num_parts, 1.0 / num_parts)
    max_part_weight = (1.0 + balance_tolerance) * target_fractions * total
    part_weight = np.zeros(num_parts, dtype=np.float64)
    for v in range(graph.n):
        part_weight[labels[v]] += graph.node_weights[v]

    for _ in range(passes):
        moved_any = False
        for v in rng.permutation(graph.n):
            current = labels[v]
            # Connectivity of v to each part.
            conn = np.zeros(num_parts, dtype=np.float64)
            for u, w in graph.adjacency[v].items():
                conn[labels[u]] += w
            internal = conn[current]
            # Best alternative part by gain, subject to balance.
            best_part, best_gain = current, 0.0
            for p in range(num_parts):
                if p == current:
                    continue
                if part_weight[p] + graph.node_weights[v] > max_part_weight[p]:
                    continue
                gain = conn[p] - internal
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_part = p
            if best_part != current:
                part_weight[current] -= graph.node_weights[v]
                part_weight[best_part] += graph.node_weights[v]
                labels[v] = best_part
                moved_any = True
        if not moved_any:
            break
    return labels


class MultilevelPartitioner(BaselineClusterer):
    """METIS-style multilevel k-way partitioner.

    Parameters
    ----------
    coarsen_until:
        Stop coarsening when the graph has at most ``max(coarsen_until,
        4·k)`` nodes.
    balance_tolerance:
        Allowed relative imbalance of the parts (0.1 = 10 %).
    refinement_passes:
        FM passes per uncoarsening level.
    """

    name = "multilevel"
    distributed = False

    def __init__(
        self,
        *,
        coarsen_until: int = 40,
        balance_tolerance: float = 0.10,
        refinement_passes: int = 4,
    ):
        self.coarsen_until = coarsen_until
        self.balance_tolerance = balance_tolerance
        self.refinement_passes = refinement_passes

    # ------------------------------------------------------------------ #

    def _recursive_bisection(
        self, graph: WeightedGraph, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Partition a small graph into ``k`` parts by recursive bisection."""
        if k <= 1 or graph.n <= 1:
            return np.zeros(graph.n, dtype=np.int64)
        k_left = k // 2
        k_right = k - k_left
        left_fraction = k_left / k
        halves = _grow_bisection(graph, rng, target_fraction=left_fraction)
        halves = _fm_refine(
            graph,
            halves,
            num_parts=2,
            balance_tolerance=self.balance_tolerance,
            passes=self.refinement_passes,
            rng=rng,
            target_fractions=np.array([left_fraction, 1.0 - left_fraction]),
        )
        labels = np.zeros(graph.n, dtype=np.int64)
        for side, sub_k, offset in ((0, k_left, 0), (1, k_right, k_left)):
            members = np.flatnonzero(halves == side)
            if members.size == 0:
                continue
            if sub_k <= 1:
                labels[members] = offset
                continue
            index = {int(v): i for i, v in enumerate(members)}
            sub_adj: list[dict[int, float]] = [dict() for _ in range(members.size)]
            for v in members:
                for u, w in graph.adjacency[int(v)].items():
                    if u in index:
                        sub_adj[index[int(v)]][index[u]] = w
            sub = WeightedGraph(node_weights=graph.node_weights[members].copy(), adjacency=sub_adj)
            sub_labels = self._recursive_bisection(sub, sub_k, rng)
            labels[members] = sub_labels + offset
        return labels

    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        rng = np.random.default_rng(seed)
        levels: list[tuple[WeightedGraph, np.ndarray]] = []
        current = WeightedGraph.from_graph(graph)
        coarsen_limit = max(self.coarsen_until, 4 * k)

        # --- Coarsening ---------------------------------------------------
        while current.n > coarsen_limit:
            partner = _heavy_edge_matching(current, rng)
            coarse, mapping = _contract(current, partner)
            if coarse.n >= current.n:  # no progress (e.g. empty matching)
                break
            levels.append((current, mapping))
            current = coarse

        # --- Initial partitioning ------------------------------------------
        labels = self._recursive_bisection(current, k, rng)
        labels = _fm_refine(
            current,
            labels,
            num_parts=k,
            balance_tolerance=self.balance_tolerance,
            passes=self.refinement_passes,
            rng=rng,
        )

        # --- Uncoarsening + refinement --------------------------------------
        for fine, mapping in reversed(levels):
            labels = labels[mapping]
            labels = _fm_refine(
                fine,
                labels,
                num_parts=k,
                balance_tolerance=self.balance_tolerance,
                passes=self.refinement_passes,
                rng=rng,
            )

        final = WeightedGraph.from_graph(graph)
        return BaselineResult(
            name=self.name,
            partition=Partition.from_labels(labels),
            rounds=0,
            words=float(2 * graph.num_edges),  # centralised: collect the graph once
            info={
                "levels": len(levels),
                "cut_weight": final.cut_weight(labels),
            },
        )
