"""Kempe–McSherry (STOC 2004) decentralised spectral clustering.

The paper's Related Work points out that the decentralised algorithm of
Kempe and McSherry for computing the top ``k`` eigenvectors of the adjacency
matrix can be used for graph clustering, but (i) it is considerably more
involved and (ii) its round complexity is proportional to the **mixing time
of a random walk on the whole graph**, which for a graph made of expanders
joined by few edges is polynomial in ``n`` rather than poly-logarithmic.

We implement the algorithm's structure faithfully at the process level:

* **Decentralised orthogonal iteration** — every node ``v`` holds a row
  ``Q_v ∈ R^k``; one iteration computes ``V = A Q`` (a single exchange with
  all neighbours) followed by a distributed orthonormalisation
  ``Q ← V R^{-1}``, where the ``k × k`` Gram matrix ``K = Vᵀ V`` is obtained
  by *push-sum gossip*, which needs ``Θ(t_mix · log(1/ε))`` rounds per
  iteration.
* The per-iteration push-sum is simulated exactly (gossip on the graph);
  the round and word accounting therefore reflects what the real protocol
  would pay.
* After the final iteration the rows of ``Q`` (degree-corrected) are
  clustered with k-means, as in spectral clustering.

The defaults keep the benchmarks affordable; both the number of orthogonal
iterations and the push-sum length per iteration are exposed.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..graphs.spectral import lazy_mixing_time_bound
from .base import BaselineClusterer, BaselineResult
from .kmeans import kmeans

__all__ = ["DecentralizedOrthogonalIteration", "push_sum_average"]


def push_sum_average(
    graph: Graph,
    values: np.ndarray,
    rounds: int,
    *,
    rng: np.random.Generator,
) -> np.ndarray:
    """Push-sum gossip estimate of the average of ``values`` at every node.

    ``values`` has shape ``(n, q)``; every node ends with an estimate of the
    global column means.  Each round every node splits its (value, weight)
    pair evenly between itself and one uniformly random neighbour — the
    classical Kempe–Dobra–Gehrke protocol used by Kempe–McSherry as the
    aggregation primitive.
    """
    n = graph.n
    s = values.astype(np.float64).copy()
    w = np.ones(n, dtype=np.float64)
    for _ in range(rounds):
        targets = np.array([graph.random_neighbour(v, rng) for v in range(n)], dtype=np.int64)
        s_half = 0.5 * s
        w_half = 0.5 * w
        new_s = s_half.copy()
        new_w = w_half.copy()
        np.add.at(new_s, targets, s_half)
        np.add.at(new_w, targets, w_half)
        s, w = new_s, new_w
    return s / np.maximum(w, 1e-300)[:, np.newaxis]


class DecentralizedOrthogonalIteration(BaselineClusterer):
    """Clustering via Kempe–McSherry decentralised orthogonal iteration.

    Parameters
    ----------
    iterations:
        Number of orthogonal-iteration steps (each one multiplication by
        ``A`` plus one distributed orthonormalisation).
    pushsum_rounds:
        Gossip rounds used per orthonormalisation; ``None`` uses the
        mixing-time bound of the input graph (capped at ``max_pushsum``),
        which is what drives the method's poor round complexity on
        well-clustered graphs.
    exact_aggregation:
        If ``True`` skip the push-sum simulation and aggregate exactly
        (faster; the *round accounting still charges* the push-sum rounds).
        Used by large benchmarks where only costs, not gossip noise, matter.
    """

    name = "kempe-mcsherry"
    distributed = True

    def __init__(
        self,
        *,
        iterations: int | None = None,
        pushsum_rounds: int | None = None,
        max_pushsum: int = 400,
        exact_aggregation: bool = False,
    ):
        self.iterations = iterations
        self.pushsum_rounds = pushsum_rounds
        self.max_pushsum = max_pushsum
        self.exact_aggregation = exact_aggregation

    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        rng = np.random.default_rng(seed)
        n = graph.n
        # Matrix-free A·Q: the orthogonal-iteration matvecs stream through
        # the graph storage's row blocks, so the baseline runs against
        # memory-mapped instances without materialising the adjacency —
        # and its mixing-time bound below requests only λ₂ instead of the
        # full (dense) spectrum.
        a = graph.adjacency_operator()
        iterations = (
            self.iterations
            if self.iterations is not None
            else max(2, int(np.ceil(2.0 * np.log(max(n, 2)))))
        )
        pushsum = (
            self.pushsum_rounds
            if self.pushsum_rounds is not None
            else int(min(self.max_pushsum, np.ceil(lazy_mixing_time_bound(graph))))
        )

        q = rng.standard_normal((n, k))
        for _ in range(iterations):
            v = np.asarray(a @ q)
            # Distributed orthonormalisation: every node needs the Gram matrix
            # K = Vᵀ V = n · mean_v (V_v V_vᵀ); obtained by gossip on the
            # k(k+1)/2 distinct entries.
            outer = np.einsum("ni,nj->nij", v, v).reshape(n, k * k)
            if self.exact_aggregation:
                gram_mean = outer.mean(axis=0, keepdims=True).repeat(n, axis=0)
            else:
                gram_mean = push_sum_average(graph, outer, pushsum, rng=rng)
            # Every node uses its own (noisy) estimate of K; we take node 0's
            # view for the Cholesky factor, as all views coincide up to gossip
            # error.
            gram = gram_mean.mean(axis=0).reshape(k, k) * n
            # Symmetrise and regularise before the Cholesky factorisation.
            gram = 0.5 * (gram + gram.T) + 1e-12 * np.eye(k)
            try:
                r = np.linalg.cholesky(gram).T
                q = v @ np.linalg.inv(r)
            except np.linalg.LinAlgError:
                # Fall back to a QR step if the gossip noise made K indefinite.
                q, _ = np.linalg.qr(v)

        degrees = np.maximum(graph.degrees.astype(np.float64), 1.0)
        embedding = q / np.sqrt(degrees)[:, np.newaxis]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        embedding = embedding / norms
        km = kmeans(embedding, k, rng=rng, restarts=5)

        total_rounds = iterations * (1 + pushsum)
        # Words: the A·Q product costs one k-vector per edge per direction per
        # iteration; each push-sum round costs one (k² + 1)-vector per node.
        words = float(
            iterations * (2 * graph.num_edges * k) + iterations * pushsum * n * (k * k + 1)
        )
        return BaselineResult(
            name=self.name,
            partition=Partition.from_labels(km.labels),
            rounds=int(total_rounds),
            words=words,
            info={
                "iterations": iterations,
                "pushsum_rounds_per_iteration": pushsum,
                "exact_aggregation": self.exact_aggregation,
            },
        )
