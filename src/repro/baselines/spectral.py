"""Centralised spectral clustering (the classical comparator).

The paper positions its algorithm against "complicated spectral techniques":
the canonical representative is spectral clustering à la Ng–Jordan–Weiss /
Peng–Sun–Zanetti — embed every node by the top ``k`` eigenvectors of the
random walk matrix (equivalently the bottom ``k`` of the normalised
Laplacian) and run k-means on the rows of the embedding.

Being centralised, its ``rounds`` cost is 0 but it requires global access to
the graph; a distributed realisation needs either Kempe–McSherry (see
:mod:`repro.baselines.kempe_mcsherry`) or collecting the whole edge set at a
coordinator, whose word cost we report as ``2m`` for the comparison tables.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from ..graphs.spectral import spectral_decomposition
from .base import BaselineClusterer, BaselineResult
from .kmeans import kmeans

__all__ = ["SpectralClustering", "spectral_embedding"]


def spectral_embedding(
    graph: Graph, k: int, *, normalise_rows: bool = True, degree_correct: bool = True
) -> np.ndarray:
    """The ``(n, k)`` spectral embedding used by spectral clustering.

    Columns are the top ``k`` eigenvectors of the symmetrised random walk
    operator.  Above the dense threshold the decomposition runs Lanczos
    against the graph's matrix-free
    :meth:`~repro.graphs.graph.Graph.normalized_adjacency_operator` with a
    deterministic seeded start vector, so the baseline embeds memory-mapped
    instances without materialising the adjacency and repeated runs are
    bit-identical.  With ``degree_correct=True`` each row is scaled by
    ``1/√d_v`` (mapping back from the symmetric operator to the random walk
    eigenbasis), and with ``normalise_rows=True`` the rows are projected to
    the unit sphere, which is the standard normalisation for k-means
    rounding.
    """
    dec = spectral_decomposition(graph, num=k)
    embedding = dec.top_k(k).copy()
    if degree_correct:
        degrees = np.maximum(graph.degrees.astype(np.float64), 1.0)
        embedding = embedding / np.sqrt(degrees)[:, np.newaxis]
    if normalise_rows:
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        embedding = embedding / norms
    return embedding


class SpectralClustering(BaselineClusterer):
    """k-means on the spectral embedding (centralised baseline)."""

    name = "spectral"
    distributed = False

    def __init__(self, *, normalise_rows: bool = True, kmeans_restarts: int = 5):
        self.normalise_rows = normalise_rows
        self.kmeans_restarts = kmeans_restarts

    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        embedding = spectral_embedding(graph, k, normalise_rows=self.normalise_rows)
        km = kmeans(
            embedding,
            k,
            seed=seed,
            restarts=self.kmeans_restarts,
        )
        return BaselineResult(
            name=self.name,
            partition=Partition.from_labels(km.labels),
            rounds=0,
            # A distributed realisation must ship the edge set to a coordinator.
            words=float(2 * graph.num_edges),
            info={
                "inertia": km.inertia,
                "kmeans_iterations": km.iterations,
                "kmeans_converged": km.converged,
            },
        )
