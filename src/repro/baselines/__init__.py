"""Baseline clustering algorithms the paper compares against (Section 1.3).

All baselines implement :class:`BaselineClusterer.cluster(graph, k, seed=...)`
and return a :class:`BaselineResult`, so benchmarks can evaluate them
uniformly alongside the paper's algorithm.
"""

from .base import BaselineClusterer, BaselineResult
from .becchetti import AveragingDynamics, averaging_dynamics_values
from .kempe_mcsherry import DecentralizedOrthogonalIteration, push_sum_average
from .kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from .label_propagation import LabelPropagation
from .local import LocalClustering, approximate_personalized_pagerank, pagerank_nibble
from .multilevel import MultilevelPartitioner, WeightedGraph
from .spectral import SpectralClustering, spectral_embedding

__all__ = [
    "BaselineClusterer",
    "BaselineResult",
    "AveragingDynamics",
    "averaging_dynamics_values",
    "DecentralizedOrthogonalIteration",
    "push_sum_average",
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus_init",
    "LabelPropagation",
    "LocalClustering",
    "approximate_personalized_pagerank",
    "pagerank_nibble",
    "MultilevelPartitioner",
    "WeightedGraph",
    "SpectralClustering",
    "spectral_embedding",
]


def all_baselines() -> list[BaselineClusterer]:
    """The default baseline panel used by the comparison benchmarks."""
    return [
        SpectralClustering(),
        AveragingDynamics(),
        DecentralizedOrthogonalIteration(exact_aggregation=True),
        LabelPropagation(),
        MultilevelPartitioner(),
        LocalClustering(),
    ]
