"""Common interface of the baseline clustering algorithms.

Every baseline implements :class:`BaselineClusterer` and returns a
:class:`BaselineResult`, so the comparison benchmarks (E8, E9) can treat the
paper's algorithm and all competitors uniformly.  Besides the partition, a
result records the two cost measures the paper argues about:

* ``rounds`` — number of synchronous communication rounds a distributed
  implementation of the method would need (``0`` for inherently centralised
  methods such as spectral clustering or multilevel partitioning);
* ``words`` — estimated number of words exchanged by such an implementation
  (``float('inf')``/``0`` conventions documented per baseline).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import Graph
from ..graphs.partition import Partition, misclassification_rate

__all__ = ["BaselineResult", "BaselineClusterer"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    name: str
    partition: Partition
    rounds: int = 0
    words: float = 0.0
    info: dict[str, Any] = field(default_factory=dict)

    def error_against(self, truth: Partition) -> float:
        return misclassification_rate(self.partition, truth)


class BaselineClusterer(ABC):
    """A clustering algorithm with the common ``cluster(graph, k)`` interface."""

    #: short name used in benchmark tables
    name: str = "baseline"

    #: whether the method is implementable as a message-passing algorithm
    distributed: bool = False

    @abstractmethod
    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        """Cluster ``graph`` into ``k`` parts."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
