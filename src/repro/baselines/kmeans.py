"""A self-contained k-means implementation (used by the spectral baselines).

Implements k-means++ seeding (D² sampling) and Lloyd iterations with empty
cluster re-seeding, entirely in NumPy.  This exists so the spectral-clustering
and Kempe–McSherry baselines do not depend on scikit-learn (which is not
among the allowed dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Labels, centres and objective value of one k-means run."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ (D² weighting) initial centres."""
    n = points.shape[0]
    if k > n:
        raise ValueError("cannot pick more centres than points")
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centre; pick
            # uniformly at random.
            idx = int(rng.integers(n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centers[i] = points[idx]
        dist_sq = np.sum((points - centers[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centers


def _assign(points: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest centre; returns (labels, squared distances)."""
    # (n, k) squared distances via the ||x||² - 2 x·c + ||c||² expansion.
    sq = (
        np.sum(points ** 2, axis=1, keepdims=True)
        - 2.0 * points @ centers.T
        + np.sum(centers ** 2, axis=1)[np.newaxis, :]
    )
    labels = np.argmin(sq, axis=1)
    return labels, np.maximum(sq[np.arange(points.shape[0]), labels], 0.0)


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    restarts: int = 5,
) -> KMeansResult:
    """Run k-means++ / Lloyd with multiple restarts; returns the best run.

    Parameters
    ----------
    points:
        ``(n, dim)`` data matrix.
    k:
        Number of clusters.
    restarts:
        Independent restarts; the run with the lowest inertia wins.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    if k <= 0:
        raise ValueError("k must be positive")
    rng = rng if rng is not None else np.random.default_rng(seed)

    best: KMeansResult | None = None
    for _ in range(max(1, restarts)):
        centers = kmeans_plus_plus_init(points, k, rng)
        labels = np.zeros(points.shape[0], dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            labels, dist_sq = _assign(points, centers)
            new_centers = np.empty_like(centers)
            for c in range(k):
                members = points[labels == c]
                if members.shape[0] == 0:
                    # Re-seed an empty cluster at the point farthest from its centre.
                    new_centers[c] = points[int(np.argmax(dist_sq))]
                else:
                    new_centers[c] = members.mean(axis=0)
            shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
            centers = new_centers
            if shift <= tolerance:
                converged = True
                break
        labels, dist_sq = _assign(points, centers)
        result = KMeansResult(
            labels=labels.astype(np.int64),
            centers=centers,
            inertia=float(dist_sq.sum()),
            iterations=iteration,
            converged=converged,
        )
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
