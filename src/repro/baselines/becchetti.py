"""The Becchetti et al. (SODA 2017) averaging dynamics, "Find Your Place".

The paper's closest distributed competitor: every node holds a real value,
initialised to a uniform random ±1, and in **every round averages with all of
its neighbours** (``x ← (x + P x)/2`` in the lazy variant used here).  After a
logarithmic number of rounds the values concentrate, within each community,
around a community-dependent mean; for two communities the *sign of the
deviation from the global average* recovers the partition, and for ``k``
communities one runs ``h`` independent copies of the dynamics and clusters
the resulting ``h``-dimensional embedding.

Key contrast drawn by the paper (Section 1.3): this dynamics requires every
node to exchange a value with **all** of its neighbours in every round —
``2m`` words per round per dimension — whereas the matching model touches at
most ``⌊n/2⌋`` edges per round.  Benchmark E9 measures exactly this gap.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from .base import BaselineClusterer, BaselineResult
from .kmeans import kmeans

__all__ = ["AveragingDynamics", "averaging_dynamics_values"]


def averaging_dynamics_values(
    graph: Graph,
    rounds: int,
    *,
    dimensions: int = 1,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    lazy: bool = True,
) -> np.ndarray:
    """Run the averaging dynamics for ``rounds`` rounds.

    Returns the ``(n, dimensions)`` matrix of final values; each column is an
    independent run started from i.i.d. Rademacher (±1) values.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    n = graph.n
    x = rng.choice([-1.0, 1.0], size=(n, dimensions))
    p = graph.random_walk_matrix(sparse=True)
    for _ in range(rounds):
        px = p @ x
        x = 0.5 * (x + px) if lazy else px
    return np.asarray(x)


class AveragingDynamics(BaselineClusterer):
    """Becchetti et al. style averaging dynamics baseline.

    Parameters
    ----------
    rounds:
        Number of averaging rounds; ``None`` uses ``ceil(c·log n)`` with
        ``c = 10`` which matches the regime analysed by Becchetti et al. for
        sparse clustered graphs.
    dimensions:
        Number of independent runs used to build the embedding for k-means
        (``max(1, ceil(log2 k)) + 2`` by default, so that two communities use
        the classical sign rule dimensionality).
    """

    name = "averaging-dynamics"
    distributed = True

    def __init__(self, *, rounds: int | None = None, dimensions: int | None = None):
        self.rounds = rounds
        self.dimensions = dimensions

    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        rng = np.random.default_rng(seed)
        rounds = (
            self.rounds
            if self.rounds is not None
            else max(1, int(np.ceil(10.0 * np.log(max(graph.n, 2)))))
        )
        dims = (
            self.dimensions
            if self.dimensions is not None
            else max(1, int(np.ceil(np.log2(max(k, 2))))) + 2
        )
        values = averaging_dynamics_values(graph, rounds, dimensions=dims, rng=rng)

        if k == 2 and dims >= 1:
            # The original sign rule: split by deviation from the global mean
            # of the first run.
            deviation = values[:, 0] - values[:, 0].mean()
            labels = (deviation >= 0).astype(np.int64)
        else:
            # k > 2: cluster the h-dimensional embedding, centring each column.
            embedding = values - values.mean(axis=0, keepdims=True)
            labels = kmeans(embedding, k, rng=rng, restarts=5).labels

        # Communication: every round every edge carries `dims` values in both
        # directions.
        words = float(2 * graph.num_edges * dims * rounds)
        return BaselineResult(
            name=self.name,
            partition=Partition.from_labels(labels),
            rounds=rounds,
            words=words,
            info={"dimensions": dims},
        )
