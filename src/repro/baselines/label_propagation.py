"""Label propagation (Raghavan et al.) — the simplest distributed heuristic.

Included as a practical reference point: it is what engineers actually deploy
when they need a cheap distributed community detector.  Every node starts
with a unique label and repeatedly adopts the most frequent label among its
neighbours (ties broken uniformly at random).  It needs no parameters but
offers no approximation guarantee and often collapses clusters joined by
relatively many edges — which is exactly the regime where the paper's
algorithm retains its guarantee (benchmark E8 shows the crossover).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.partition import Partition
from .base import BaselineClusterer, BaselineResult

__all__ = ["LabelPropagation"]


class LabelPropagation(BaselineClusterer):
    """Synchronous label propagation with random tie breaking.

    Parameters
    ----------
    max_rounds:
        Upper bound on the number of rounds; the dynamics stops earlier when
        no label changes.
    """

    name = "label-propagation"
    distributed = True

    def __init__(self, *, max_rounds: int = 100):
        if max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        self.max_rounds = max_rounds

    def cluster(self, graph: Graph, k: int, *, seed: int | None = None) -> BaselineResult:
        # Label propagation does not take k as an input; k is accepted for
        # interface compatibility and recorded so tables can show the number
        # of communities it actually produced.
        rng = np.random.default_rng(seed)
        n = graph.n
        labels = np.arange(n, dtype=np.int64)
        rounds_used = 0
        for rounds_used in range(1, self.max_rounds + 1):
            changed = False
            # Synchronous update with a random node order for tie-breaking
            # stability (classical asynchronous LPA uses random order too).
            new_labels = labels.copy()
            for v in rng.permutation(n):
                neigh = graph.neighbours(int(v))
                if neigh.size == 0:
                    continue
                neigh_labels = labels[neigh]
                counts = np.bincount(neigh_labels)
                best = np.flatnonzero(counts == counts.max())
                choice = int(best[rng.integers(best.size)]) if best.size > 1 else int(best[0])
                if choice != new_labels[v]:
                    new_labels[v] = choice
                    changed = True
            labels = new_labels
            if not changed:
                break
        # Words: every node sends its label to all neighbours every round.
        words = float(2 * graph.num_edges * rounds_used)
        partition = Partition.from_labels(labels)
        return BaselineResult(
            name=self.name,
            partition=partition,
            rounds=rounds_used,
            words=words,
            info={"clusters_found": partition.k, "requested_k": k},
        )
