"""Optional numba acceleration shim.

The threaded kernels (:mod:`repro.core.kernels`) and the alias-table build
loop (:mod:`repro.graphs.sampling`) compile to multi-core / tight machine
code when `numba <https://numba.pydata.org>`_ is installed, but numba is an
*optional* extra (``pip install .[numba]``): every accelerated code path has
a pure-numpy twin and the full test suite passes without the dependency.
This module is the single place that knows whether numba is importable, so
the rest of the codebase never guards the import itself.

``maybe_njit`` is the decorator the dual-path functions use: with numba it
is :func:`numba.njit` (lazy compilation at first call, on-disk cache); without
it the function runs as plain Python over numpy arrays — same algorithm,
same results, just slower.
"""

from __future__ import annotations

import os
from typing import Any, Callable

try:  # pragma: no cover - exercised implicitly by every import
    import numba  # type: ignore[import-not-found]

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the no-numba CI leg covers this
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False

__all__ = [
    "HAVE_NUMBA",
    "numba",
    "maybe_njit",
    "available_threads",
    "resolve_threads",
]


def maybe_njit(**options: Any) -> Callable[[Callable], Callable]:
    """``numba.njit(**options)`` when numba is available, identity otherwise.

    Decorated functions must therefore be written in the numba-compatible
    subset (scalar loops over preallocated numpy arrays) *and* be valid
    plain Python — that discipline is what keeps the two paths one body of
    code instead of two implementations that can drift apart.
    """
    if HAVE_NUMBA:
        return numba.njit(**options)

    def identity(func: Callable) -> Callable:
        return func

    return identity


def available_threads() -> int:
    """Upper bound on usable compute threads for the threaded kernels.

    With numba this is its thread-pool size (which already honours
    ``NUMBA_NUM_THREADS``); without it the process CPU count — the value is
    then only used for reporting and ladder clamping, as the pure-numpy
    fallback is single-threaded anyway.
    """
    if HAVE_NUMBA:
        return int(numba.config.NUMBA_NUM_THREADS)
    return os.cpu_count() or 1


def resolve_threads(threads: int | None) -> int:
    """Clamp a requested thread count to what the runtime can deliver.

    ``None`` means "use everything available".  Requests above the pool
    size are clamped rather than rejected: benchmark ladders ask for
    1/2/4/8 threads regardless of the host, and numba raises on
    ``set_num_threads`` values above its fixed pool size.
    """
    limit = available_threads()
    if threads is None:
        return limit
    threads = int(threads)
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return min(threads, limit)
