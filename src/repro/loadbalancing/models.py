"""Alternative averaging substrates, used by the E12 ablation.

The paper's algorithm is built on the *random matching* model.  Two natural
alternatives appear in the load-balancing literature it cites and in the
Becchetti et al. comparison:

* **Diffusion** (first-order scheme, Cybenko [10] / Ghosh et al. [17]):
  every node averages with *all* of its neighbours each round,
  ``y(t+1) = (1 - δ) y(t) + δ P y(t)``.  Communication per round is one word
  per edge per dimension — much higher than the matching model on dense
  graphs, which is exactly the communication argument the paper makes against
  the Becchetti et al. dynamics.
* **Dimension exchange on a fixed edge colouring**: a deterministic variant
  in which the edges of a proper colouring are used round-robin; included to
  show the random matching is not load-bearing for accuracy, only for
  decentralisation.

Each model exposes the same ``step(loads) -> loads`` interface so the core
algorithm can be instantiated over any of them (``averaging_model=`` in
:class:`repro.core.centralized.CentralizedClustering`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graphs.graph import Graph
from .matching import (
    apply_matching,
    count_matched_edges,
    sample_maximal_matching,
    sample_random_matching,
)

__all__ = [
    "AveragingModel",
    "RandomMatchingModel",
    "MaximalMatchingModel",
    "DiffusionModel",
    "DimensionExchangeModel",
    "make_averaging_model",
]


class AveragingModel(ABC):
    """One synchronous round of an averaging (load balancing) substrate."""

    #: short name used in benchmark tables
    name: str = "abstract"

    @abstractmethod
    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply one round to the ``(n,)`` or ``(n, s)`` configuration."""

    @abstractmethod
    def communication_per_round(self, s: int) -> float:
        """Expected number of words exchanged per round for ``s`` dimensions."""


@dataclass
class RandomMatchingModel(AveragingModel):
    """The paper's substrate: one random matching per round."""

    graph: Graph
    name: str = "random-matching"

    def __post_init__(self) -> None:
        self.last_matched_edges = 0

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        partner = sample_random_matching(self.graph, rng)
        self.last_matched_edges = count_matched_edges(partner)
        return apply_matching(loads, partner)

    def communication_per_round(self, s: int) -> float:
        # Each matched edge exchanges the s values in both directions; the
        # expected number of matched edges is m * d̄/(2 d) ≤ n/4 for d-regular
        # graphs.  We report the worst-case bound ⌊n/2⌋ edges.
        return float((self.graph.n // 2) * 2 * s)


@dataclass
class MaximalMatchingModel(AveragingModel):
    """Greedy maximal matching per round (more coordination, faster mixing)."""

    graph: Graph
    name: str = "maximal-matching"

    def __post_init__(self) -> None:
        self.last_matched_edges = 0

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        partner = sample_maximal_matching(self.graph, rng)
        self.last_matched_edges = count_matched_edges(partner)
        return apply_matching(loads, partner)

    def communication_per_round(self, s: int) -> float:
        return float((self.graph.n // 2) * 2 * s)


class DiffusionModel(AveragingModel):
    """First-order diffusion: every node averages with all neighbours each round.

    The update is ``y ← (I - (δ/Δ)·L) y`` with the combinatorial Laplacian
    ``L = D - A`` and the maximum degree ``Δ`` — the classical first-order
    diffusion scheme (Cybenko).  The operator is symmetric and doubly
    stochastic, so total load is conserved on irregular graphs too; on a
    ``d``-regular graph it reduces to ``(1 - δ)·I + δ·P``.
    """

    name = "diffusion"

    def __init__(self, graph: Graph, *, delta: float = 0.5):
        if not 0.0 < delta <= 1.0:
            raise ValueError("delta must lie in (0, 1]")
        self.graph = graph
        self.delta = float(delta)
        self._step_size = delta / max(graph.max_degree, 1)
        if graph.storage.in_memory:
            adjacency = graph.adjacency_matrix(sparse=True)
            degree_matrix = sp.diags(graph.degrees.astype(np.float64))
            laplacian = degree_matrix - adjacency
            self._operator: sp.csr_matrix | None = sp.csr_matrix(
                sp.identity(graph.n, format="csr") - self._step_size * laplacian
            )
            self._keep = None
        else:
            # Streamed arm for out-of-core storage: ``I - s·L`` applied as
            # ``(1 - s·d) ∘ y + s·(A y)`` with ``A y`` driven block by block
            # through :meth:`CSRStorage.matvec`, so the operator is never
            # materialised (the scipy matrix above is O(m) in RAM).
            self._operator = None
            self._keep = 1.0 - self._step_size * graph.degrees.astype(np.float64)

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self._operator is not None:
            return np.asarray(self._operator @ loads)
        loads = np.asarray(loads, dtype=np.float64)
        ay = self.graph.storage.matvec(loads)
        keep = self._keep if loads.ndim == 1 else self._keep[:, None]
        return keep * loads + self._step_size * ay

    def communication_per_round(self, s: int) -> float:
        # Every edge carries the s values in both directions every round.
        return float(2 * self.graph.num_edges * s)


class DimensionExchangeModel(AveragingModel):
    """Deterministic dimension exchange over a greedy proper edge colouring.

    The edges are partitioned into matchings (colour classes) once; round ``t``
    averages along colour class ``t mod num_colours``.
    """

    name = "dimension-exchange"

    def __init__(self, graph: Graph):
        self.graph = graph
        self._matchings = self._greedy_edge_colouring(graph)
        self._round = 0

    @staticmethod
    def _greedy_edge_colouring(graph: Graph) -> list[np.ndarray]:
        """Greedy proper edge colouring; returns one partner array per colour.

        Each colour class is built as a maximal matching over the still
        uncoloured edges, selected in vectorised rounds: an edge joins the
        matching when it is the first remaining candidate touching both of
        its endpoints (computed with one ``unique`` over the endpoint array),
        and candidates clashing with the matched nodes are dropped wholesale.
        Like the seed's first-fit loop this uses at most ``2Δ - 1`` colours,
        but the per-edge Python iteration is gone.  The endpoint arrays are
        collected block by block over :meth:`CSRStorage.iter_row_blocks`
        (each non-loop edge once, via its upper arc ``col > row``) in CSR
        order — identical to the historical ``edge_array()`` route but
        without materialising the O(m) arc array on mmap storage.
        """
        n = graph.n
        storage = graph.storage
        indptr = storage.indptr
        us: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        for r0, r1, block in storage.iter_row_blocks():
            counts = np.diff(indptr[r0 : r1 + 1])
            rows = np.repeat(np.arange(r0, r1, dtype=np.int64), counts)
            upper = block > rows
            us.append(rows[upper])
            vs.append(np.asarray(block[upper], dtype=np.int64))
        u_all = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
        v_all = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
        colours: list[np.ndarray] = []
        remaining = np.arange(u_all.size, dtype=np.int64)
        while remaining.size:
            partner = np.full(n, -1, dtype=np.int64)
            used = np.zeros(n, dtype=bool)
            coloured: list[np.ndarray] = []
            cand = remaining
            while cand.size:
                u = u_all[cand]
                v = v_all[cand]
                free = ~used[u] & ~used[v]
                cand = cand[free]
                if not cand.size:
                    break
                u = u_all[cand]
                v = v_all[cand]
                # An edge is selected when its position is the first
                # occurrence of both endpoints in the combined endpoint
                # array; such a set is conflict-free by construction.
                endpoints = np.concatenate([u, v])
                first = np.zeros(endpoints.size, dtype=bool)
                first[np.unique(endpoints, return_index=True)[1]] = True
                sel = first[: cand.size] & first[cand.size :]
                if not sel.any():
                    # Always possible to take the first candidate alone.
                    sel[0] = True
                chosen = cand[sel]
                cu = u_all[chosen]
                cv = v_all[chosen]
                partner[cu] = cv
                partner[cv] = cu
                used[cu] = True
                used[cv] = True
                coloured.append(chosen)
                cand = cand[~sel]
            colours.append(partner)
            if coloured:
                remaining = np.setdiff1d(
                    remaining, np.concatenate(coloured), assume_unique=True
                )
        if not colours:
            colours.append(np.full(n, -1, dtype=np.int64))
        return colours

    @property
    def num_colours(self) -> int:
        return len(self._matchings)

    def step(self, loads: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        partner = self._matchings[self._round % len(self._matchings)]
        self._round += 1
        return apply_matching(loads, partner)

    def communication_per_round(self, s: int) -> float:
        mean_edges = float(np.mean([int((p >= 0).sum()) // 2 for p in self._matchings]))
        return mean_edges * 2 * s


def make_averaging_model(name: str, graph: Graph, **kwargs) -> AveragingModel:
    """Factory used by the ablation benchmark and the public API.

    ``name`` ∈ {"random-matching", "maximal-matching", "diffusion",
    "dimension-exchange"}.
    """
    registry = {
        "random-matching": RandomMatchingModel,
        "maximal-matching": MaximalMatchingModel,
        "diffusion": DiffusionModel,
        "dimension-exchange": DimensionExchangeModel,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown averaging model {name!r}; choose from {sorted(registry)}") from None
    return cls(graph, **kwargs)
