"""Diagnostics for load balancing processes and empirical lemma validators.

This module turns the quantities appearing in the paper's analysis into
measurable diagnostics:

* :func:`projection_distance` — ``‖Q y(0) − y(t)‖`` for the projection ``Q``
  onto the top-``k`` eigenvectors (the left-hand side of Lemma 4.1);
* :func:`lemma41_bound` — the right-hand side ``2 √(t (1 − λ_k)) ‖Q y(0)‖``;
* :func:`estimate_expected_projection_distance` — Monte-Carlo estimate of the
  expectation in Lemma 4.1 over the random matchings;
* :func:`empirical_expected_matching_matrix` — Monte-Carlo estimate of
  ``E[M(t)]`` used to validate Lemma 2.1 (benchmark E5);
* :func:`convergence_time` — number of rounds until the discrepancy of the
  1-D process falls below a tolerance (classical load balancing measure,
  used to contrast global mixing with the paper's early-time behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graphs.graph import Graph
from ..graphs.spectral import spectral_decomposition
from .matching import matching_matrix, sample_random_matching
from .process import LoadBalancingProcess

__all__ = [
    "projection_distance",
    "lemma41_bound",
    "Lemma41Estimate",
    "estimate_expected_projection_distance",
    "empirical_expected_matching_matrix",
    "convergence_time",
    "is_projection_matrix",
    "is_doubly_stochastic",
]


def projection_distance(q: np.ndarray, y0: np.ndarray, yt: np.ndarray) -> float:
    """``‖Q y(0) − y(t)‖`` — the quantity bounded by Lemma 4.1."""
    return float(np.linalg.norm(q @ y0 - yt))


def lemma41_bound(t: int, lambda_k: float, q: np.ndarray, y0: np.ndarray) -> float:
    """The Lemma 4.1 upper bound ``2 √(t (1 − λ_k)) ‖Q y(0)‖`` (without the o(n^-c) term)."""
    if t < 0:
        raise ValueError("t must be non-negative")
    return float(2.0 * np.sqrt(max(t, 0) * max(1.0 - lambda_k, 0.0)) * np.linalg.norm(q @ y0))


@dataclass(frozen=True)
class Lemma41Estimate:
    """Monte-Carlo estimate of the Lemma 4.1 quantities at a fixed round ``t``."""

    t: int
    mean_distance: float
    std_distance: float
    bound: float
    trials: int

    @property
    def within_bound(self) -> bool:
        """Whether the estimated expectation respects the theoretical bound."""
        return self.mean_distance <= self.bound + 1e-12


def estimate_expected_projection_distance(
    graph: Graph,
    y0: np.ndarray,
    k: int,
    rounds: int,
    *,
    trials: int = 20,
    seed: int | None = None,
) -> Lemma41Estimate:
    """Estimate ``E‖Q y(0) − y(t)‖`` over random matchings (Lemma 4.1, LHS).

    Runs ``trials`` independent executions of the 1-dimensional process from
    ``y0`` for ``rounds`` rounds and averages the projection distance.
    """
    rng = np.random.default_rng(seed)
    dec = spectral_decomposition(graph, num=max(k + 1, 2))
    q = dec.projection_matrix(k)
    lambda_k = dec.lambda_(k)
    distances = np.empty(trials, dtype=np.float64)
    for i in range(trials):
        proc = LoadBalancingProcess(graph, y0, rng=np.random.default_rng(rng.integers(2**63)))
        yt = proc.run(rounds)
        distances[i] = projection_distance(q, np.asarray(y0, dtype=np.float64), yt)
    return Lemma41Estimate(
        t=rounds,
        mean_distance=float(distances.mean()),
        std_distance=float(distances.std(ddof=1)) if trials > 1 else 0.0,
        bound=lemma41_bound(rounds, lambda_k, q, np.asarray(y0, dtype=np.float64)),
        trials=trials,
    )


def empirical_expected_matching_matrix(
    graph: Graph, samples: int, *, seed: int | None = None, sparse: bool = False
) -> np.ndarray | sp.csr_matrix:
    """Monte-Carlo estimate of ``E[M(t)]``, for Lemma 2.1 validation.

    The default (``sparse=False``) accumulates a dense ``(n, n)`` array —
    fine for the small instances E5 validates.  ``sparse=True`` is the
    streaming arm: it never allocates O(n²), only the per-sample partner
    vector plus one fused key per matched edge drawn, and returns a
    ``csr_matrix`` with O(n + samples·n/2) stored entries at most.  Both
    arms consume the rng identically (one :func:`sample_random_matching`
    per sample) and all accumulated values are dyadic (sums of 0.5), so
    ``sparse=True`` is **value-identical** to densifying the result of the
    default arm for the same seed.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = np.random.default_rng(seed)
    n = graph.n
    if not sparse:
        acc = np.zeros((n, n), dtype=np.float64)
        for _ in range(samples):
            partner = sample_random_matching(graph, rng)
            acc += matching_matrix(n, partner, sparse=False)
        return acc / samples
    diag = np.zeros(n, dtype=np.float64)
    pair_keys: list[np.ndarray] = []
    for _ in range(samples):
        partner = sample_random_matching(graph, rng)
        matched = partner >= 0
        diag += np.where(matched, 0.5, 1.0)
        u = np.flatnonzero(matched & (np.arange(n) < partner))
        pair_keys.append(u * n + partner[u])
    if pair_keys:
        keys, counts = np.unique(np.concatenate(pair_keys), return_counts=True)
    else:  # pragma: no cover - samples >= 1 always yields one (maybe empty) array
        keys = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.int64)
    ku, kv = keys // n, keys % n
    vals = (0.5 * counts) / samples
    off = sp.csr_matrix(
        (
            np.concatenate([vals, vals]),
            (np.concatenate([ku, kv]), np.concatenate([kv, ku])),
        ),
        shape=(n, n),
    )
    return off + sp.diags(diag / samples, format="csr")


def convergence_time(
    graph: Graph,
    y0: np.ndarray,
    *,
    tolerance: float = 1e-3,
    max_rounds: int = 100_000,
    seed: int | None = None,
) -> int:
    """Rounds until the discrepancy (max − min load) drops below ``tolerance``.

    This is the *global* balancing time, which on a well-clustered graph is
    much larger than the paper's ``T``; benchmarks E2/E6 contrast the two.
    """
    proc = LoadBalancingProcess(graph, y0, seed=seed)
    for t in range(1, max_rounds + 1):
        proc.step()
        if proc.discrepancy() <= tolerance:
            return t
    return max_rounds


def is_projection_matrix(m: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Check ``M² = M`` and symmetry (Lemma 2.1(2))."""
    m = np.asarray(m, dtype=np.float64)
    return bool(np.allclose(m @ m, m, atol=atol) and np.allclose(m, m.T, atol=atol))


def is_doubly_stochastic(m: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Check non-negativity and unit row/column sums."""
    m = np.asarray(m, dtype=np.float64)
    return bool(
        np.all(m >= -atol)
        and np.allclose(m.sum(axis=0), 1.0, atol=atol)
        and np.allclose(m.sum(axis=1), 1.0, atol=atol)
    )
