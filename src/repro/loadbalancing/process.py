"""Load balancing processes in the random matching model.

Two processes are provided:

* :class:`LoadBalancingProcess` — the classical 1-dimensional process
  ``y(t+1) = M(t) y(t)`` of Section 4 of the paper (equation (3));
* :class:`MultiDimensionalLoadBalancing` — the paper's new multi-dimensional
  process in which ``s`` load vectors evolve under the **same** matching in
  every round (Section 3.2).  This is the numerical engine behind the
  centralised implementation of the clustering algorithm.

Both follow the vectorisation advice of the HPC guides: the per-round update
is a single fancy-indexed NumPy assignment over all matched nodes (and all
``s`` dimensions at once for the multi-dimensional process); no Python-level
per-node loops are executed on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..graphs.graph import Graph
from .matching import apply_matching, count_matched_edges, sample_random_matching

__all__ = [
    "LoadBalancingHistory",
    "LoadBalancingProcess",
    "MultiDimensionalLoadBalancing",
    "run_load_balancing",
]

MatchingSampler = Callable[[Graph, np.random.Generator], np.ndarray]


@dataclass
class LoadBalancingHistory:
    """Optional per-round record of a load balancing run."""

    loads: list[np.ndarray] = field(default_factory=list)
    matched_edges: list[int] = field(default_factory=list)

    def as_array(self) -> np.ndarray:
        """Stack the recorded load vectors into a ``(rounds+1, ...)`` array."""
        return np.stack(self.loads, axis=0)


class LoadBalancingProcess:
    """The 1-dimensional random matching load balancing process.

    Parameters
    ----------
    graph:
        Communication topology.
    initial_load:
        Initial load vector ``y(0)`` of shape ``(n,)``.
    seed / rng:
        Randomness for the matchings.
    matching_sampler:
        The matching protocol; defaults to the paper's distributed protocol
        (:func:`~repro.loadbalancing.matching.sample_random_matching`).
    """

    def __init__(
        self,
        graph: Graph,
        initial_load: np.ndarray | Sequence[float],
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        matching_sampler: MatchingSampler = sample_random_matching,
        keep_history: bool = False,
    ):
        self.graph = graph
        load = np.asarray(initial_load, dtype=np.float64).copy()
        if load.shape != (graph.n,):
            raise ValueError(f"initial load must have shape ({graph.n},)")
        self._load = load
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._sampler = matching_sampler
        self._round = 0
        self.history = LoadBalancingHistory() if keep_history else None
        if self.history is not None:
            self.history.loads.append(self._load.copy())

    @property
    def load(self) -> np.ndarray:
        """Current load vector ``y(t)`` (copy)."""
        return self._load.copy()

    @property
    def round(self) -> int:
        return self._round

    @property
    def total_load(self) -> float:
        """Invariant: the total load is conserved by every round."""
        return float(self._load.sum())

    def step(self) -> np.ndarray:
        """Execute one round; returns the matching used (partner array)."""
        partner = self._sampler(self.graph, self._rng)
        self._load = apply_matching(self._load, partner)
        self._round += 1
        if self.history is not None:
            self.history.loads.append(self._load.copy())
            self.history.matched_edges.append(count_matched_edges(partner))
        return partner

    def run(self, rounds: int) -> np.ndarray:
        """Run ``rounds`` rounds and return the resulting load vector."""
        for _ in range(rounds):
            self.step()
        return self.load

    def discrepancy(self) -> float:
        """Max minus min load — the classical load balancing error measure."""
        return float(self._load.max() - self._load.min())

    def quadratic_potential(self) -> float:
        """``‖y(t) - ȳ‖²`` where ``ȳ`` is the all-average vector."""
        mean = self._load.mean()
        return float(np.sum((self._load - mean) ** 2))


class MultiDimensionalLoadBalancing:
    """The paper's multi-dimensional process: ``s`` vectors, one shared matching.

    The configuration is an ``(n, s)`` matrix ``X`` whose column ``i`` is the
    load vector ``x^(t,i)``.  Each round samples **one** matching and applies
    it to every column simultaneously (``X ← M(t) X``), exactly as in
    Section 3.2.
    """

    def __init__(
        self,
        graph: Graph,
        initial_loads: np.ndarray,
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        matching_sampler: MatchingSampler = sample_random_matching,
        keep_history: bool = False,
    ):
        self.graph = graph
        loads = np.asarray(initial_loads, dtype=np.float64).copy()
        if loads.ndim != 2 or loads.shape[0] != graph.n:
            raise ValueError(f"initial loads must have shape ({graph.n}, s)")
        self._loads = loads
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._sampler = matching_sampler
        self._round = 0
        self._matched_edges: list[int] = []
        self.history = LoadBalancingHistory() if keep_history else None
        if self.history is not None:
            self.history.loads.append(self._loads.copy())

    @property
    def loads(self) -> np.ndarray:
        """Current configuration ``X`` of shape ``(n, s)`` (copy)."""
        return self._loads.copy()

    @property
    def s(self) -> int:
        """Number of load dimensions (seeded vectors)."""
        return int(self._loads.shape[1])

    @property
    def round(self) -> int:
        return self._round

    @property
    def column_sums(self) -> np.ndarray:
        """Per-dimension total load (each is conserved across rounds)."""
        return self._loads.sum(axis=0)

    @property
    def matched_edges_per_round(self) -> list[int]:
        return list(self._matched_edges)

    def step(self, partner: np.ndarray | None = None) -> np.ndarray:
        """Execute one round; returns the matching used (partner array).

        ``partner`` injects a pre-sampled matching (e.g. one row of
        :func:`~repro.loadbalancing.matching.sample_random_matchings`)
        instead of drawing a fresh one — the hook the vectorised round engine
        and the cross-implementation tests use to replay a shared schedule.
        The update is applied in place: matchings are independent of the load
        configuration, so no round ever needs the previous round's copy.
        """
        if partner is None:
            partner = self._sampler(self.graph, self._rng)
        apply_matching(self._loads, partner, out=self._loads)
        self._round += 1
        self._matched_edges.append(count_matched_edges(partner))
        if self.history is not None:
            self.history.loads.append(self._loads.copy())
            self.history.matched_edges.append(self._matched_edges[-1])
        return partner

    def run(self, rounds: int) -> np.ndarray:
        for _ in range(rounds):
            self.step()
        return self.loads


def run_load_balancing(
    graph: Graph,
    initial_load: np.ndarray,
    rounds: int,
    *,
    seed: int | None = None,
    matching_sampler: MatchingSampler = sample_random_matching,
) -> np.ndarray:
    """Convenience function: run the appropriate process for ``rounds`` rounds.

    Dispatches on the dimensionality of ``initial_load`` (1-D vector → the
    classical process, 2-D matrix → the multi-dimensional process) and
    returns the final configuration.
    """
    initial_load = np.asarray(initial_load, dtype=np.float64)
    if initial_load.ndim == 1:
        proc: LoadBalancingProcess | MultiDimensionalLoadBalancing = LoadBalancingProcess(
            graph, initial_load, seed=seed, matching_sampler=matching_sampler
        )
    else:
        proc = MultiDimensionalLoadBalancing(
            graph, initial_load, seed=seed, matching_sampler=matching_sampler
        )
    return proc.run(rounds)
