"""Load balancing substrate: the random matching model and its relatives.

Implements Section 2.2 of the paper (the matching protocol and the matching
matrix), the classical 1-dimensional load balancing process, the paper's
multi-dimensional variant, alternative averaging substrates used for
ablations, and empirical validators for Lemma 2.1 and Lemma 4.1.
"""

from .discrete import DiscreteLoadBalancingProcess, discrete_balancing_error
from .analysis import (
    Lemma41Estimate,
    convergence_time,
    empirical_expected_matching_matrix,
    estimate_expected_projection_distance,
    is_doubly_stochastic,
    is_projection_matrix,
    lemma41_bound,
    projection_distance,
)
from .matching import (
    apply_masked_matching,
    apply_matching,
    count_matched_edges,
    dbar,
    expected_matching_matrix,
    matching_matrix,
    matching_to_edge_list,
    resolve_proposals_masked,
    sample_matching_proposals,
    sample_maximal_matching,
    sample_random_matching,
    sample_random_matching_fast,
    sample_random_matchings,
)
from .models import (
    AveragingModel,
    DiffusionModel,
    DimensionExchangeModel,
    MaximalMatchingModel,
    RandomMatchingModel,
    make_averaging_model,
)
from .process import (
    LoadBalancingHistory,
    LoadBalancingProcess,
    MultiDimensionalLoadBalancing,
    run_load_balancing,
)

__all__ = [
    # matching.py
    "apply_masked_matching",
    "apply_matching",
    "count_matched_edges",
    "dbar",
    "expected_matching_matrix",
    "matching_matrix",
    "matching_to_edge_list",
    "resolve_proposals_masked",
    "sample_matching_proposals",
    "sample_maximal_matching",
    "sample_random_matching",
    "sample_random_matching_fast",
    "sample_random_matchings",
    # discrete.py
    "DiscreteLoadBalancingProcess",
    "discrete_balancing_error",
    # process.py
    "LoadBalancingHistory",
    "LoadBalancingProcess",
    "MultiDimensionalLoadBalancing",
    "run_load_balancing",
    # models.py
    "AveragingModel",
    "DiffusionModel",
    "DimensionExchangeModel",
    "MaximalMatchingModel",
    "RandomMatchingModel",
    "make_averaging_model",
    # analysis.py
    "Lemma41Estimate",
    "convergence_time",
    "empirical_expected_matching_matrix",
    "estimate_expected_projection_distance",
    "is_doubly_stochastic",
    "is_projection_matrix",
    "lemma41_bound",
    "projection_distance",
]
