"""Discrete (indivisible-token) load balancing in the random matching model.

The paper's process averages *divisible* load, which is the right abstraction
for its clustering application (the "load" is a probability mass).  The load
balancing literature it builds on, however, is mostly about **indivisible
tokens** (Rabani–Sinclair–Wanka, Friedrich–Sauerwald, Berenbrink et al.,
Sauerwald–Sun): when two matched nodes with ``a`` and ``b`` tokens balance,
they can only move whole tokens, ending with ``⌈(a+b)/2⌉`` and ``⌊(a+b)/2⌋``
(the *deterministic* orientation) or splitting the excess token by a fair
coin (the *randomised rounding* of Sauerwald–Sun, which removes the
polynomial gap between the discrete and continuous processes).

This module implements both discrete variants next to the continuous one so
that users can quantify the rounding error empirically — an extension of the
paper's framework rather than part of it (recorded as such in DESIGN.md), and
the substrate for the token-based clustering heuristic in
:mod:`repro.core.tokens`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from .matching import matching_to_edge_list, sample_random_matching
from .process import MatchingSampler

__all__ = ["DiscreteLoadBalancingProcess", "discrete_balancing_error"]


@dataclass
class _DiscreteConfig:
    randomised_rounding: bool


class DiscreteLoadBalancingProcess:
    """Indivisible-token load balancing under the random matching model.

    Parameters
    ----------
    graph:
        Communication topology.
    initial_tokens:
        Integer vector of token counts per node.
    randomised_rounding:
        If ``True`` (default) the excess token of an odd pair sum goes to
        either endpoint with probability 1/2 (Sauerwald–Sun); if ``False`` it
        always goes to the lower-numbered endpoint (worst-case deterministic
        orientation).
    """

    def __init__(
        self,
        graph: Graph,
        initial_tokens: np.ndarray,
        *,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        randomised_rounding: bool = True,
        matching_sampler: MatchingSampler = sample_random_matching,
    ):
        tokens = np.asarray(initial_tokens)
        if tokens.shape != (graph.n,):
            raise ValueError(f"initial tokens must have shape ({graph.n},)")
        if not np.issubdtype(tokens.dtype, np.integer):
            raise ValueError("token counts must be integers")
        if np.any(tokens < 0):
            raise ValueError("token counts must be non-negative")
        self.graph = graph
        self._tokens = tokens.astype(np.int64).copy()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._config = _DiscreteConfig(randomised_rounding=randomised_rounding)
        self._sampler = matching_sampler
        self._round = 0

    # ------------------------------------------------------------------ #

    @property
    def tokens(self) -> np.ndarray:
        return self._tokens.copy()

    @property
    def round(self) -> int:
        return self._round

    @property
    def total_tokens(self) -> int:
        """Invariant: tokens are conserved exactly."""
        return int(self._tokens.sum())

    def discrepancy(self) -> int:
        """Max minus min token count."""
        return int(self._tokens.max() - self._tokens.min())

    def step(self) -> np.ndarray:
        """One matching round of discrete balancing; returns the matching used."""
        partner = self._sampler(self.graph, self._rng)
        pairs = matching_to_edge_list(partner)
        if pairs.shape[0]:
            u = pairs[:, 0]
            v = pairs[:, 1]
            sums = self._tokens[u] + self._tokens[v]
            low = sums // 2
            high = sums - low
            if self._config.randomised_rounding:
                # the excess token (if any) goes to u or v by a fair coin
                coin = self._rng.random(pairs.shape[0]) < 0.5
                u_gets = np.where(coin, high, low)
                v_gets = sums - u_gets
            else:
                u_gets = high
                v_gets = low
            self._tokens[u] = u_gets
            self._tokens[v] = v_gets
        self._round += 1
        return partner

    def run(self, rounds: int) -> np.ndarray:
        for _ in range(rounds):
            self.step()
        return self.tokens


def discrete_balancing_error(
    graph: Graph,
    initial_tokens: np.ndarray,
    rounds: int,
    *,
    seed: int | None = None,
    randomised_rounding: bool = True,
) -> dict[str, float]:
    """Compare the discrete process against the continuous one on shared matchings.

    Runs both processes from the same initial configuration using the *same*
    sequence of matchings and returns the final discrepancies and the maximum
    per-node deviation between them — an empirical handle on the rounding
    error studied by the discrete load balancing literature.
    """
    from .process import LoadBalancingProcess

    initial_tokens = np.asarray(initial_tokens, dtype=np.int64)
    shared_matchings: list[np.ndarray] = []

    def recording_sampler(g: Graph, rng: np.random.Generator) -> np.ndarray:
        partner = sample_random_matching(g, rng)
        shared_matchings.append(partner)
        return partner

    discrete = DiscreteLoadBalancingProcess(
        graph,
        initial_tokens,
        seed=seed,
        randomised_rounding=randomised_rounding,
        matching_sampler=recording_sampler,
    )
    discrete_final = discrete.run(rounds)

    replay_index = {"i": 0}

    def replay_sampler(g: Graph, rng: np.random.Generator) -> np.ndarray:
        partner = shared_matchings[replay_index["i"]]
        replay_index["i"] += 1
        return partner

    continuous = LoadBalancingProcess(
        graph, initial_tokens.astype(np.float64), seed=seed, matching_sampler=replay_sampler
    )
    continuous_final = continuous.run(rounds)

    return {
        "discrete_discrepancy": float(discrete_final.max() - discrete_final.min()),
        "continuous_discrepancy": float(continuous_final.max() - continuous_final.min()),
        "max_deviation": float(np.abs(discrete_final - continuous_final).max()),
    }
