"""Experiment runner: repeated trials, sweeps and aggregation.

Every benchmark in ``benchmarks/`` follows the same shape: generate an
instance family, run one or more algorithms for several independent trials,
aggregate per-configuration statistics and print a table.  The small
framework here factors that shape out so each bench file only states *what*
to run.

Design notes
------------
* Algorithms are supplied as callables ``(instance, seed) -> dict`` returning
  a flat record; helpers are provided that adapt the paper's algorithm and
  the baseline interface to that shape.
* Aggregation computes mean and standard deviation of every numeric field
  across trials; non-numeric fields must be constant within a configuration.
* No parallelism: trials are short and pytest-benchmark expects to own the
  timing; the runner is deliberately simple and deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..baselines.base import BaselineClusterer
from ..core.centralized import CentralizedClustering
from ..core.distributed import DistributedClustering
from ..core.parameters import AlgorithmParameters
from ..graphs.generators import ClusteredGraph
from .metrics import clustering_report
from .tables import format_table

__all__ = [
    "TrialRecord",
    "ExperimentResult",
    "trial_seed",
    "run_trials",
    "aggregate_records",
    "sweep",
    "evaluate_load_balancing_clustering",
    "evaluate_distributed_clustering",
    "evaluate_baseline",
]

AlgorithmCallable = Callable[[ClusteredGraph, int], Mapping[str, Any]]


@dataclass
class TrialRecord:
    """One (configuration, trial) observation."""

    config: dict[str, Any]
    trial: int
    values: dict[str, Any]


@dataclass
class ExperimentResult:
    """All records of one experiment plus helpers to aggregate and render them."""

    records: list[TrialRecord] = field(default_factory=list)

    def add(self, config: dict[str, Any], trial: int, values: Mapping[str, Any]) -> None:
        self.records.append(TrialRecord(config=dict(config), trial=trial, values=dict(values)))

    def aggregated(self, group_keys: Sequence[str]) -> list[dict[str, Any]]:
        """Group records by ``group_keys`` and average the numeric fields."""
        groups: dict[tuple, list[TrialRecord]] = {}
        for record in self.records:
            key = tuple(record.config.get(k) for k in group_keys)
            groups.setdefault(key, []).append(record)
        rows: list[dict[str, Any]] = []
        for key, members in groups.items():
            row: dict[str, Any] = {k: v for k, v in zip(group_keys, key)}
            row["trials"] = len(members)
            numeric_fields: dict[str, list[float]] = {}
            for record in members:
                for field_name, value in record.values.items():
                    if isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
                        value, bool
                    ):
                        numeric_fields.setdefault(field_name, []).append(float(value))
                    else:
                        row.setdefault(field_name, value)
            for field_name, values in numeric_fields.items():
                row[field_name] = float(np.mean(values))
                if len(values) > 1:
                    row[field_name + "_std"] = float(np.std(values, ddof=1))
            rows.append(row)
        return rows

    def table(
        self, group_keys: Sequence[str], columns: Sequence[str], *, title: str | None = None
    ) -> str:
        rows = self.aggregated(group_keys)
        return format_table(
            list(columns), [[row.get(c, "") for c in columns] for row in rows], title=title
        )


def trial_seed(name: str, trial: int, base_seed: int = 0) -> int:
    """Derive the per-(algorithm, trial) seed used by :func:`run_trials`.

    The algorithm name enters through ``zlib.crc32`` — a *stable* digest.
    The seed previously used ``hash(name)``, which is randomised per process
    by ``PYTHONHASHSEED``, so experiment records silently changed between
    runs; CRC32 makes every record reproducible run-to-run (and the formula
    is pinned by a regression test).
    """
    return base_seed + 1000 * trial + zlib.crc32(name.encode("utf-8")) % 997


def run_trials(
    instances: Iterable[tuple[dict[str, Any], ClusteredGraph]],
    algorithms: Mapping[str, AlgorithmCallable],
    *,
    trials: int = 3,
    base_seed: int = 0,
) -> ExperimentResult:
    """Run every algorithm on every instance for ``trials`` independent seeds."""
    result = ExperimentResult()
    for config, instance in instances:
        for name, algorithm in algorithms.items():
            for trial in range(trials):
                seed = trial_seed(name, trial, base_seed)
                values = dict(algorithm(instance, seed))
                values.setdefault("algorithm", name)
                full_config = dict(config)
                full_config["algorithm"] = name
                result.add(full_config, trial, values)
    return result


def aggregate_records(records: Iterable[Mapping[str, Any]], group_keys: Sequence[str]) -> list[dict[str, Any]]:
    """Aggregate plain record dictionaries (convenience for ad-hoc benches)."""
    result = ExperimentResult()
    for i, record in enumerate(records):
        config = {k: record[k] for k in group_keys if k in record}
        values = {k: v for k, v in record.items() if k not in group_keys}
        result.add(config, i, values)
    return result.aggregated(group_keys)


def sweep(values: Iterable[Any], make_instance: Callable[[Any], ClusteredGraph], key: str = "value"):
    """Yield ``(config, instance)`` pairs for a one-parameter sweep."""
    for value in values:
        yield {key: value}, make_instance(value)


# --------------------------------------------------------------------------- #
# Adapters
# --------------------------------------------------------------------------- #

def evaluate_load_balancing_clustering(
    *,
    round_constant: float | None = None,
    rounds: int | None = None,
    beta: float | None = None,
    fallback: str = "argmax",
    backend: str = "centralized",
) -> AlgorithmCallable:
    """Adapter running the paper's algorithm and scoring it.

    ``backend`` selects the execution stack: ``"centralized"`` (default, the
    historical matrix driver with the legacy random stream), or any round
    engine registered with :mod:`repro.core.engines` — ``"vectorized"`` for
    the fast array backend, ``"message-passing"`` for the per-node
    simulator with exact communication accounting.
    """

    def run(instance: ClusteredGraph, seed: int) -> dict[str, Any]:
        kwargs: dict[str, Any] = {}
        if round_constant is not None:
            kwargs["round_constant"] = round_constant
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition, **kwargs)
        if beta is not None:
            params = AlgorithmParameters.from_graph(
                instance.graph, instance.partition.k, beta=beta, **kwargs
            )
        if rounds is not None:
            params = params.with_rounds(rounds)
        if backend == "centralized":
            result = CentralizedClustering(
                instance.graph, params, seed=seed, fallback=fallback
            ).run(keep_loads=False)
        else:
            result = DistributedClustering(
                instance.graph, params, seed=seed, fallback=fallback, backend=backend
            ).run()
        record = clustering_report(result.partition, instance.partition)
        record.update(
            rounds=result.rounds,
            num_seeds=result.num_seeds,
            unlabelled=result.num_unlabelled,
            backend=backend,
        )
        if result.communication is not None:
            record.update(words=result.communication.total_words)
        return record

    return run


def evaluate_distributed_clustering(
    *, backend: str = "vectorized", **kwargs: Any
) -> AlgorithmCallable:
    """Adapter running the distributed driver on a chosen round-engine backend.

    Identical to :func:`evaluate_load_balancing_clustering` (all of whose
    keyword options pass through) except that the default backend is the
    vectorized round engine rather than the legacy centralised driver.
    """
    return evaluate_load_balancing_clustering(backend=backend, **kwargs)


def evaluate_baseline(baseline: BaselineClusterer) -> AlgorithmCallable:
    """Adapter running a baseline clusterer and scoring it."""

    def run(instance: ClusteredGraph, seed: int) -> dict[str, Any]:
        result = baseline.cluster(instance.graph, instance.partition.k, seed=seed)
        record = clustering_report(result.partition, instance.partition)
        record.update(rounds=result.rounds, words=result.words)
        return record

    return run
