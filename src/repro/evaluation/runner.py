"""Experiment runner: repeated trials, sweeps, parallel execution, aggregation.

Every benchmark in ``benchmarks/`` follows the same shape: generate an
instance family, run one or more algorithms for several independent trials,
aggregate per-configuration statistics and print a table.  The small
framework here factors that shape out so each bench file only states *what*
to run.  ``docs/experiments.md`` documents how the pieces (trial seeding,
the executors and the instance cache) interact in practice.

Design notes
------------
* Algorithms are supplied as callables ``(instance, seed) -> dict`` returning
  a flat record; helpers are provided that adapt the paper's algorithm and
  the baseline interface to that shape.  The adapters are *picklable*
  callable objects (not closures) so they cross process boundaries.
* Every (algorithm, trial) pair draws its seed from :func:`trial_seed`, a
  stable crc32 digest — trials are therefore independent of execution order
  and of each other, i.e. embarrassingly parallel.
* Execution is pluggable through :class:`TrialExecutor`.  The unit of work
  is a :class:`TrialTask` — a *serializable* descriptor of one grid cell
  (grid index, algorithm key, trial number, base seed, plus optional
  digest-addressed instance/algorithm specs for transports that cannot
  ship live objects) — and the unit of result is the :class:`TrialRecord`
  envelope.  :class:`SerialExecutor` runs the classic in-process loop,
  :class:`ProcessExecutor` fans the task grid across a
  ``concurrent.futures.ProcessPoolExecutor``, and :class:`QueueExecutor`
  submits the tasks to a :class:`repro.service.jobs.JobStore` and streams
  completed records back in canonical grid order — the transport seam the
  service layer (``repro serve``/``submit``) shares.  All executors return
  records in the same canonical (instance, algorithm, trial) order, and
  each record's content depends only on its own seed, so every path is
  **bit-identical** to the sequential one (pinned by
  ``tests/evaluation/test_runner.py::TestParallelExecution`` and
  ``tests/service/test_parity.py``).
* Aggregation computes mean and standard deviation of every numeric field
  across trials; non-numeric fields must be constant within a configuration.
"""

from __future__ import annotations

import json
import os
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..baselines.base import BaselineClusterer
from ..core.centralized import CentralizedClustering
from ..core.distributed import DistributedClustering
from ..core.parameters import AlgorithmParameters
from ..distsim.failures import FailureModel
from ..graphs.generators import ClusteredGraph
from .metrics import clustering_report, structural_report
from .tables import format_table

__all__ = [
    "LABELS_KEY",
    "TrialTask",
    "TrialRecord",
    "ExperimentResult",
    "TrialExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "QueueExecutor",
    "trial_seed",
    "run_trials",
    "aggregate_records",
    "sweep",
    "evaluate_load_balancing_clustering",
    "evaluate_distributed_clustering",
    "evaluate_baseline",
]

AlgorithmCallable = Callable[[ClusteredGraph, int], Mapping[str, Any]]

#: Reserved key an adapter built with ``keep_labels=True`` uses to smuggle
#: the predicted label vector out of a trial.  Consumers (the service-layer
#: worker) pop it before the values enter a :class:`TrialRecord`, so pinned
#: record layouts never see it.
LABELS_KEY = "_labels"


def _json_scalar(value: Any) -> Any:
    """JSON fallback for numpy scalars inside task/record payloads."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, np.bool_)):
        return value.item()
    raise TypeError(f"{type(value).__name__} is not JSON-serialisable")


@dataclass
class TrialRecord:
    """One (configuration, trial) observation — the transport-neutral
    result envelope every executor and the job service agree on."""

    config: dict[str, Any]
    trial: int
    values: dict[str, Any]

    def to_json(self) -> str:
        """Serialise the envelope (numpy scalars collapse to Python ones).

        The JSON form is for transports and the REST layer; float values
        round-trip exactly (``repr``-based), but numpy *types* collapse to
        their Python equivalents.  Transports that must preserve types bit
        for bit (the job store) pickle the envelope instead.
        """
        return json.dumps(
            {"config": self.config, "trial": self.trial, "values": self.values},
            sort_keys=True,
            default=_json_scalar,
        )

    @classmethod
    def from_json(cls, text: str) -> "TrialRecord":
        payload = json.loads(text)
        return cls(
            config=dict(payload["config"]),
            trial=int(payload["trial"]),
            values=dict(payload["values"]),
        )


@dataclass(frozen=True)
class TrialTask:
    """Serializable descriptor of one (instance, algorithm, trial) cell.

    This is the unit every transport moves: local executors need only
    ``index``/``algorithm``/``trial``/``base_seed`` (the instance and the
    adapter travel out of band, as live or pickled objects), while
    digest-addressed transports (the job service) fill ``instance`` — a
    plain-JSON spec ``{"generator", "params", "seed", "mmap", "digest"}``
    resolvable through :func:`repro.graphs.cached_instance` on any worker
    that shares the cache directory — and ``options``, the algorithm spec
    consumed by :func:`repro.service.jobs.make_algorithm`.  ``config`` is
    the display configuration the finished :class:`TrialRecord` carries.

    The task's randomness is fully determined by its own coordinates:
    ``seed`` is :func:`trial_seed`  of ``(algorithm, trial, base_seed)``,
    which is what makes any executor — and any remote worker — produce the
    record the serial loop would have.
    """

    index: int
    algorithm: str
    trial: int
    base_seed: int = 0
    config: dict[str, Any] | None = None
    instance: dict[str, Any] | None = None
    options: dict[str, Any] | None = None

    @property
    def seed(self) -> int:
        """The trial's RNG seed — a pure function of the task coordinates."""
        return trial_seed(self.algorithm, self.trial, self.base_seed)

    def to_json(self) -> str:
        payload = {
            "index": self.index,
            "algorithm": self.algorithm,
            "trial": self.trial,
            "base_seed": self.base_seed,
        }
        for key in ("config", "instance", "options"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return json.dumps(payload, sort_keys=True, default=_json_scalar)

    @classmethod
    def from_json(cls, text: str) -> "TrialTask":
        payload = json.loads(text)
        return cls(
            index=int(payload["index"]),
            algorithm=str(payload["algorithm"]),
            trial=int(payload["trial"]),
            base_seed=int(payload.get("base_seed", 0)),
            config=payload.get("config"),
            instance=payload.get("instance"),
            options=payload.get("options"),
        )


@dataclass
class ExperimentResult:
    """All records of one experiment plus helpers to aggregate and render them."""

    records: list[TrialRecord] = field(default_factory=list)

    def add(self, config: dict[str, Any], trial: int, values: Mapping[str, Any]) -> None:
        self.records.append(TrialRecord(config=dict(config), trial=trial, values=dict(values)))

    def aggregated(self, group_keys: Sequence[str]) -> list[dict[str, Any]]:
        """Group records by ``group_keys`` and average the numeric fields."""
        groups: dict[tuple, list[TrialRecord]] = {}
        for record in self.records:
            key = tuple(record.config.get(k) for k in group_keys)
            groups.setdefault(key, []).append(record)
        rows: list[dict[str, Any]] = []
        for key, members in groups.items():
            row: dict[str, Any] = {k: v for k, v in zip(group_keys, key)}
            row["trials"] = len(members)
            numeric_fields: dict[str, list[float]] = {}
            for record in members:
                for field_name, value in record.values.items():
                    if isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
                        value, bool
                    ):
                        numeric_fields.setdefault(field_name, []).append(float(value))
                    else:
                        row.setdefault(field_name, value)
            for field_name, values in numeric_fields.items():
                row[field_name] = float(np.mean(values))
                if len(values) > 1:
                    row[field_name + "_std"] = float(np.std(values, ddof=1))
            rows.append(row)
        return rows

    def table(
        self, group_keys: Sequence[str], columns: Sequence[str], *, title: str | None = None
    ) -> str:
        rows = self.aggregated(group_keys)
        return format_table(
            list(columns), [[row.get(c, "") for c in columns] for row in rows], title=title
        )


def trial_seed(name: str, trial: int, base_seed: int = 0) -> int:
    """Derive the per-(algorithm, trial) seed used by :func:`run_trials`.

    The algorithm name enters through ``zlib.crc32`` — a *stable* digest.
    The seed previously used ``hash(name)``, which is randomised per process
    by ``PYTHONHASHSEED``, so experiment records silently changed between
    runs; CRC32 makes every record reproducible run-to-run (and the formula
    is pinned by a regression test).  Stability across *processes* is also
    what makes the parallel executor sound: a worker derives exactly the
    seed the serial loop would have used.
    """
    return base_seed + 1000 * trial + zlib.crc32(name.encode("utf-8")) % 997


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #

def _run_one_trial(
    instances: Sequence[tuple[dict[str, Any], ClusteredGraph]],
    algorithms: Mapping[str, AlgorithmCallable],
    task: TrialTask,
) -> dict[str, Any]:
    """Execute one :class:`TrialTask` against live instances/algorithms."""
    _, instance = instances[task.index]
    values = dict(algorithms[task.algorithm](instance, task.seed))
    values.setdefault("algorithm", task.algorithm)
    return values


def _task_grid(
    instances: Sequence[tuple[dict[str, Any], ClusteredGraph]],
    algorithms: Mapping[str, AlgorithmCallable],
    trials: int,
    base_seed: int,
) -> list[TrialTask]:
    """The canonical (instance, algorithm, trial) ordering all executors share."""
    return [
        TrialTask(
            index=index,
            algorithm=name,
            trial=trial,
            base_seed=base_seed,
            config={**instances[index][0], "algorithm": name},
        )
        for index in range(len(instances))
        for name in algorithms
        for trial in range(trials)
    ]


class TrialExecutor(ABC):
    """Strategy deciding *where* the independent trial grid executes.

    Implementations receive the materialised instance list, the algorithm
    mapping and the :class:`TrialTask` grid, and must return one ``values``
    dict per task **in task order**.  Because each task's randomness comes
    only from its own :attr:`TrialTask.seed`, any executor that honours the
    ordering yields records identical to :class:`SerialExecutor`'s —
    whether it runs the task in this process, another process, or another
    machine reached through a job store.
    """

    @abstractmethod
    def execute(
        self,
        instances: Sequence[tuple[dict[str, Any], ClusteredGraph]],
        algorithms: Mapping[str, AlgorithmCallable],
        tasks: Sequence[TrialTask],
    ) -> list[dict[str, Any]]:
        """Run every task and return its values dict, in task order."""


class SerialExecutor(TrialExecutor):
    """In-process execution — the classic sequential loop."""

    def execute(self, instances, algorithms, tasks):
        return [_run_one_trial(instances, algorithms, task) for task in tasks]


# Worker-side state for ProcessExecutor, installed once per worker process by
# the pool initializer so each task submission only ships a 3-tuple instead of
# re-pickling the instance list for every cell of the grid.
_WORKER_STATE: dict[str, Any] = {}

#: Thread-pool knobs pinned to 1 in every ProcessExecutor worker (unless the
#: caller exported them explicitly): with N worker *processes* already running
#: one trial each, a threaded kernel (numba's pool, OpenMP, OpenBLAS) inside
#: every worker would oversubscribe the machine N×threads-fold and thrash.
_WORKER_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "NUMBA_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
)


def _pin_worker_threads() -> None:
    """Default the worker's thread-pool env knobs to 1 (no override of
    explicit settings — ``setdefault`` keeps anything the user exported)."""
    for var in _WORKER_THREAD_ENV_VARS:
        os.environ.setdefault(var, "1")


def _process_worker_init(
    instances: Sequence[tuple[dict[str, Any], ClusteredGraph]],
    algorithms: Mapping[str, AlgorithmCallable],
) -> None:
    _pin_worker_threads()
    _WORKER_STATE["instances"] = instances
    _WORKER_STATE["algorithms"] = algorithms


def _process_worker_run(task: TrialTask) -> dict[str, Any]:
    return _run_one_trial(
        _WORKER_STATE["instances"],
        _WORKER_STATE["algorithms"],
        task,
    )


class ProcessExecutor(TrialExecutor):
    """Fan the trial grid across a ``ProcessPoolExecutor``.

    The instance list and algorithm mapping are shipped to each worker once
    (pool initializer); tasks are then tiny :class:`TrialTask` descriptors.
    Results are collected with ``Executor.map``, which preserves submission
    order, so the merged records match the serial path bit for bit.

    Requirements: instances and algorithm callables must be picklable.  The
    ``evaluate_*`` adapters in this module are dataclass-based for exactly
    this reason; ad-hoc lambdas/closures are fine for :class:`SerialExecutor`
    but will raise under this one.

    Memory-mapped instances (``cached_instance(..., mmap=True)``) are the
    cheap way to fan a large graph out: their storage pickles as **just the
    cache-entry path** (:meth:`repro.graphs.store.MmapStorage.__reduce__`),
    so each worker re-opens the on-disk shards and all workers share one
    copy of the adjacency in the OS page cache — instead of each
    deserialising its own few-hundred-MB private copy, which is what a
    dense instance costs here at n = 10⁶.
    """

    def __init__(self, workers: int | None = None):
        self.workers = (os.cpu_count() or 1) if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def execute(self, instances, algorithms, tasks):
        from concurrent.futures import ProcessPoolExecutor

        if not tasks:
            return []
        # A worker crash (e.g. unpicklable algorithm) surfaces as
        # BrokenProcessPool from map(); nothing to clean up — results-so-far
        # are discarded and the caller sees the original error.
        chunksize = max(1, len(tasks) // (self.workers * 4))
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_process_worker_init,
            initargs=(list(instances), dict(algorithms)),
        ) as pool:
            return list(pool.map(_process_worker_run, tasks, chunksize=chunksize))


class QueueExecutor(TrialExecutor):
    """Submit the task grid to a job store; stream records back in order.

    The transport-agnostic executor: where :class:`ProcessExecutor` owns
    its worker pool, this one only *enqueues* — each task becomes one row
    in a :class:`repro.service.jobs.JobStore` (SQLite, shareable between
    processes and, via a shared filesystem, machines), and any number of
    worker agents (:class:`repro.service.jobs.Worker`, `repro serve
    --workers N`, or a worker loop on another host) claim and run them.
    Completed records are streamed back **in canonical grid order** as
    they land, so the merged result is bit-identical to
    :class:`SerialExecutor`'s (pinned by ``tests/service/test_parity.py``).

    ``store`` is a :class:`~repro.service.jobs.JobStore`, a database path,
    or ``None`` for a private temporary store that lives only for the call.
    ``workers`` inline worker threads are started for the duration of the
    job (0 = rely entirely on external workers already attached to the
    store).  Instances and algorithms ship through the store as the job's
    pickled context — the same picklability contract as
    :class:`ProcessExecutor`, with memory-mapped instances shipping by
    path.
    """

    def __init__(
        self,
        store: Any = None,
        *,
        workers: int | None = 1,
        poll_interval: float = 0.02,
        timeout: float = 600.0,
    ):
        self.store = store
        self.workers = 1 if workers is None else int(workers)
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.workers == 0 and store is None:
            raise ValueError(
                "QueueExecutor(workers=0) needs an explicit store with "
                "external workers attached; a private temporary store "
                "would never drain"
            )
        self.poll_interval = float(poll_interval)
        self.timeout = float(timeout)

    def execute(self, instances, algorithms, tasks):
        import tempfile
        import threading

        from ..service.jobs import JobStore, Worker

        if not tasks:
            return []
        store = self.store
        temp_db: str | None = None
        if store is None:
            fd, temp_db = tempfile.mkstemp(suffix=".jobs.sqlite")
            os.close(fd)
            store = JobStore(temp_db)
        elif not isinstance(store, JobStore):
            store = JobStore(store)
        try:
            job_id = store.create_job(
                spec={"kind": "run_trials", "tasks": len(tasks)},
                tasks=tasks,
                context=(list(instances), dict(algorithms)),
            )
            threads = [
                threading.Thread(
                    target=Worker(store, name=f"inline-{i}").run_job,
                    args=(job_id,),
                    daemon=True,
                )
                for i in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            records = [
                record.values
                for record in store.iter_records(
                    job_id, timeout=self.timeout, poll_interval=self.poll_interval
                )
            ]
            for thread in threads:
                thread.join()
            return records
        finally:
            if temp_db is not None:
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(temp_db + suffix)
                    except OSError:
                        pass


def _resolve_executor(
    executor: str | TrialExecutor, workers: int | None
) -> TrialExecutor:
    if isinstance(executor, TrialExecutor):
        if workers is not None:
            raise ValueError(
                "pass either an executor instance or workers=, not both: "
                f"{type(executor).__name__} already fixes its own worker "
                "count, so workers would be silently ignored"
            )
        return executor
    if executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessExecutor(workers)
    if executor == "queue":
        return QueueExecutor(workers=workers)
    raise ValueError(
        f"unknown executor {executor!r}: expected 'serial', 'process', "
        "'queue' or a TrialExecutor"
    )


def run_trials(
    instances: Iterable[tuple[dict[str, Any], ClusteredGraph]],
    algorithms: Mapping[str, AlgorithmCallable],
    *,
    trials: int = 3,
    base_seed: int = 0,
    executor: str | TrialExecutor = "serial",
    workers: int | None = None,
) -> ExperimentResult:
    """Run every algorithm on every instance for ``trials`` independent seeds.

    ``executor`` selects where the (instance, algorithm, trial) grid runs:
    ``"serial"`` (default, in-process), ``"process"`` (a
    :class:`ProcessExecutor` with ``workers`` processes — ``None`` means all
    cores), or ``"queue"`` (a :class:`QueueExecutor` with ``workers`` inline
    worker threads draining a private job store).  A :class:`TrialExecutor`
    instance is used as-is — combining one with ``workers=`` raises, since
    the instance already fixes its own worker count and the argument would
    otherwise be silently ignored.  All executors produce bit-identical
    :class:`TrialRecord` lists because every trial's randomness derives
    only from its own :func:`trial_seed`.
    """
    resolved = _resolve_executor(executor, workers)
    instance_list = list(instances)
    tasks = _task_grid(instance_list, algorithms, trials, base_seed)
    all_values = resolved.execute(instance_list, algorithms, tasks)
    if len(all_values) != len(tasks):
        raise RuntimeError(
            f"executor returned {len(all_values)} results for {len(tasks)} tasks"
        )
    result = ExperimentResult()
    for task, values in zip(tasks, all_values):
        result.add(task.config, task.trial, values)
    return result


def aggregate_records(records: Iterable[Mapping[str, Any]], group_keys: Sequence[str]) -> list[dict[str, Any]]:
    """Aggregate plain record dictionaries (convenience for ad-hoc benches)."""
    result = ExperimentResult()
    for i, record in enumerate(records):
        config = {k: record[k] for k in group_keys if k in record}
        values = {k: v for k, v in record.items() if k not in group_keys}
        result.add(config, i, values)
    return result.aggregated(group_keys)


def sweep(
    values: Iterable[Any],
    make_instance: Callable[..., ClusteredGraph],
    key: str = "value",
    *,
    cache_dir: str | None = None,
):
    """Yield ``(config, instance)`` pairs for a one-parameter sweep.

    When ``cache_dir`` is given it is forwarded to ``make_instance`` as a
    keyword, so a factory built on :func:`repro.graphs.cached_instance` can
    thread the on-disk instance cache through without the call site growing
    a second code path::

        sweep(qs,
              lambda q, cache_dir=None: cached_instance(
                  planted_partition, n=240, k=3, p_in=0.3, p_out=q,
                  ensure_connected=True, seed=int(q * 10_000),
                  cache_dir=cache_dir),
              key="q", cache_dir=args.cache_dir)
    """
    for value in values:
        if cache_dir is None:
            yield {key: value}, make_instance(value)
        else:
            yield {key: value}, make_instance(value, cache_dir=cache_dir)


# --------------------------------------------------------------------------- #
# Adapters
# --------------------------------------------------------------------------- #
#
# These are dataclasses rather than closures so that a configured adapter can
# be pickled into ProcessExecutor workers; the evaluate_* factories below keep
# the historical call-site API.

@dataclass(frozen=True)
class _LoadBalancingAdapter:
    """Picklable callable running the paper's algorithm and scoring it."""

    round_constant: float | None = None
    rounds: int | None = None
    beta: float | None = None
    fallback: str = "argmax"
    backend: str = "centralized"
    block_size: int | None = None
    threads: int | None = None
    failures: FailureModel | None = None
    structural: bool = False
    keep_labels: bool = False

    def __call__(self, instance: ClusteredGraph, seed: int) -> dict[str, Any]:
        kwargs: dict[str, Any] = {}
        if self.round_constant is not None:
            kwargs["round_constant"] = self.round_constant
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition, **kwargs)
        if self.beta is not None:
            params = AlgorithmParameters.from_graph(
                instance.graph, instance.partition.k, beta=self.beta, **kwargs
            )
        if self.rounds is not None:
            params = params.with_rounds(self.rounds)
        if self.threads is not None and self.backend not in ("parallel", "threaded", "jit"):
            raise ValueError(
                "threads applies to the parallel round engine; "
                f"backend {self.backend!r} has no thread knob"
            )
        if self.backend == "centralized":
            if self.block_size is not None:
                raise ValueError(
                    "block_size applies to round-engine backends, not the "
                    "legacy centralized driver"
                )
            if self.failures is not None:
                raise ValueError(
                    "failure injection applies to round-engine backends; the "
                    "legacy centralized driver has no message layer to fail"
                )
            result = CentralizedClustering(
                instance.graph, params, seed=seed, fallback=self.fallback
            ).run(keep_loads=False)
        else:
            engine_options: dict[str, Any] = {}
            if self.block_size is not None:
                if self.backend in ("message-passing", "message", "per-node", "simulator"):
                    raise ValueError(
                        "block_size applies to the vectorized round engine; "
                        "the per-node simulator touches one row at a time anyway"
                    )
                if self.backend in ("parallel", "threaded", "jit"):
                    raise ValueError(
                        "block_size applies to the vectorized round engine; "
                        "the parallel engine picks its own blocking (full "
                        "CSR arrays in RAM, shard-aligned blocks on "
                        "memory-mapped storage)"
                    )
                engine_options["block_size"] = self.block_size
            if self.threads is not None:
                engine_options["threads"] = self.threads
            if self.failures is not None:
                engine_options["failures"] = self.failures
            result = DistributedClustering(
                instance.graph,
                params,
                seed=seed,
                fallback=self.fallback,
                backend=self.backend,
                **engine_options,
            ).run()
        record = clustering_report(result.partition, instance.partition)
        if self.structural:
            record.update(structural_report(instance.graph, result.partition))
        record.update(
            rounds=result.rounds,
            num_seeds=result.num_seeds,
            unlabelled=result.num_unlabelled,
            backend=self.backend,
        )
        if result.communication is not None:
            record.update(words=result.communication.total_words)
        if self.keep_labels:
            record[LABELS_KEY] = np.asarray(result.partition.labels)
        return record


@dataclass(frozen=True)
class _BaselineAdapter:
    """Picklable callable running a baseline clusterer and scoring it."""

    baseline: BaselineClusterer
    structural: bool = False
    keep_labels: bool = False

    def __call__(self, instance: ClusteredGraph, seed: int) -> dict[str, Any]:
        result = self.baseline.cluster(instance.graph, instance.partition.k, seed=seed)
        record = clustering_report(result.partition, instance.partition)
        if self.structural:
            record.update(structural_report(instance.graph, result.partition))
        record.update(rounds=result.rounds, words=result.words)
        if self.keep_labels:
            record[LABELS_KEY] = np.asarray(result.partition.labels)
        return record


def evaluate_load_balancing_clustering(
    *,
    round_constant: float | None = None,
    rounds: int | None = None,
    beta: float | None = None,
    fallback: str = "argmax",
    backend: str = "centralized",
    block_size: int | None = None,
    threads: int | None = None,
    failures: FailureModel | None = None,
    structural: bool = False,
    keep_labels: bool = False,
) -> AlgorithmCallable:
    """Adapter running the paper's algorithm and scoring it.

    ``backend`` selects the execution stack: ``"centralized"`` (default, the
    historical matrix driver with the legacy random stream), or any round
    engine registered with :mod:`repro.core.engines` — ``"vectorized"`` for
    the fast array backend, ``"message-passing"`` for the per-node
    simulator with exact communication accounting, ``"parallel"`` for the
    threaded-kernel backend (runs block-sliced with bit-identical results
    on memory-mapped instances; falls back to ``vectorized`` with a warning
    only when numba is missing).

    ``block_size`` forwards the vectorized engine's row-blocked adjacency
    gather (see :class:`~repro.core.engines.VectorizedEngine`): records are
    bit-identical with or without it, but memory-mapped instances keep an
    O(block) resident set.  Leave ``None`` to let the engine pick a block
    from the instance's storage backend (unblocked for in-RAM graphs).

    ``threads`` forwards the parallel engine's thread-count knob (a pure
    performance setting: its counter-based draws make records bit-identical
    at any thread count).  Combining it with a backend that has no thread
    knob is an error, not a silent no-op.

    ``failures`` injects a :class:`~repro.distsim.failures.FailureModel`
    (message drops, crashes, or a composite) into the selected round engine.
    Every registered backend accepts it — the engines draw drop/crash masks
    from dedicated counter streams, so for a given ``(seed, failures)`` pair
    the records agree across backends.  The legacy centralized driver has no
    message layer, so combining it with ``failures`` is an error.

    ``structural`` additionally scores the *label-free* cut quality of each
    trial's prediction — :func:`~repro.evaluation.metrics.structural_report`
    streamed over row blocks (works on memory-mapped instances too) — adding
    ``max_conductance`` and ``normalized_cut`` to the record.  Off by
    default: it costs one extra O(m) sweep per trial and existing pinned
    record layouts stay untouched.

    ``keep_labels`` attaches each trial's predicted label vector to the
    record under the reserved :data:`LABELS_KEY` column.  The service-layer
    workers use it to persist labels into mmap-shared label stores; they pop
    the key before records are archived, so pinned record layouts never see
    it.  Off by default: labels are O(n) per record.

    The returned callable is a picklable object, so it works under both the
    serial and the process executors of :func:`run_trials` (the bundled
    failure models are plain dataclasses over ndarrays, hence picklable).
    """
    return _LoadBalancingAdapter(
        round_constant=round_constant,
        rounds=rounds,
        beta=beta,
        fallback=fallback,
        backend=backend,
        block_size=block_size,
        threads=threads,
        failures=failures,
        structural=structural,
        keep_labels=keep_labels,
    )


def evaluate_distributed_clustering(
    *, backend: str = "vectorized", **kwargs: Any
) -> AlgorithmCallable:
    """Adapter running the distributed driver on a chosen round-engine backend.

    Identical to :func:`evaluate_load_balancing_clustering` (all of whose
    keyword options pass through) except that the default backend is the
    vectorized round engine rather than the legacy centralised driver.
    """
    return evaluate_load_balancing_clustering(backend=backend, **kwargs)


def evaluate_baseline(
    baseline: BaselineClusterer, *, structural: bool = False, keep_labels: bool = False
) -> AlgorithmCallable:
    """Adapter running a baseline clusterer and scoring it (picklable).

    ``structural`` adds the label-free ``max_conductance``/``normalized_cut``
    columns and ``keep_labels`` the reserved :data:`LABELS_KEY` label vector,
    exactly as in :func:`evaluate_load_balancing_clustering`.
    """
    return _BaselineAdapter(baseline, structural=structural, keep_labels=keep_labels)
