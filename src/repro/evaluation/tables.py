"""Plain-text result tables for benchmarks and EXPERIMENTS.md.

The benchmark harness prints its findings as aligned text / Markdown tables
so that the rows reported in EXPERIMENTS.md can be regenerated verbatim by
re-running the corresponding bench target.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_markdown_table", "records_to_rows"]


def _format_value(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def records_to_rows(
    records: Iterable[dict[str, Any]], columns: Sequence[str]
) -> list[list[Any]]:
    """Project a list of record dictionaries onto the requested columns."""
    rows = []
    for record in records:
        rows.append([record.get(col, "") for col in columns])
    return rows


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_format: str = ".4g",
    title: str | None = None,
) -> str:
    """Fixed-width aligned table (for terminal output)."""
    str_rows = [[_format_value(v, float_format) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_format: str = ".4g",
) -> str:
    """GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_format_value(v, float_format) for v in row] for row in rows]
    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
