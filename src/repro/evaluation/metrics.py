"""Clustering quality metrics.

The primary metric of the reproduction is the misclassification count of
Theorem 1.1 (implemented in :mod:`repro.graphs.partition`); the standard
external metrics below (adjusted Rand index, normalised mutual information,
purity) are reported alongside it in the benchmark tables so results can be
compared with the community-detection literature.  All are implemented from
first principles on top of the contingency table.
"""

from __future__ import annotations

import numpy as np

from ..graphs.conductance import partition_cut_metrics
from ..graphs.graph import Graph
from ..graphs.partition import (
    Partition,
    confusion_matrix,
    misclassification_rate,
    misclassified_nodes,
)

__all__ = [
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "clustering_report",
    "structural_report",
    "misclassification_rate",
    "misclassified_nodes",
]


def _comb2(x: np.ndarray | float) -> np.ndarray | float:
    """Number of unordered pairs ``x choose 2`` (element-wise)."""
    return x * (x - 1.0) / 2.0


def adjusted_rand_index(predicted: Partition, truth: Partition) -> float:
    """Adjusted Rand index in ``[-1, 1]`` (1 = perfect agreement, 0 ≈ random)."""
    contingency = confusion_matrix(predicted, truth).astype(np.float64)
    n = predicted.n
    sum_cells = float(_comb2(contingency).sum())
    sum_rows = float(_comb2(contingency.sum(axis=1)).sum())
    sum_cols = float(_comb2(contingency.sum(axis=0)).sum())
    total_pairs = float(_comb2(float(n)))
    expected = sum_rows * sum_cols / total_pairs if total_pairs > 0 else 0.0
    max_index = 0.5 * (sum_rows + sum_cols)
    denominator = max_index - expected
    if abs(denominator) < 1e-15:
        return 1.0 if abs(sum_cells - expected) < 1e-15 else 0.0
    return (sum_cells - expected) / denominator


def normalized_mutual_information(predicted: Partition, truth: Partition) -> float:
    """NMI with arithmetic-mean normalisation, in ``[0, 1]``."""
    contingency = confusion_matrix(predicted, truth).astype(np.float64)
    n = float(predicted.n)
    joint = contingency / n
    p_pred = joint.sum(axis=1)
    p_true = joint.sum(axis=0)
    nz = joint > 0
    mutual = float(
        np.sum(joint[nz] * np.log(joint[nz] / (np.outer(p_pred, p_true)[nz])))
    )
    h_pred = float(-np.sum(p_pred[p_pred > 0] * np.log(p_pred[p_pred > 0])))
    h_true = float(-np.sum(p_true[p_true > 0] * np.log(p_true[p_true > 0])))
    if h_pred == 0.0 and h_true == 0.0:
        return 1.0
    denom = 0.5 * (h_pred + h_true)
    if denom == 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual / denom))


def purity(predicted: Partition, truth: Partition) -> float:
    """Fraction of nodes in the majority true class of their predicted cluster."""
    contingency = confusion_matrix(predicted, truth)
    return float(contingency.max(axis=1).sum() / predicted.n)


def clustering_report(predicted: Partition, truth: Partition) -> dict[str, float]:
    """All metrics in one dictionary (used by the experiment runner)."""
    return {
        "misclassified": float(misclassified_nodes(predicted, truth)),
        "error": misclassification_rate(predicted, truth),
        "ari": adjusted_rand_index(predicted, truth),
        "nmi": normalized_mutual_information(predicted, truth),
        "purity": purity(predicted, truth),
        "clusters_found": float(predicted.k),
    }


def structural_report(
    graph: Graph, predicted: Partition, *, block_size: int | None = None
) -> dict[str, float]:
    """Label-free cut quality of a predicted partition, streamed over blocks.

    Unlike :func:`clustering_report` (which compares against planted ground
    truth) these metrics need only the graph and the prediction, so they are
    the quantities reported for real-world instances too.  One
    :func:`~repro.graphs.conductance.partition_cut_metrics` sweep — O(m + k)
    on any storage backend, never materialising the edge array — yields all
    per-cluster cuts and volumes; the report keeps the paper's summary
    statistics: the worst (maximum) cluster conductance, i.e. the k-way
    expansion the algorithm optimises, and the normalised cut (sum of
    conductances).
    """
    metrics = partition_cut_metrics(graph, predicted, block_size=block_size)
    phis = metrics.conductances
    ncut = 0.0
    for phi in phis:
        # Sequential accumulation, bit-parity with conductance.normalized_cut.
        ncut += float(phi)
    return {
        "max_conductance": float(phis.max()) if phis.size else 0.0,
        "normalized_cut": ncut,
    }
