"""Evaluation framework: metrics, experiment runner and result tables."""

from .metrics import (
    adjusted_rand_index,
    clustering_report,
    misclassification_rate,
    misclassified_nodes,
    normalized_mutual_information,
    purity,
    structural_report,
)
from .runner import (
    ExperimentResult,
    ProcessExecutor,
    SerialExecutor,
    TrialExecutor,
    TrialRecord,
    aggregate_records,
    evaluate_baseline,
    evaluate_distributed_clustering,
    evaluate_load_balancing_clustering,
    run_trials,
    sweep,
    trial_seed,
)
from .tables import format_markdown_table, format_table, records_to_rows

__all__ = [
    "adjusted_rand_index",
    "clustering_report",
    "misclassification_rate",
    "misclassified_nodes",
    "normalized_mutual_information",
    "purity",
    "structural_report",
    "ExperimentResult",
    "ProcessExecutor",
    "SerialExecutor",
    "TrialExecutor",
    "TrialRecord",
    "aggregate_records",
    "evaluate_baseline",
    "evaluate_distributed_clustering",
    "evaluate_load_balancing_clustering",
    "run_trials",
    "sweep",
    "trial_seed",
    "format_markdown_table",
    "format_table",
    "records_to_rows",
]
