"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import cycle_of_cliques, read_partition, write_edge_list, write_partition


@pytest.fixture()
def instance_files(tmp_path):
    instance = cycle_of_cliques(3, 12, seed=0)
    graph_path = tmp_path / "graph.edges"
    truth_path = tmp_path / "truth.txt"
    write_edge_list(instance.graph, graph_path)
    write_partition(instance.partition, truth_path)
    return instance, graph_path, truth_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "sbm", "--out", "x.edges"])
        assert args.family == "sbm"
        assert args.n == 200


class TestGenerate:
    @pytest.mark.parametrize("family", ["sbm", "cliques", "expanders", "lfr"])
    def test_generate_families(self, tmp_path, family, capsys):
        out = tmp_path / "g.edges"
        labels = tmp_path / "labels.txt"
        argv = [
            "generate",
            family,
            "--n",
            "120",
            "--k",
            "3",
            "--cluster-size",
            "15",
            "--degree",
            "8",
            "--seed",
            "1",
            "--out",
            str(out),
            "--labels-out",
            str(labels),
        ]
        assert main(argv) == 0
        assert out.exists() and labels.exists()
        assert "wrote" in capsys.readouterr().out


class TestAnalyse:
    def test_analyse_with_labels(self, instance_files, capsys):
        _, graph_path, truth_path = instance_files
        assert main(["analyse", str(graph_path), "--labels", str(truth_path)]) == 0
        out = capsys.readouterr().out
        assert "Upsilon" in out
        assert "round count" in out

    def test_analyse_with_k_only(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["analyse", str(graph_path), "--k", "3"]) == 0
        assert "round count" in capsys.readouterr().out

    def test_analyse_graph_only(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["analyse", str(graph_path)]) == 0
        assert "connected" in capsys.readouterr().out

    @pytest.fixture()
    def sharded_entry(self, tmp_path):
        from repro.graphs import cached_instance, instance_shard_dir

        params = dict(k=3, clique_size=12)
        cached_instance(
            "cycle_of_cliques", seed=0, cache_dir=tmp_path, mmap=True, **params
        )
        return instance_shard_dir(tmp_path, "cycle_of_cliques", params, 0)

    @pytest.mark.parametrize("mmap", [True, False])
    def test_analyse_sharded_entry(self, sharded_entry, mmap, capsys):
        argv = ["analyse", str(sharded_entry)] + (["--mmap"] if mmap else [])
        assert main(argv) == 0
        out = capsys.readouterr().out
        # The entry's labels.npy supplies the ground truth automatically.
        assert "ground truth from cache entry" in out
        assert "Upsilon" in out
        assert ("[mmap]" in out) == mmap

    def test_analyse_mmap_requires_entry_directory(self, instance_files):
        _, graph_path, _ = instance_files
        with pytest.raises(SystemExit, match="sharded cache-entry"):
            main(["analyse", str(graph_path), "--mmap"])

    def test_analyse_rejects_non_entry_directory(self, tmp_path):
        # A directory without a manifest is a clear error, not an
        # IsADirectoryError traceback from the edge-list reader.
        with pytest.raises(SystemExit, match="not a sharded cache entry"):
            main(["analyse", str(tmp_path)])


class TestCluster:
    def test_centralized_engine_scores_against_truth(self, instance_files, tmp_path, capsys):
        instance, graph_path, truth_path = instance_files
        out = tmp_path / "labels.txt"
        code = main(
            [
                "cluster",
                str(graph_path),
                "--k",
                "3",
                "--seed",
                "1",
                "--out",
                str(out),
                "--truth",
                str(truth_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "misclassification" in printed
        labels = read_partition(out)
        assert labels.n == instance.graph.n

    def test_distributed_engine_reports_communication(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        code = main(
            ["cluster", str(graph_path), "--k", "3", "--engine", "distributed", "--seed", "2",
             "--rounds", "30"]
        )
        assert code == 0
        assert "communication" in capsys.readouterr().out

    def test_adaptive_engine(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["cluster", str(graph_path), "--engine", "adaptive", "--beta", "0.3",
                     "--seed", "3"]) == 0
        assert "clustered" in capsys.readouterr().out

    def test_missing_k_is_an_error(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["cluster", str(graph_path)]) == 2
        assert "required" in capsys.readouterr().err

    def test_adaptive_missing_beta_and_k_is_an_error(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["cluster", str(graph_path), "--engine", "adaptive"]) == 2
        assert "beta" in capsys.readouterr().err

    def test_backend_without_distributed_engine_is_an_error(self, instance_files, capsys):
        # Silently ignoring --backend would mean the user measured a
        # different engine than the one named on the command line.
        _, graph_path, _ = instance_files
        code = main(
            ["cluster", str(graph_path), "--k", "3", "--backend", "vectorized"]
        )
        assert code == 2
        assert "--engine distributed" in capsys.readouterr().err

    def test_threads_without_parallel_backend_is_an_error(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        code = main(
            ["cluster", str(graph_path), "--k", "3", "--engine", "distributed",
             "--backend", "vectorized", "--threads", "2"]
        )
        assert code == 2
        assert "--backend parallel" in capsys.readouterr().err

    def test_parallel_backend_runs(self, instance_files, capsys):
        # Without numba the factory falls back to the vectorized backend
        # with a warning; either way the command succeeds.
        _, graph_path, _ = instance_files
        code = main(
            ["cluster", str(graph_path), "--k", "3", "--engine", "distributed",
             "--backend", "parallel", "--threads", "2", "--seed", "2",
             "--rounds", "20"]
        )
        assert code == 0
        assert "clustered" in capsys.readouterr().out


class TestSweep:
    def test_serial_sweep_prints_table(self, capsys):
        code = main(
            ["sweep", "cliques", "--sizes", "10", "--k", "3", "--trials", "1",
             "--algorithms", "ours", "--backend", "centralized", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm" in out and "error" in out

    def test_cached_parallel_sweep_writes_json(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        json_path = tmp_path / "records.json"
        argv = [
            "sweep", "cliques", "--sizes", "10", "12", "--k", "3", "--trials", "2",
            "--workers", "2", "--cache-dir", str(cache_dir), "--json", str(json_path),
            "--algorithms", "ours", "--backend", "centralized", "--seed", "0",
        ]
        assert main(argv) == 0
        assert len(list(cache_dir.glob("*.npz"))) == 2
        records = json.loads(json_path.read_text())
        assert len(records) == 2 * 2  # sizes x trials
        assert {r["config"]["size"] for r in records} == {10, 12}

        # Re-running against the warm cache and serially must reproduce the
        # exact same records (cache + parallelism are pure performance knobs).
        capsys.readouterr()
        json2 = tmp_path / "records2.json"
        argv2 = [a if a != str(json_path) else str(json2) for a in argv]
        argv2[argv2.index("--workers") + 1] = "1"
        assert main(argv2) == 0
        assert json.loads(json2.read_text()) == records

    def test_sbm_family(self, capsys):
        assert main(
            ["sweep", "sbm", "--sizes", "60", "--k", "2", "--p-in", "0.4",
             "--p-out", "0.02", "--trials", "1", "--algorithms", "spectral"]
        ) == 0
        assert "spectral" in capsys.readouterr().out

    def test_failure_sweep_runs_on_round_engine_backend(self, capsys):
        code = main(
            ["sweep", "cliques", "--sizes", "10", "--k", "3", "--trials", "1",
             "--algorithms", "ours", "--backend", "vectorized", "--seed", "0",
             "--drop-prob", "0.05", "--crash-prob", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ours" in out and "error" in out

    def test_failure_flags_rejected_on_centralized_backend(self, capsys):
        code = main(
            ["sweep", "cliques", "--sizes", "10", "--k", "3", "--trials", "1",
             "--algorithms", "ours", "--backend", "centralized",
             "--drop-prob", "0.05"]
        )
        assert code == 2
        assert "round-engine backend" in capsys.readouterr().err

    def test_threads_without_parallel_backend_is_an_error(self, capsys):
        code = main(
            ["sweep", "cliques", "--sizes", "10", "--k", "3", "--trials", "1",
             "--algorithms", "ours", "--backend", "vectorized", "--threads", "2"]
        )
        assert code == 2
        assert "--backend parallel" in capsys.readouterr().err

    def test_parallel_backend_sweep(self, capsys):
        code = main(
            ["sweep", "cliques", "--sizes", "10", "--k", "3", "--trials", "1",
             "--algorithms", "ours", "--backend", "parallel", "--threads", "1",
             "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm" in out and "error" in out


class TestGenerateSharded:
    def test_shard_size_requires_cache_dir(self, capsys):
        assert main(["generate", "sbm", "--n", "60", "--shard-size", "100"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_needs_out_or_cache_dir(self, capsys):
        assert main(["generate", "sbm", "--n", "60"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_writes_sharded_cache_entry(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "generate", "sbm", "--n", "120", "--k", "3", "--seed", "4",
            "--cache-dir", str(cache_dir), "--shard-size", "500",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cached" in out and "shard(s)" in out
        entries = list(cache_dir.glob("*.csr"))
        assert len(entries) == 1
        assert (entries[0] / "manifest.json").is_file()
        assert len(list(entries[0].glob("indices-*.npy"))) > 1

    def test_cache_dir_combines_with_out(self, tmp_path):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "g.edges"
        argv = [
            "generate", "cliques", "--k", "3", "--cluster-size", "8", "--seed", "1",
            "--cache-dir", str(cache_dir), "--out", str(out),
        ]
        assert main(argv) == 0
        assert out.exists()
        assert list(cache_dir.glob("*.csr"))


class TestSweepMmap:
    def test_mmap_requires_cache_dir(self, capsys):
        assert main(["sweep", "cliques", "--sizes", "10", "--mmap"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_mmap_sweep_matches_dense_records(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        dense_json = tmp_path / "dense.json"
        argv = [
            "sweep", "sbm", "--sizes", "120", "--k", "3", "--trials", "2",
            "--cache-dir", str(cache_dir), "--seed", "0", "--backend", "vectorized",
            "--json", str(dense_json),
        ]
        assert main(argv) == 0
        capsys.readouterr()

        mmap_json = tmp_path / "mmap.json"
        argv_mmap = [a if a != str(dense_json) else str(mmap_json) for a in argv]
        argv_mmap += ["--mmap", "--workers", "2", "--block-size", "50"]
        assert main(argv_mmap) == 0
        assert list(cache_dir.glob("*.csr")), "mmap sweep should write sharded entries"
        assert json.loads(mmap_json.read_text()) == json.loads(dense_json.read_text())


class TestCacheCommand:
    def _populate(self, cache_dir):
        assert main([
            "generate", "cliques", "--k", "3", "--cluster-size", "10", "--seed", "2",
            "--cache-dir", str(cache_dir),
        ]) == 0

    def test_list_empty(self, tmp_path, capsys):
        assert main(["cache", "list", str(tmp_path)]) == 0
        assert "no cache entries" in capsys.readouterr().out

    def test_list_entries(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cycle_of_cliques" in out and "sharded" in out

    def test_prune_dry_run_then_real(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", str(tmp_path), "--max-bytes", "0", "--dry-run"]) == 0
        assert "would evict 1" in capsys.readouterr().out
        assert list(tmp_path.glob("*.csr"))
        assert main(["cache", "prune", str(tmp_path), "--max-bytes", "0"]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.csr"))

    def test_size_suffix_parsing(self):
        from repro.cli import parse_size

        assert parse_size("1024") == 1024
        assert parse_size("1K") == 1024
        assert parse_size("1.5M") == int(1.5 * 1024**2)
        assert parse_size("2GB") == 2 * 1024**3
        with pytest.raises(Exception):
            parse_size("banana")

    def test_list_shows_label_store_column(self, tmp_path, capsys):
        from repro.graphs import instance_digest
        from repro.service.labels import write_labels

        self._populate(tmp_path)
        params = dict(k=3, clique_size=10)
        digest = instance_digest("cycle_of_cliques", params, 2)
        write_labels(
            tmp_path, "cycle_of_cliques", digest, "ours", 873,
            np.zeros(30, dtype=np.int64),
        )
        capsys.readouterr()
        assert main(["cache", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "labels" in out and "total" in out
        # The entry's labels cell is a real size, not the "-" placeholder.
        (row,) = [l for l in out.splitlines() if "sharded" in l]
        assert " - " not in row


class TestServiceCommands:
    SUBMIT = [
        "submit", "cliques", "--sizes", "8", "--k", "2",
        "--trials", "1", "--seed", "0", "--keep-labels",
    ]

    def _digest(self):
        from repro.service import sweep_tasks

        spec = {
            "family": "cliques", "sizes": [8], "k": 2,
            "trials": 1, "seed": 0, "keep_labels": True,
        }
        task = sweep_tasks(spec)[0]
        return task.instance["digest"], task.seed

    def _submitted(self, tmp_path):
        db = tmp_path / "jobs.sqlite"
        cache = tmp_path / "cache"
        argv = self.SUBMIT + [
            "--db", str(db), "--run", "--cache-dir", str(cache),
        ]
        assert main(argv) == 0
        return db, cache

    def test_submit_db_run_executes_inline(self, tmp_path, capsys):
        self._submitted(tmp_path)
        out = capsys.readouterr().out
        assert "job 1: done (1/1 done, 0 failed)" in out

    def test_jobs_table(self, tmp_path, capsys):
        db, _ = self._submitted(tmp_path)
        capsys.readouterr()
        assert main(["jobs", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "cliques" in out and "done" in out

    def test_jobs_empty_store(self, tmp_path, capsys):
        db = tmp_path / "jobs.sqlite"
        from repro.service import JobStore

        JobStore(db)
        assert main(["jobs", "--db", str(db)]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_query_prints_node_label_lines(self, tmp_path, capsys):
        _, cache = self._submitted(tmp_path)
        digest, seed = self._digest()
        capsys.readouterr()
        argv = [
            "query", digest, "0", "15", "--cache-dir", str(cache),
            "--seed", str(seed),
        ]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        node, label = lines[0].split("\t")
        assert node == "0" and label.lstrip("-").isdigit()

    def test_query_unknown_digest_fails_cleanly(self, tmp_path, capsys):
        _, cache = self._submitted(tmp_path)
        capsys.readouterr()
        assert main(["query", "feedbeef", "0", "--cache-dir", str(cache)]) == 1
        assert "no label store" in capsys.readouterr().err

    def test_submit_requires_exactly_one_target(self, tmp_path, capsys):
        assert main(self.SUBMIT) == 2
        argv = self.SUBMIT + [
            "--db", str(tmp_path / "db"), "--url", "http://127.0.0.1:1",
        ]
        assert main(argv) == 2
        assert "exactly one of --url or --db" in capsys.readouterr().err

    def test_query_requires_exactly_one_source(self, capsys):
        assert main(["query", "feedbeef", "0"]) == 2
        assert "exactly one of --url or --cache-dir" in capsys.readouterr().err

    def test_submit_url_against_dead_server_fails_cleanly(self, capsys):
        argv = self.SUBMIT + ["--url", "http://127.0.0.1:1"]
        assert main(argv) == 1
        assert "unreachable" in capsys.readouterr().err

    def test_serve_parser_defaults(self, tmp_path):
        args = build_parser().parse_args(["serve", "--db", str(tmp_path / "db")])
        assert args.port == 0 and args.workers == 1 and args.cache_dir is None
