"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import cycle_of_cliques, read_partition, write_edge_list, write_partition


@pytest.fixture()
def instance_files(tmp_path):
    instance = cycle_of_cliques(3, 12, seed=0)
    graph_path = tmp_path / "graph.edges"
    truth_path = tmp_path / "truth.txt"
    write_edge_list(instance.graph, graph_path)
    write_partition(instance.partition, truth_path)
    return instance, graph_path, truth_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "sbm", "--out", "x.edges"])
        assert args.family == "sbm"
        assert args.n == 200


class TestGenerate:
    @pytest.mark.parametrize("family", ["sbm", "cliques", "expanders", "lfr"])
    def test_generate_families(self, tmp_path, family, capsys):
        out = tmp_path / "g.edges"
        labels = tmp_path / "labels.txt"
        argv = [
            "generate",
            family,
            "--n",
            "120",
            "--k",
            "3",
            "--cluster-size",
            "15",
            "--degree",
            "8",
            "--seed",
            "1",
            "--out",
            str(out),
            "--labels-out",
            str(labels),
        ]
        assert main(argv) == 0
        assert out.exists() and labels.exists()
        assert "wrote" in capsys.readouterr().out


class TestAnalyse:
    def test_analyse_with_labels(self, instance_files, capsys):
        _, graph_path, truth_path = instance_files
        assert main(["analyse", str(graph_path), "--labels", str(truth_path)]) == 0
        out = capsys.readouterr().out
        assert "Upsilon" in out
        assert "round count" in out

    def test_analyse_with_k_only(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["analyse", str(graph_path), "--k", "3"]) == 0
        assert "round count" in capsys.readouterr().out

    def test_analyse_graph_only(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["analyse", str(graph_path)]) == 0
        assert "connected" in capsys.readouterr().out


class TestCluster:
    def test_centralized_engine_scores_against_truth(self, instance_files, tmp_path, capsys):
        instance, graph_path, truth_path = instance_files
        out = tmp_path / "labels.txt"
        code = main(
            [
                "cluster",
                str(graph_path),
                "--k",
                "3",
                "--seed",
                "1",
                "--out",
                str(out),
                "--truth",
                str(truth_path),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "misclassification" in printed
        labels = read_partition(out)
        assert labels.n == instance.graph.n

    def test_distributed_engine_reports_communication(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        code = main(
            ["cluster", str(graph_path), "--k", "3", "--engine", "distributed", "--seed", "2",
             "--rounds", "30"]
        )
        assert code == 0
        assert "communication" in capsys.readouterr().out

    def test_adaptive_engine(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["cluster", str(graph_path), "--engine", "adaptive", "--beta", "0.3",
                     "--seed", "3"]) == 0
        assert "clustered" in capsys.readouterr().out

    def test_missing_k_is_an_error(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["cluster", str(graph_path)]) == 2
        assert "required" in capsys.readouterr().err

    def test_adaptive_missing_beta_and_k_is_an_error(self, instance_files, capsys):
        _, graph_path, _ = instance_files
        assert main(["cluster", str(graph_path), "--engine", "adaptive"]) == 2
        assert "beta" in capsys.readouterr().err


class TestSweep:
    def test_serial_sweep_prints_table(self, capsys):
        code = main(
            ["sweep", "cliques", "--sizes", "10", "--k", "3", "--trials", "1",
             "--algorithms", "ours", "--backend", "centralized", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm" in out and "error" in out

    def test_cached_parallel_sweep_writes_json(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        json_path = tmp_path / "records.json"
        argv = [
            "sweep", "cliques", "--sizes", "10", "12", "--k", "3", "--trials", "2",
            "--workers", "2", "--cache-dir", str(cache_dir), "--json", str(json_path),
            "--algorithms", "ours", "--backend", "centralized", "--seed", "0",
        ]
        assert main(argv) == 0
        assert len(list(cache_dir.glob("*.npz"))) == 2
        records = json.loads(json_path.read_text())
        assert len(records) == 2 * 2  # sizes x trials
        assert {r["config"]["size"] for r in records} == {10, 12}

        # Re-running against the warm cache and serially must reproduce the
        # exact same records (cache + parallelism are pure performance knobs).
        capsys.readouterr()
        json2 = tmp_path / "records2.json"
        argv2 = [a if a != str(json_path) else str(json2) for a in argv]
        argv2[argv2.index("--workers") + 1] = "1"
        assert main(argv2) == 0
        assert json.loads(json2.read_text()) == records

    def test_sbm_family(self, capsys):
        assert main(
            ["sweep", "sbm", "--sizes", "60", "--k", "2", "--p-in", "0.4",
             "--p-out", "0.02", "--trials", "1", "--algorithms", "spectral"]
        ) == 0
        assert "spectral" in capsys.readouterr().out
