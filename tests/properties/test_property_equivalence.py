"""Property-based equivalence between the two state representations.

The distributed implementation stores a node's load as a sparse
``NodeState`` (prefix → value); the centralised implementation stores the
same information as one row of the dense ``(n, s)`` load matrix.  These tests
verify that the two averaging rules — `NodeState.averaged_with` (the paper's
three-case rule) and the matrix update ``X ← M(t) X`` restricted to a matched
pair — are the *same function*, and that the two query implementations agree,
for arbitrary states.  This is the invariant that makes the cross-validation
of the two implementations meaningful.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeState, assign_labels_from_loads

seed_universe = st.lists(
    st.integers(min_value=1, max_value=50), min_size=1, max_size=6, unique=True
)


@st.composite
def pair_of_states(draw):
    """Two node states over a common universe of seed identifiers."""
    ids = draw(seed_universe)
    values_u = [draw(st.floats(0.0, 1.0, allow_nan=False)) for _ in ids]
    values_v = [draw(st.floats(0.0, 1.0, allow_nan=False)) for _ in ids]
    mask_u = [draw(st.booleans()) for _ in ids]
    mask_v = [draw(st.booleans()) for _ in ids]
    state_u = {i: x for i, x, keep in zip(ids, values_u, mask_u) if keep}
    state_v = {i: x for i, x, keep in zip(ids, values_v, mask_v) if keep}
    return ids, state_u, state_v


class TestAveragingRuleEquivalence:
    @given(data=pair_of_states())
    @settings(max_examples=120, deadline=None)
    def test_node_state_rule_equals_vector_average(self, data):
        ids, raw_u, raw_v = data
        state_u, state_v = NodeState(dict(raw_u)), NodeState(dict(raw_v))
        merged = state_u.averaged_with(state_v)

        # The same pair of nodes in the dense representation: two rows of the
        # load matrix, columns indexed by the seed identifiers.
        row_u = np.array([raw_u.get(i, 0.0) for i in ids])
        row_v = np.array([raw_v.get(i, 0.0) for i in ids])
        averaged_row = 0.5 * (row_u + row_v)

        for column, identifier in enumerate(ids):
            assert abs(merged.value(identifier) - averaged_row[column]) < 1e-12

    @given(data=pair_of_states(), threshold=st.floats(0.001, 1.0))
    @settings(max_examples=120, deadline=None)
    def test_query_rule_equivalence(self, data, threshold):
        ids, raw_u, _ = data
        state = NodeState(dict(raw_u))

        loads = np.array([[raw_u.get(i, 0.0) for i in ids]])
        labels, unlabelled = assign_labels_from_loads(
            loads, np.asarray(ids, dtype=np.int64), threshold, fallback="none"
        )
        sparse_label = state.label(threshold)

        if sparse_label is None:
            assert unlabelled[0]
            assert labels[0] == -1
        else:
            assert not unlabelled[0]
            assert labels[0] == sparse_label
