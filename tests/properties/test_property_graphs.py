"""Property-based tests for the graph substrate (CSR structure, cuts, spectra)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, conductance, cut_size, random_walk_eigenvalues, volume


@st.composite
def edge_sets(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    edges = [e for e, keep in zip(possible, mask) if keep]
    return n, edges


class TestGraphStructureProperties:
    @given(data=edge_sets())
    @settings(max_examples=80, deadline=None)
    def test_degree_sum_equals_twice_edges(self, data):
        n, edges = data
        g = Graph(n, edges)
        assert int(g.degrees.sum()) == 2 * g.num_edges
        assert g.volume == int(g.degrees.sum())

    @given(data=edge_sets())
    @settings(max_examples=80, deadline=None)
    def test_neighbourhoods_symmetric(self, data):
        n, edges = data
        g = Graph(n, edges)
        for u in range(n):
            for v in g.neighbours(u):
                assert u in g.neighbours(int(v))

    @given(data=edge_sets())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_matrix_consistent_with_edge_list(self, data):
        n, edges = data
        g = Graph(n, edges)
        a = g.adjacency_matrix(sparse=False)
        assert a.sum() == 2 * g.num_edges
        for u, v in edges:
            assert a[u, v] == 1 and a[v, u] == 1

    @given(data=edge_sets())
    @settings(max_examples=50, deadline=None)
    def test_components_partition_the_nodes(self, data):
        n, edges = data
        g = Graph(n, edges)
        components = g.connected_components()
        all_nodes = np.concatenate(components)
        assert sorted(all_nodes.tolist()) == list(range(n))


class TestCutProperties:
    @given(data=edge_sets(), subset_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_cut_volume_relations(self, data, subset_seed):
        n, edges = data
        g = Graph(n, edges)
        rng = np.random.default_rng(subset_seed)
        size = int(rng.integers(1, n))
        subset = rng.choice(n, size=size, replace=False)
        cut = cut_size(g, subset)
        vol = volume(g, subset)
        complement = np.setdiff1d(np.arange(n), subset)
        # the cut is symmetric
        assert cut == cut_size(g, complement)
        # volume bounds
        assert cut <= vol <= g.num_edges
        if vol > 0:
            phi = conductance(g, subset)
            assert 0.0 <= phi <= 1.0
            assert phi == cut / vol

    @given(data=edge_sets())
    @settings(max_examples=50, deadline=None)
    def test_spectrum_in_range_and_stochastic_eigenvalue(self, data):
        n, edges = data
        g = Graph(n, edges)
        if g.min_degree == 0:
            return  # random-walk matrix not defined on isolated nodes
        vals = random_walk_eigenvalues(g)
        assert vals.max() <= 1.0 + 1e-8
        assert vals.min() >= -1.0 - 1e-8
        assert vals[0] == np.max(vals)
