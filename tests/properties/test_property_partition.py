"""Property-based tests for partitions and the misclassification metric."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import adjusted_rand_index, normalized_mutual_information, purity
from repro.graphs import Partition, misclassification_rate, misclassified_nodes

label_vectors = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60)


@st.composite
def two_label_vectors(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    a = draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(0, 5), min_size=n, max_size=n))
    return a, b


class TestPartitionProperties:
    @given(labels=label_vectors)
    @settings(max_examples=60, deadline=None)
    def test_normalisation_invariants(self, labels):
        p = Partition.from_labels(labels)
        assert p.n == len(labels)
        assert p.k == len(set(labels))
        assert int(p.sizes.sum()) == p.n
        # clusters form a disjoint cover
        all_members = np.concatenate(p.clusters())
        assert sorted(all_members.tolist()) == list(range(p.n))

    @given(labels=label_vectors, shift=st.integers(min_value=1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_equality_invariant_under_label_shifts(self, labels, shift):
        assert Partition.from_labels(labels) == Partition.from_labels([l + shift for l in labels])

    @given(labels=label_vectors)
    @settings(max_examples=40, deadline=None)
    def test_indicator_matrix_columns_sum_to_one(self, labels):
        p = Partition.from_labels(labels)
        m = p.indicator_matrix()
        assert np.allclose(m.sum(axis=0), 1.0)


class TestMisclassificationProperties:
    @given(pair=two_label_vectors())
    @settings(max_examples=60, deadline=None)
    def test_misclassification_bounds_and_identity(self, pair):
        a, b = pair
        pa, pb = Partition.from_labels(a), Partition.from_labels(b)
        m = misclassified_nodes(pa, pb)
        assert 0 <= m <= pa.n
        assert misclassified_nodes(pa, pa) == 0
        rate = misclassification_rate(pa, pb)
        assert 0.0 <= rate <= 1.0

    @given(pair=two_label_vectors())
    @settings(max_examples=60, deadline=None)
    def test_misclassification_at_most_n_minus_largest_overlap(self, pair):
        a, b = pair
        pa, pb = Partition.from_labels(a), Partition.from_labels(b)
        # the best permutation matches at least the single largest overlap cell
        from repro.graphs import confusion_matrix

        largest = confusion_matrix(pa, pb).max()
        assert misclassified_nodes(pa, pb) <= pa.n - largest


class TestMetricProperties:
    @given(labels=label_vectors)
    @settings(max_examples=40, deadline=None)
    def test_self_agreement_is_perfect(self, labels):
        p = Partition.from_labels(labels)
        assert adjusted_rand_index(p, p) == pytest.approx(1.0)
        assert normalized_mutual_information(p, p) == pytest.approx(1.0)
        assert purity(p, p) == pytest.approx(1.0)

    @given(pair=two_label_vectors())
    @settings(max_examples=60, deadline=None)
    def test_metric_ranges(self, pair):
        a, b = pair
        pa, pb = Partition.from_labels(a), Partition.from_labels(b)
        assert -1.0 - 1e-9 <= adjusted_rand_index(pa, pb) <= 1.0 + 1e-9
        assert 0.0 <= normalized_mutual_information(pa, pb) <= 1.0
        assert 0.0 < purity(pa, pb) <= 1.0

    @given(pair=two_label_vectors())
    @settings(max_examples=40, deadline=None)
    def test_ari_symmetry(self, pair):
        a, b = pair
        pa, pb = Partition.from_labels(a), Partition.from_labels(b)
        assert adjusted_rand_index(pa, pb) == adjusted_rand_index(pb, pa)
