"""Property-based tests for the load-balancing substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.loadbalancing import (
    apply_matching,
    matching_matrix,
    matching_to_edge_list,
    sample_random_matching,
)


@st.composite
def random_graphs(draw):
    """Small connected-ish random graphs via a random spanning tree plus extras."""
    n = draw(st.integers(min_value=2, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = set()
    # random spanning tree to avoid isolated nodes dominating
    order = rng.permutation(n)
    for i in range(1, n):
        u = int(order[i])
        v = int(order[rng.integers(i)])
        edges.add((min(u, v), max(u, v)))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u, v = rng.integers(n, size=2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return Graph(n, sorted(edges)), seed


class TestMatchingProperties:
    @given(data=random_graphs(), matching_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_sampled_matching_is_valid(self, data, matching_seed):
        graph, _ = data
        rng = np.random.default_rng(matching_seed)
        partner = sample_random_matching(graph, rng)
        matched = np.flatnonzero(partner >= 0)
        # involution without fixed points, pairs are edges, at most n/2 pairs
        assert all(partner[partner[v]] == v for v in matched)
        assert all(partner[v] != v for v in matched)
        pairs = matching_to_edge_list(partner)
        assert pairs.shape[0] <= graph.n // 2
        for u, v in pairs:
            assert graph.has_edge(int(u), int(v))

    @given(data=random_graphs(), matching_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matching_matrix_is_projection_and_stochastic(self, data, matching_seed):
        graph, _ = data
        rng = np.random.default_rng(matching_seed)
        partner = sample_random_matching(graph, rng)
        m = matching_matrix(graph.n, partner, sparse=False)
        assert np.allclose(m, m.T)
        assert np.allclose(m @ m, m, atol=1e-12)
        assert np.allclose(m.sum(axis=0), 1.0)
        assert np.allclose(m.sum(axis=1), 1.0)
        assert np.all(m >= 0)


class TestAveragingProperties:
    @given(
        data=random_graphs(),
        matching_seed=st.integers(0, 2**31 - 1),
        load_seed=st.integers(0, 2**31 - 1),
        dims=st.integers(1, 4),
    )
    @settings(max_examples=80, deadline=None)
    def test_one_round_invariants(self, data, matching_seed, load_seed, dims):
        graph, _ = data
        rng = np.random.default_rng(matching_seed)
        partner = sample_random_matching(graph, rng)
        loads = np.random.default_rng(load_seed).random((graph.n, dims))
        out = apply_matching(loads, partner)
        # conservation per dimension
        assert np.allclose(out.sum(axis=0), loads.sum(axis=0))
        # the range can only shrink (averaging is a contraction in max/min)
        assert np.all(out.max(axis=0) <= loads.max(axis=0) + 1e-12)
        assert np.all(out.min(axis=0) >= loads.min(axis=0) - 1e-12)
        # matched partners hold identical values afterwards
        matched = np.flatnonzero(partner >= 0)
        assert np.allclose(out[matched], out[partner[matched]])
        # unmatched nodes are untouched
        unmatched = np.flatnonzero(partner < 0)
        assert np.allclose(out[unmatched], loads[unmatched])

    @given(
        data=random_graphs(),
        rounds=st.integers(0, 15),
        load_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_round_variance_never_increases(self, data, rounds, load_seed):
        graph, seed = data
        rng = np.random.default_rng(seed)
        loads = np.random.default_rng(load_seed).random(graph.n)
        previous_variance = loads.var()
        for _ in range(rounds):
            partner = sample_random_matching(graph, rng)
            loads = apply_matching(loads, partner)
            variance = loads.var()
            assert variance <= previous_variance + 1e-12
            previous_variance = variance
