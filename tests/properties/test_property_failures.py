"""Property-based tests of the counter-driven failure layer.

The failure models' vectorized contract (PR 8) promises three things that
no example-based test pins tightly enough:

* the realized drop fraction of a bound :class:`MessageDropFailures` mask
  is statistically consistent with ``drop_probability`` (binomial CI), and
  the scalar :meth:`deliver` reads the *same* coin as the mask,
* a bound :class:`CrashFailures` is monotone (the alive set never grows
  back), exact in count (``floor(crash_fraction · n)``) and consistent
  between its scalar and mask views,
* :class:`NoFailures` reports ``None`` masks, burns zero draws and leaves
  engine output bit-identical to ``failures=None``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlgorithmParameters, DistributedClustering
from repro.distsim import CrashFailures, Message, MessageDropFailures, NoFailures
from repro.graphs import cycle_of_cliques

N_NODES = 400
N_PAIRS = 4000


class TestMessageDropFraction:
    @given(
        seed=st.integers(0, 2**64 - 1),
        drop=st.floats(0.05, 0.5),
        round_index=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_realized_drop_fraction_within_binomial_ci(self, seed, drop, round_index):
        model = MessageDropFailures(drop)
        model.bind(N_NODES, seed)
        # Distinct (sender, receiver) pairs: the coins are deterministic per
        # pair, so duplicates would replay coins instead of adding trials.
        senders = np.arange(N_PAIRS, dtype=np.int64)
        receivers = N_PAIRS + np.arange(N_PAIRS, dtype=np.int64)
        mask = model.deliver_mask(round_index, "propose", senders, receivers)
        realized = 1.0 - float(np.mean(mask))
        sigma = np.sqrt(drop * (1.0 - drop) / N_PAIRS)
        assert abs(realized - drop) <= 5.0 * sigma, (
            f"realized drop fraction {realized:.4f} outside the 5-sigma band "
            f"around {drop:.4f}"
        )

    @given(seed=st.integers(0, 2**64 - 1), drop=st.floats(0.05, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_scalar_deliver_reads_the_same_coin_as_the_mask(self, seed, drop):
        model = MessageDropFailures(drop)
        model.bind(N_NODES, seed)
        senders = np.arange(64, dtype=np.int64)
        receivers = 64 + np.arange(64, dtype=np.int64)
        round_index = 3
        mask = model.deliver_mask(round_index, "accept", senders, receivers)
        model.begin_round(round_index)
        rng = np.random.default_rng(0)  # the bound path must ignore it
        for i in range(64):
            scalar = model.deliver(
                Message(int(senders[i]), int(receivers[i]), "accept", words=1), rng
            )
            assert scalar == bool(mask[i])

    def test_kind_and_round_decorrelate_the_coins(self):
        model = MessageDropFailures(0.5)
        model.bind(N_NODES, 7)
        senders = np.arange(N_PAIRS, dtype=np.int64)
        receivers = N_PAIRS + np.arange(N_PAIRS, dtype=np.int64)
        base = model.deliver_mask(0, "propose", senders, receivers)
        assert not np.array_equal(
            base, model.deliver_mask(0, "accept", senders, receivers)
        )
        assert not np.array_equal(
            base, model.deliver_mask(1, "propose", senders, receivers)
        )


class TestCrashMonotonicity:
    @given(
        seed=st.integers(0, 2**64 - 1),
        fraction=st.floats(0.01, 0.3),
        crash_round=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_crash_set_is_exact_monotone_and_consistent(self, seed, fraction, crash_round):
        model = CrashFailures(fraction, crash_round)
        model.bind(N_NODES, seed)
        expected_crashed = int(np.floor(fraction * N_NODES))

        for round_index in range(crash_round):
            assert model.alive_mask(round_index, N_NODES) is None

        reference = model.alive_mask(crash_round, N_NODES)
        assert reference is not None
        assert int(np.sum(~reference)) == expected_crashed
        for round_index in range(crash_round, crash_round + 4):
            mask = model.alive_mask(round_index, N_NODES)
            # Monotone: once down, a node never comes back — the alive set
            # is constant after the crash round.
            assert np.array_equal(mask, reference)
            model.begin_round(round_index)
            for v in range(0, N_NODES, 37):
                assert model.node_is_alive(v) == bool(mask[v])

    @given(seed=st.integers(0, 2**64 - 1), fraction=st.floats(0.05, 0.3))
    @settings(max_examples=20, deadline=None)
    def test_deliver_mask_drops_exactly_the_crashed_endpoints(self, seed, fraction):
        model = CrashFailures(fraction, crash_round=0)
        model.bind(N_NODES, seed)
        alive = model.alive_mask(0, N_NODES)
        senders = np.arange(N_NODES, dtype=np.int64)
        receivers = np.roll(senders, 1)
        mask = model.deliver_mask(0, "propose", senders, receivers)
        assert np.array_equal(mask, alive[senders] & alive[receivers])

    def test_rebinding_resets_the_crash_set(self):
        model = CrashFailures(0.2)
        model.bind(N_NODES, 1)
        first = model.alive_mask(0, N_NODES)
        model.bind(N_NODES, 2)
        second = model.alive_mask(0, N_NODES)
        assert not np.array_equal(first, second)
        model.bind(N_NODES, 1)
        assert np.array_equal(model.alive_mask(0, N_NODES), first)


class TestNoFailuresIsTheReliableNetwork:
    def test_masks_are_none(self):
        model = NoFailures()
        model.bind(N_NODES, 3)
        assert model.alive_mask(0, N_NODES) is None
        senders = np.arange(8, dtype=np.int64)
        assert model.deliver_mask(0, "propose", senders, senders + 8) is None

    def test_engine_output_bit_identical_to_failures_none(self):
        instance = cycle_of_cliques(3, 12, seed=9)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        for backend in ("vectorized", "masked-message-passing"):
            for seed in (0, 17):
                clean = DistributedClustering(
                    instance.graph, params, seed=seed, backend=backend
                ).run()
                injected = DistributedClustering(
                    instance.graph,
                    params,
                    seed=seed,
                    backend=backend,
                    failures=NoFailures(),
                ).run()
                assert np.array_equal(clean.labels, injected.labels), backend
                assert np.array_equal(clean.loads, injected.loads), backend
                assert (
                    clean.diagnostics["matched_edges_per_round"]
                    == injected.diagnostics["matched_edges_per_round"]
                ), backend
