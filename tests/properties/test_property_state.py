"""Property-based tests for the node-state averaging rule and the query step."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeState, assign_labels_from_loads

state_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=30),
    values=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    max_size=8,
)


class TestNodeStateProperties:
    @given(a=state_dicts, b=state_dicts)
    @settings(max_examples=100, deadline=None)
    def test_averaging_conserves_total_load(self, a, b):
        sa, sb = NodeState(dict(a)), NodeState(dict(b))
        merged = sa.averaged_with(sb)
        assert 2 * merged.total_load == np.float64(sa.total_load) + np.float64(sb.total_load) or \
            abs(2 * merged.total_load - (sa.total_load + sb.total_load)) < 1e-9

    @given(a=state_dicts, b=state_dicts)
    @settings(max_examples=100, deadline=None)
    def test_averaging_commutative(self, a, b):
        sa, sb = NodeState(dict(a)), NodeState(dict(b))
        assert sa.averaged_with(sb) == sb.averaged_with(sa)

    @given(a=state_dicts)
    @settings(max_examples=60, deadline=None)
    def test_averaging_with_self_is_identity(self, a):
        sa = NodeState(dict(a))
        merged = sa.averaged_with(sa)
        for prefix, value in sa:
            assert abs(merged.value(prefix) - value) < 1e-12

    @given(a=state_dicts, b=state_dicts)
    @settings(max_examples=60, deadline=None)
    def test_values_bounded_by_inputs(self, a, b):
        sa, sb = NodeState(dict(a)), NodeState(dict(b))
        merged = sa.averaged_with(sb)
        for prefix, value in merged:
            assert value <= max(sa.value(prefix), sb.value(prefix)) + 1e-12
            assert value >= 0.0

    @given(a=state_dicts)
    @settings(max_examples=60, deadline=None)
    def test_payload_round_trip(self, a):
        state = NodeState(dict(a))
        assert NodeState.from_payload(state.as_payload()) == state


class TestQueryProperties:
    @given(
        seed_count=st.integers(1, 6),
        node_count=st.integers(1, 40),
        seed=st.integers(0, 2**31 - 1),
        threshold=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_labels_are_valid_identifiers(self, seed_count, node_count, seed, threshold):
        rng = np.random.default_rng(seed)
        loads = rng.random((node_count, seed_count))
        seed_ids = rng.choice(np.arange(1, 1000), size=seed_count, replace=False)
        labels, unlabelled = assign_labels_from_loads(loads, seed_ids, threshold)
        assert labels.shape == (node_count,)
        assert set(labels.tolist()) <= set(seed_ids.tolist())
        # unlabelled nodes are exactly the rows with all entries below threshold
        assert np.array_equal(unlabelled, ~(loads >= threshold).any(axis=1))

    @given(
        node_count=st.integers(1, 30),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_lower_threshold_labels_no_fewer_nodes(self, node_count, seed):
        rng = np.random.default_rng(seed)
        loads = rng.random((node_count, 3))
        seed_ids = np.array([5, 17, 2])
        _, unlabelled_high = assign_labels_from_loads(loads, seed_ids, 0.9, fallback="none")
        _, unlabelled_low = assign_labels_from_loads(loads, seed_ids, 0.1, fallback="none")
        assert unlabelled_low.sum() <= unlabelled_high.sum()
