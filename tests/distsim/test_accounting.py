"""Unit tests for communication accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import CommunicationLog, Message


def _msg(kind="state", payload=(1.0, 2.0)):
    return Message(sender=0, receiver=1, kind=kind, payload=list(payload))


class TestCommunicationLog:
    def test_round_lifecycle(self):
        log = CommunicationLog()
        log.start_round(0)
        log.record_message(_msg())
        stats = log.finish_round()
        assert stats.messages == 1
        assert stats.words == 3
        assert log.num_rounds == 1

    def test_cannot_start_twice(self):
        log = CommunicationLog()
        log.start_round(0)
        with pytest.raises(RuntimeError):
            log.start_round(1)

    def test_cannot_record_outside_round(self):
        log = CommunicationLog()
        with pytest.raises(RuntimeError):
            log.record_message(_msg())
        with pytest.raises(RuntimeError):
            log.finish_round()
        with pytest.raises(RuntimeError):
            log.record_matched_edges(1)

    def test_totals_accumulate(self):
        log = CommunicationLog()
        for r in range(3):
            log.start_round(r)
            for _ in range(r + 1):
                log.record_message(_msg())
            log.record_matched_edges(r)
            log.finish_round()
        assert log.total_messages == 6
        assert log.total_words == 18
        assert log.total_matched_edges == 3
        assert log.max_matched_edges_in_a_round() == 2
        assert np.array_equal(log.messages_per_round(), [1, 2, 3])
        assert np.array_equal(log.matched_edges_per_round(), [0, 1, 2])

    def test_by_kind_counts(self):
        log = CommunicationLog()
        log.start_round(0)
        log.record_message(_msg(kind="propose", payload=()))
        log.record_message(_msg(kind="propose", payload=()))
        log.record_message(_msg(kind="accept"))
        log.finish_round()
        assert log.words_by_kind() == {"propose": 2, "accept": 1}

    def test_summary_keys(self):
        log = CommunicationLog()
        log.start_round(0)
        log.record_message(_msg())
        log.finish_round()
        summary = log.summary()
        for key in (
            "rounds",
            "total_messages",
            "total_words",
            "total_matched_edges",
            "max_matched_edges_per_round",
            "mean_words_per_round",
        ):
            assert key in summary

    def test_empty_log_summary(self):
        log = CommunicationLog()
        assert log.summary()["rounds"] == 0
        assert log.max_matched_edges_in_a_round() == 0
