"""Unit tests for per-node RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import NodeRngFactory


class TestNodeRngFactory:
    def test_streams_are_deterministic(self):
        a = NodeRngFactory(7, 10)
        b = NodeRngFactory(7, 10)
        assert np.array_equal(a.for_node(3).random(5), b.for_node(3).random(5))

    def test_streams_differ_between_nodes(self):
        factory = NodeRngFactory(7, 10)
        assert not np.array_equal(factory.for_node(0).random(5), factory.for_node(1).random(5))

    def test_different_seeds_differ(self):
        a = NodeRngFactory(1, 5)
        b = NodeRngFactory(2, 5)
        assert not np.array_equal(a.for_node(0).random(5), b.for_node(0).random(5))

    def test_generator_identity_cached(self):
        factory = NodeRngFactory(0, 4)
        assert factory.for_node(2) is factory.for_node(2)

    def test_simulator_stream_independent_of_node_streams(self):
        a = NodeRngFactory(3, 4)
        b = NodeRngFactory(3, 4)
        # consuming the simulator stream must not change node streams
        a.for_simulator().random(100)
        assert np.array_equal(a.for_node(1).random(5), b.for_node(1).random(5))

    def test_out_of_range_node(self):
        factory = NodeRngFactory(0, 3)
        with pytest.raises(IndexError):
            factory.for_node(3)
        with pytest.raises(IndexError):
            factory.for_node(-1)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NodeRngFactory(0, 0)

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(99)
        factory = NodeRngFactory(seq, 3)
        assert factory.root_entropy == (99,)

    def test_node_order_independence(self):
        """Values drawn by node i do not depend on whether node j drew first."""
        a = NodeRngFactory(5, 6)
        _ = a.for_node(0).random(50)
        values_after = a.for_node(4).random(5)
        b = NodeRngFactory(5, 6)
        values_direct = b.for_node(4).random(5)
        assert np.array_equal(values_after, values_direct)
