"""Unit tests for the synchronous network simulator.

Uses two tiny reference algorithms:

* ``FloodMinAlgorithm`` — every node repeatedly broadcasts the smallest node
  id it has seen; after ``diameter`` rounds every node must know the global
  minimum (a classical correctness check for synchronous simulators);
* ``CountingAlgorithm`` — deterministic message pattern used to verify exact
  accounting and phase ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import Message, NodeAlgorithm, NodeContext, SynchronousNetwork
from repro.graphs import Graph, cycle_graph, grid_graph


class FloodMinAlgorithm(NodeAlgorithm):
    def phases(self):
        return ("exchange",)

    def initialise(self, node: NodeContext) -> None:
        node.state["min_seen"] = node.node_id

    def run_phase(self, node, round_index, phase, inbox):
        for message in inbox:
            node.state["min_seen"] = min(node.state["min_seen"], message.payload)
        for neighbour in node.neighbours:
            node.send(int(neighbour), "min", node.state["min_seen"])

    def has_converged(self, node):
        return node.state["min_seen"] == 0


class CountingAlgorithm(NodeAlgorithm):
    """Each node sends one 3-word message to every neighbour per round, phase 'a' only."""

    def phases(self):
        return ("a", "b")

    def initialise(self, node):
        node.state["received"] = 0

    def run_phase(self, node, round_index, phase, inbox):
        node.state["received"] += len(inbox)
        if phase == "a":
            for neighbour in node.neighbours:
                node.send(int(neighbour), "data", [1.0, 2.0], words=3)


class TestSynchronousNetwork:
    def test_flood_min_reaches_everyone(self):
        g = grid_graph(4, 4)
        network = SynchronousNetwork(g, FloodMinAlgorithm(), seed=0)
        result = network.run(rounds=8)  # diameter of a 4x4 grid is 6
        assert all(ctx.state["min_seen"] == 0 for ctx in result.contexts)

    def test_early_convergence_stop(self):
        g = cycle_graph(6)
        network = SynchronousNetwork(g, FloodMinAlgorithm(), seed=0)
        result = network.run(rounds=50, stop_when_converged=True)
        assert result.converged_early
        assert result.rounds_executed <= 6

    def test_rounds_zero(self):
        g = cycle_graph(4)
        network = SynchronousNetwork(g, FloodMinAlgorithm(), seed=0)
        result = network.run(rounds=0)
        assert result.rounds_executed == 0
        # finalise is still called; state from initialise persists
        assert result.contexts[2].state["min_seen"] == 2

    def test_negative_rounds_rejected(self):
        network = SynchronousNetwork(cycle_graph(4), FloodMinAlgorithm(), seed=0)
        with pytest.raises(ValueError):
            network.run(rounds=-1)

    def test_exact_message_accounting(self):
        g = cycle_graph(5)  # every node has 2 neighbours
        network = SynchronousNetwork(g, CountingAlgorithm(), seed=0)
        rounds = 3
        result = network.run(rounds=rounds)
        # per round: 5 nodes * 2 neighbours = 10 messages of 3 words, sent in
        # phase 'a' only.
        assert result.communication.total_messages == rounds * 10
        assert result.communication.total_words == rounds * 30
        assert np.array_equal(result.communication.messages_per_round(), [10] * rounds)

    def test_messages_delivered_next_phase(self):
        g = cycle_graph(5)
        network = SynchronousNetwork(g, CountingAlgorithm(), seed=0)
        result = network.run(rounds=2)
        # Messages sent in phase 'a' arrive in phase 'b' of the same round:
        # each node receives 2 messages per round.
        assert all(ctx.state["received"] == 4 for ctx in result.contexts)

    def test_send_to_non_neighbour_rejected(self):
        class BadAlgorithm(FloodMinAlgorithm):
            def run_phase(self, node, round_index, phase, inbox):
                node.send((node.node_id + 2) % node.n, "bad", None)

        network = SynchronousNetwork(cycle_graph(6), BadAlgorithm(), seed=0)
        with pytest.raises(ValueError):
            network.run(rounds=1)

    def test_round_callback_invoked(self):
        calls = []
        network = SynchronousNetwork(cycle_graph(4), FloodMinAlgorithm(), seed=0)
        network.run(rounds=3, round_callback=lambda r, net: calls.append(r))
        assert calls == [0, 1, 2]

    def test_determinism_across_runs(self):
        def final_states(seed):
            net = SynchronousNetwork(grid_graph(3, 3), FloodMinAlgorithm(), seed=seed)
            res = net.run(rounds=2)
            return [ctx.state["min_seen"] for ctx in res.contexts]

        assert final_states(5) == final_states(5)

    def test_metadata_and_config_passthrough(self):
        network = SynchronousNetwork(
            cycle_graph(4), FloodMinAlgorithm(), seed=1, config={"beta": 0.5}
        )
        result = network.run(rounds=1)
        assert result.metadata["n"] == 4
        assert result.metadata["config"]["beta"] == 0.5
        assert result.contexts[0].config["beta"] == 0.5

    def test_trace_matches_accounting(self):
        network = SynchronousNetwork(cycle_graph(5), CountingAlgorithm(), seed=0)
        result = network.run(rounds=2)
        assert len(result.trace) == 2
        assert result.trace[0].words == result.communication.rounds[0].words
        assert result.trace[0].phases_executed == 2

    def test_algorithm_without_phases_rejected(self):
        class NoPhases(FloodMinAlgorithm):
            def phases(self):
                return ()

        network = SynchronousNetwork(cycle_graph(4), NoPhases(), seed=0)
        with pytest.raises(ValueError):
            network.run(rounds=1)

    def test_node_context_random_neighbour(self):
        g = Graph(3, [(0, 1), (0, 2)])
        network = SynchronousNetwork(g, FloodMinAlgorithm(), seed=0)
        ctx = network.contexts[0]
        samples = {ctx.random_neighbour() for _ in range(50)}
        assert samples == {1, 2}
