"""Unit tests for messages and word counting."""

from __future__ import annotations

import numpy as np

from repro.distsim import Message, payload_words


class TestPayloadWords:
    def test_none_is_free(self):
        assert payload_words(None) == 0

    def test_scalars_cost_one(self):
        assert payload_words(3) == 1
        assert payload_words(3.5) == 1
        assert payload_words(True) == 1
        assert payload_words(np.float64(2.0)) == 1
        assert payload_words("identifier") == 1

    def test_sequences_sum(self):
        assert payload_words([1, 2, 3]) == 3
        assert payload_words((1.0, "a")) == 2
        assert payload_words([]) == 0

    def test_ndarray_counts_elements(self):
        assert payload_words(np.zeros(7)) == 7
        assert payload_words(np.zeros((2, 3))) == 6

    def test_dict_counts_keys_and_values(self):
        assert payload_words({"a": 1, "b": [1, 2]}) == 1 + 1 + 1 + 2

    def test_nested_structures(self):
        payload = [(17, 0.5), (23, 0.25)]
        assert payload_words(payload) == 4

    def test_unknown_object_costs_one(self):
        class Opaque:
            pass

        assert payload_words(Opaque()) == 1


class TestMessage:
    def test_default_word_count_includes_kind(self):
        m = Message(sender=0, receiver=1, kind="state", payload=[(5, 0.5)])
        assert m.words == 1 + 2

    def test_explicit_word_count_respected(self):
        m = Message(sender=0, receiver=1, kind="propose", payload=None, words=1)
        assert m.words == 1

    def test_empty_payload(self):
        m = Message(sender=2, receiver=3, kind="ping")
        assert m.words == 1

    def test_frozen(self):
        m = Message(sender=0, receiver=1, kind="x")
        try:
            m.sender = 5  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised
