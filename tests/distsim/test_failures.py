"""Unit tests for failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsim import (
    CompositeFailures,
    CrashFailures,
    Message,
    MessageDropFailures,
    NoFailures,
    SynchronousNetwork,
)
from repro.graphs import cycle_graph

from .test_network import CountingAlgorithm


def _msg():
    return Message(sender=0, receiver=1, kind="x", payload=None)


class TestFailureModels:
    def test_no_failures_delivers_everything(self):
        model = NoFailures()
        rng = np.random.default_rng(0)
        assert all(model.deliver(_msg(), rng) for _ in range(100))
        assert model.node_is_alive(0)

    def test_message_drop_probability_zero_like(self):
        model = MessageDropFailures(drop_probability=0.0)
        rng = np.random.default_rng(0)
        assert all(model.deliver(_msg(), rng) for _ in range(100))

    def test_message_drop_rate_statistics(self):
        model = MessageDropFailures(drop_probability=0.3)
        rng = np.random.default_rng(1)
        delivered = sum(model.deliver(_msg(), rng) for _ in range(5000))
        assert delivered / 5000 == pytest.approx(0.7, abs=0.03)

    def test_message_drop_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            MessageDropFailures(drop_probability=1.0)
        with pytest.raises(ValueError):
            MessageDropFailures(drop_probability=-0.1)

    def test_crash_failures_kill_fraction(self):
        model = CrashFailures(crash_fraction=0.5, crash_round=0)
        rng = np.random.default_rng(2)
        model.reset(10, rng)
        model.on_round(0, rng)
        dead = sum(not model.node_is_alive(v) for v in range(10))
        assert dead == 5

    def test_crash_only_after_crash_round(self):
        model = CrashFailures(crash_fraction=0.5, crash_round=3)
        rng = np.random.default_rng(3)
        model.reset(10, rng)
        model.on_round(0, rng)
        assert all(model.node_is_alive(v) for v in range(10))
        model.on_round(3, rng)
        assert any(not model.node_is_alive(v) for v in range(10))

    def test_crash_blocks_messages_to_and_from_crashed(self):
        model = CrashFailures(crash_fraction=0.5, crash_round=0)
        rng = np.random.default_rng(4)
        model.reset(4, rng)
        model.on_round(0, rng)
        crashed = [v for v in range(4) if not model.node_is_alive(v)]
        alive = [v for v in range(4) if model.node_is_alive(v)]
        message = Message(sender=crashed[0], receiver=alive[0], kind="x")
        assert not model.deliver(message, rng)

    def test_crash_rejects_invalid(self):
        with pytest.raises(ValueError):
            CrashFailures(crash_fraction=1.0)
        with pytest.raises(ValueError):
            CrashFailures(crash_fraction=0.1, crash_round=-1)

    def test_composite(self):
        model = CompositeFailures(MessageDropFailures(0.0), NoFailures())
        rng = np.random.default_rng(5)
        model.reset(5, rng)
        model.on_round(0, rng)
        assert model.deliver(_msg(), rng)
        assert model.node_is_alive(1)


class TestFailuresInNetwork:
    def test_dropped_messages_counted_in_trace(self):
        network = SynchronousNetwork(
            cycle_graph(6),
            CountingAlgorithm(),
            seed=0,
            failures=MessageDropFailures(drop_probability=0.5),
        )
        result = network.run(rounds=4)
        dropped = int(result.trace.dropped_series().sum())
        delivered = result.communication.total_messages
        assert dropped > 0
        assert dropped + delivered == 4 * 12  # 6 nodes * 2 neighbours * 4 rounds

    def test_crashed_nodes_receive_nothing(self):
        network = SynchronousNetwork(
            cycle_graph(6),
            CountingAlgorithm(),
            seed=1,
            failures=CrashFailures(crash_fraction=0.34, crash_round=0),
        )
        result = network.run(rounds=3)
        crashed = [
            v for v in range(6) if not network.failures.node_is_alive(v)
        ]
        assert crashed, "at least one node should have crashed"
        for v in crashed:
            assert result.contexts[v].state["received"] == 0
