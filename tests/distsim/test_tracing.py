"""Unit tests for simulation traces."""

from __future__ import annotations

import numpy as np

from repro.distsim import RoundTrace, SimulationTrace


class TestSimulationTrace:
    def _trace(self) -> SimulationTrace:
        trace = SimulationTrace()
        for r in range(4):
            trace.append(
                RoundTrace(
                    round_index=r,
                    phases_executed=2,
                    messages=10 * (r + 1),
                    words=100 * (r + 1),
                    dropped_messages=r,
                )
            )
        return trace

    def test_len_and_indexing(self):
        trace = self._trace()
        assert len(trace) == 4
        assert trace[2].messages == 30
        assert [t.round_index for t in trace] == [0, 1, 2, 3]

    def test_series_extraction(self):
        trace = self._trace()
        assert np.array_equal(trace.words_series(), [100, 200, 300, 400])
        assert np.array_equal(trace.messages_series(), [10, 20, 30, 40])
        assert np.array_equal(trace.dropped_series(), [0, 1, 2, 3])

    def test_observations(self):
        trace = self._trace()
        trace.observe(1, "error", 0.25)
        trace.observe(3, "error", 0.05)
        series = trace.series("error")
        assert np.isnan(series[0])
        assert series[1] == 0.25
        assert series[3] == 0.05

    def test_missing_observation_series_all_nan(self):
        trace = self._trace()
        assert np.all(np.isnan(trace.series("nonexistent")))
