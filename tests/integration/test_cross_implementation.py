"""Agreement between the centralised and distributed implementations.

The two implementations share the algorithm but not the code path: the
centralised one works on the (n, s) load matrix with sampled matchings, the
distributed one exchanges messages between isolated node objects.  These
tests check that they agree in distribution (same accuracy on the same
instances) and that the distributed state dynamics obey the same invariants
as the matrix process (conservation, equal values across matched pairs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, CentralizedClustering, DistributedClustering
from repro.graphs import cycle_of_cliques


@pytest.fixture(scope="module")
def instance():
    return cycle_of_cliques(3, 14, seed=5)


@pytest.fixture(scope="module")
def params(instance):
    return AlgorithmParameters.from_instance(instance.graph, instance.partition)


class TestImplementationAgreement:
    def test_same_accuracy_distribution(self, instance, params):
        """Mean error over several seeds should be comparable (both ~0 here)."""
        central_errors = [
            CentralizedClustering(instance.graph, params, seed=s)
            .run(keep_loads=False)
            .error_against(instance.partition)
            for s in range(4)
        ]
        distributed_errors = [
            DistributedClustering(instance.graph, params, seed=s)
            .run()
            .error_against(instance.partition)
            for s in range(4)
        ]
        assert np.mean(central_errors) <= 0.10
        assert np.mean(distributed_errors) <= 0.10
        assert abs(np.mean(central_errors) - np.mean(distributed_errors)) <= 0.10

    def test_distributed_loads_conserved_and_cluster_concentrated(self, instance, params):
        result = DistributedClustering(instance.graph, params, seed=9).run()
        loads = result.loads
        # conservation per seed dimension
        assert np.allclose(loads.sum(axis=0), 1.0, atol=1e-9)
        # concentration: for each seed, most load mass is inside its cluster
        truth = instance.partition
        for i, seed_node in enumerate(result.seeds):
            cluster = truth.cluster(truth.label_of(int(seed_node)))
            assert loads[cluster, i].sum() >= 0.7

    def test_seeding_statistics_match(self, instance, params):
        """Both implementations implement the same seeding distribution."""
        central_seed_counts = [
            CentralizedClustering(instance.graph, params, seed=s).run(keep_loads=False).num_seeds
            for s in range(30)
        ]
        distributed_seed_counts = [
            DistributedClustering(instance.graph, params.with_rounds(0), seed=s).run().num_seeds
            for s in range(30)
        ]
        assert np.mean(central_seed_counts) == pytest.approx(
            np.mean(distributed_seed_counts), rel=0.35
        )

    def test_zero_rounds_equivalence(self, instance, params):
        """With T = 0 both implementations label only the seeds themselves."""
        p0 = params.with_rounds(0)
        central = CentralizedClustering(instance.graph, p0, seed=3, fallback="none").run()
        distributed = DistributedClustering(instance.graph, p0, seed=3, fallback="none").run()
        assert central.num_unlabelled == instance.graph.n - central.num_seeds
        assert distributed.num_unlabelled == instance.graph.n - distributed.num_seeds
