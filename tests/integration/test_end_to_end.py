"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SpectralClustering
from repro.core import AlgorithmParameters, CentralizedClustering, DistributedClustering, cluster_graph
from repro.evaluation import clustering_report
from repro.graphs import (
    analyse_cluster_structure,
    cycle_of_cliques,
    planted_partition,
    ring_of_expanders,
    validate_instance,
)


class TestTheorem11Pipeline:
    """Generate instance → check assumptions → run → verify all three claims."""

    def test_full_pipeline_on_expanders(self):
        instance = ring_of_expanders(3, 30, 8, seed=4)
        graph, truth = instance.graph, instance.partition

        # Instance satisfies the structural assumptions used by the analysis.
        report = validate_instance(instance)
        assert report.ok
        structure = analyse_cluster_structure(graph, truth)
        assert structure.upsilon > 5

        # Run the distributed algorithm with the theorem's parameters.
        params = AlgorithmParameters.from_instance(graph, truth)
        result = DistributedClustering(graph, params, seed=0).run()

        # Claim (1): few misclassified nodes.
        assert result.error_against(truth) <= 0.10
        # Claim (2): message complexity within O(T n k log k).
        bound = params.rounds * graph.n * truth.k * max(np.log2(truth.k), 1)
        assert result.total_words() <= bound
        # Matching model property: at most n/2 matched edges per round.
        assert max(result.diagnostics["matched_edges_per_round"]) <= graph.n // 2

    def test_pipeline_on_sbm_with_report(self, sbm_instance):
        result = cluster_graph(sbm_instance.graph, k=3, beta=0.3, seed=5)
        report = clustering_report(result.partition, sbm_instance.partition)
        assert report["error"] <= 0.20
        assert report["ari"] >= 0.5

    def test_comparable_to_spectral_on_easy_instance(self, four_clique_instance):
        ours = cluster_graph(four_clique_instance.graph, k=4, seed=6)
        spectral = SpectralClustering().cluster(four_clique_instance.graph, 4, seed=6)
        ours_err = ours.error_against(four_clique_instance.partition)
        spectral_err = spectral.error_against(four_clique_instance.partition)
        assert ours_err <= spectral_err + 0.05


class TestAlgorithmDoesNotNeedK:
    def test_only_beta_required(self, four_clique_instance):
        """The paper stresses k need not be known: only a lower bound β."""
        graph, truth = four_clique_instance.graph, four_clique_instance.partition
        # Use a pessimistic beta (well below the true balance of 1/4); T stays
        # an input of the algorithm, as in the paper, so we keep the value the
        # spectrum prescribes but derive *everything else* from β alone.
        oracle_rounds = AlgorithmParameters.from_instance(graph, truth).rounds
        params = AlgorithmParameters.from_values(graph.n, beta=0.1, rounds=oracle_rounds)
        result = CentralizedClustering(graph, params, seed=7).run(keep_loads=False)
        # The misclassification stays small even though k was never supplied;
        # a handful of stray nodes may form small extra clusters, which is
        # exactly the o(n) slack of Theorem 1.1.
        assert result.error_against(truth) <= 0.10
        assert result.num_clusters_found >= truth.k


class TestScalesAcrossFamilies:
    @pytest.mark.parametrize(
        "make_instance",
        [
            lambda: cycle_of_cliques(2, 20, seed=11),
            lambda: cycle_of_cliques(6, 12, seed=12),
            lambda: planted_partition(180, 3, 0.35, 0.02, seed=13, ensure_connected=True),
            lambda: ring_of_expanders(4, 24, 6, seed=14),
        ],
        ids=["2-cliques", "6-cliques", "sbm", "4-expanders"],
    )
    def test_low_error_across_instance_families(self, make_instance):
        instance = make_instance()
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        result = CentralizedClustering(instance.graph, params, seed=1).run(keep_loads=False)
        assert result.error_against(instance.partition) <= 0.15
