"""Statistical parity of the three round-engine backends.

The ``message-passing``, ``vectorized`` and ``parallel`` backends execute the
same protocol distribution through completely different code paths (per-node
message queues vs. batched array updates vs. fused counter-based kernels), so
they cannot agree bit-for-bit — but on the generator families they must
produce clusterings of equivalent quality.  These tests pin that contract:

* same-seed determinism *within* each backend,
* mean misclassification rate *across* every backend pair within a 2× band
  (plus a small additive guard for instances where both errors are ~0),
* shared invariants (load conservation, seed/column alignment) on all.

The parallel backend runs its real engine here on machines without numba
too: ``use_numba=False`` forces the bit-identical numpy reference path of
the same kernels, so the distribution under test is the deployed one.

All seeds are fixed, so the suite is deterministic; the tolerances were
chosen with head-room against the observed values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._accel import HAVE_NUMBA
from repro.core import AlgorithmParameters, DistributedClustering
from repro.graphs import (
    almost_regular_clustered_graph,
    cycle_of_cliques,
    planted_partition,
)

BACKENDS = ("message-passing", "vectorized", "parallel")
SEEDS = range(6)
#: Band for the cross-backend mean misclassification comparison: each mean
#: must be within 2x of the other, with an additive guard so near-perfect
#: instances (error ~ 0 on one backend, one unlucky seeding on the other)
#: do not trip the ratio.
RATIO = 2.0
GUARD = 0.1


def _instances():
    return {
        "cycle_of_cliques": cycle_of_cliques(3, 16, seed=2),
        "sbm": planted_partition(120, 3, 0.40, 0.01, seed=3, ensure_connected=True),
        "almost_regular": almost_regular_clustered_graph(3, 20, 4, 8, seed=4),
    }


@pytest.fixture(scope="module", params=list(_instances()))
def scenario(request):
    instance = _instances()[request.param]
    params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
    return request.param, instance, params


def _options(backend):
    # Keep the parallel backend on its own engine everywhere: without numba
    # the factory would otherwise fall back to the vectorized backend, and
    # the parity suite would silently compare vectorized against itself.
    if backend == "parallel" and not HAVE_NUMBA:
        return {"use_numba": False}
    return {}


def _run(instance, params, backend, seed, **kwargs):
    return DistributedClustering(
        instance.graph,
        params,
        seed=seed,
        backend=backend,
        **_options(backend),
        **kwargs,
    ).run()


def _mean_error(instance, params, backend, *, degree_cap=None) -> float:
    errors = []
    for seed in SEEDS:
        result = _run(instance, params, backend, seed, degree_cap=degree_cap)
        errors.append(result.error_against(instance.partition))
    return float(np.mean(errors))


class TestBackendParity:
    def test_same_seed_determinism_within_backend(self, scenario):
        _, instance, params = scenario
        for backend in BACKENDS:
            first = _run(instance, params, backend, 123)
            second = _run(instance, params, backend, 123)
            assert np.array_equal(first.labels, second.labels), backend
            assert np.array_equal(first.seeds, second.seeds), backend

    def test_misclassification_within_band(self, scenario):
        name, instance, params = scenario
        means = {b: _mean_error(instance, params, b) for b in BACKENDS}
        for a in BACKENDS:
            for b in BACKENDS:
                assert means[a] <= RATIO * means[b] + GUARD, (
                    f"{name}: {a} {means[a]} vs {b} {means[b]}"
                )
        # Every backend must actually solve these well-clustered instances.
        assert max(means.values()) <= 0.25, f"{name}: {means}"

    def test_load_conservation_on_both(self, scenario):
        _, instance, params = scenario
        for backend in BACKENDS:
            result = _run(instance, params, backend, 7)
            assert result.loads is not None
            # One unit of load per seed, conserved through every round.
            assert np.allclose(result.loads.sum(axis=0), 1.0), backend
            assert result.seeds.size == result.seed_ids.size
            assert np.all(np.diff(result.seeds) > 0), "seed columns in node order"

    def test_rounds_and_matched_edge_accounting(self, scenario):
        _, instance, params = scenario
        for backend in BACKENDS:
            result = _run(instance, params, backend, 5)
            assert result.rounds == params.rounds
            matched = result.diagnostics["matched_edges_per_round"]
            assert len(matched) == params.rounds
            assert all(0 <= m <= instance.graph.n // 2 for m in matched), backend


class TestDegreeCappedParity:
    def test_almost_regular_extension_on_both_backends(self):
        instance = almost_regular_clustered_graph(3, 20, 4, 8, seed=4)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        cap = instance.graph.max_degree
        means = {
            b: _mean_error(instance, params, b, degree_cap=cap) for b in BACKENDS
        }
        for a in BACKENDS:
            for b in BACKENDS:
                assert means[a] <= RATIO * means[b] + GUARD, means
        assert max(means.values()) <= 0.25, means
