"""Out-of-core parity: storage backends and blocked rounds never change results.

The storage layer's contract is that *where the adjacency lives* (in-RAM
arrays vs memory-mapped shards) and *how the round loop touches it*
(unblocked global gathers vs row blocks) are pure execution concerns: for
one seed, every combination must produce **bit-identical** outputs.  These
tests pin that contract at the three levels users consume it:

* the engine (``VectorizedEngine(block_size=...)`` on dense vs mmap graphs),
* the experiment runner (``run_trials`` records, serial vs process executor,
  dense vs mmap instances),
* the process boundary (an mmap instance pickles by path, not by payload).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import AlgorithmParameters
from repro.core.engines import VectorizedEngine, build_clustering_result
from repro.evaluation import (
    evaluate_load_balancing_clustering,
    run_trials,
    sweep,
)
from repro.graphs import MmapStorage, cached_instance

PARAMS = dict(n=400, k=4, p_in=0.3, p_out=0.01, ensure_connected=True)
SEED = 29


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("instance-cache")


@pytest.fixture(scope="module")
def dense_instance(cache_dir):
    return cached_instance("planted_partition", seed=SEED, cache_dir=cache_dir, **PARAMS)


@pytest.fixture(scope="module")
def mmap_instance(cache_dir):
    instance = cached_instance(
        "planted_partition", seed=SEED, cache_dir=cache_dir, mmap=True, shard_arcs=2000,
        **PARAMS,
    )
    assert isinstance(instance.graph.storage, MmapStorage)
    assert instance.graph.storage.num_shards > 1
    return instance


class TestEngineParity:
    def _labels(self, graph, *, block_size=None):
        params = AlgorithmParameters.from_values(graph.n, 0.25, 40)
        engine = VectorizedEngine(graph, params, seed=7, block_size=block_size)
        result = build_clustering_result(engine.run(), params)
        return result.labels

    def test_blocked_matches_unblocked_on_dense(self, dense_instance):
        reference = self._labels(dense_instance.graph)
        for block in (1, 17, 400, 10_000):
            assert np.array_equal(reference, self._labels(dense_instance.graph, block_size=block))

    def test_mmap_matches_dense(self, dense_instance, mmap_instance):
        reference = self._labels(dense_instance.graph)
        # Auto block size (storage-native) and explicit ones.
        assert np.array_equal(reference, self._labels(mmap_instance.graph))
        for block in (13, 250):
            assert np.array_equal(reference, self._labels(mmap_instance.graph, block_size=block))

    def test_block_size_validation(self, dense_instance):
        params = AlgorithmParameters.from_values(dense_instance.graph.n, 0.25, 5)
        with pytest.raises(ValueError):
            VectorizedEngine(dense_instance.graph, params, block_size=0)
        with pytest.raises(ValueError):
            VectorizedEngine(
                dense_instance.graph,
                params,
                block_size=8,
                matching_sampler=lambda g, r: np.full(g.n, -1, dtype=np.int64),
            )


class TestSweepParity:
    def _run(self, instances, *, executor="serial", workers=None, block_size=None):
        algorithms = {
            "ours": evaluate_load_balancing_clustering(
                backend="vectorized", rounds=30, block_size=block_size
            )
        }
        result = run_trials(
            instances,
            algorithms,
            trials=2,
            base_seed=5,
            executor=executor,
            workers=workers,
        )
        return [(r.config, r.trial, r.values) for r in result.records]

    def test_records_identical_across_storage_and_blocking(
        self, cache_dir, dense_instance, mmap_instance
    ):
        dense = [({"size": PARAMS["n"]}, dense_instance)]
        mapped = [({"size": PARAMS["n"]}, mmap_instance)]
        reference = self._run(dense)
        assert self._run(mapped) == reference
        assert self._run(dense, block_size=37) == reference
        assert self._run(mapped, block_size=37) == reference

    def test_process_executor_with_mmap_instances(self, dense_instance, mmap_instance):
        """The acceptance shape of `repro sweep --mmap --workers N`: records
        from mmap instances fanned across processes match the dense serial
        path bit for bit."""
        dense = [({"size": PARAMS["n"]}, dense_instance)]
        mapped = [({"size": PARAMS["n"]}, mmap_instance)]
        reference = self._run(dense)
        assert self._run(mapped, executor="process", workers=2) == reference

    def test_sweep_factory_threads_mmap(self, cache_dir):
        def make(n, cache_dir=None):
            return cached_instance(
                "planted_partition", seed=SEED, cache_dir=cache_dir, mmap=True,
                **{**PARAMS, "n": n},
            )

        pairs = list(sweep([300], make, key="n", cache_dir=str(cache_dir)))
        assert len(pairs) == 1
        assert isinstance(pairs[0][1].graph.storage, MmapStorage)


class TestProcessBoundary:
    def test_mmap_instance_pickles_by_path(self, mmap_instance):
        blob = pickle.dumps(mmap_instance)
        # The adjacency is ~50 KB as arrays; by-path pickling stays tiny.
        assert len(blob) < 8 * 1024
        clone = pickle.loads(blob)
        assert isinstance(clone.graph.storage, MmapStorage)
        assert clone.graph == mmap_instance.graph

    def test_dense_instance_still_pickles_by_value(self, dense_instance):
        clone = pickle.loads(pickle.dumps(dense_instance))
        assert clone.graph == dense_instance.graph
        assert clone.graph.storage.in_memory
