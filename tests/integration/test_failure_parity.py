"""Bit-exact failure-injection parity across the round-engine backends.

The failure layer (PR 8) draws every drop/crash decision from dedicated
splitmix64 counter streams keyed by ``(seed, round, kind, node/edge)``, so
the decisions are *position-independent*: the per-node simulator flipping
one coin per message and the array backends materialising whole masks must
agree bit for bit.  These tests pin that contract — unlike the statistical
band of ``test_backend_parity.py``, equality here is exact:

* ``masked-message-passing`` (the per-node simulator driven by the counter
  streams), ``vectorized`` in counter mode and ``parallel`` produce
  identical label fingerprints under the same ``(seed, drop_prob,
  crash_prob)``,
* at every thread count of the parallel backend (1 and 8),
* on dense and memory-mapped storage.

The parallel backend runs its real engine on machines without numba too:
``use_numba=False`` forces the bit-identical numpy reference path of the
same kernels.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro._accel import HAVE_NUMBA
from repro.core import AlgorithmParameters, DistributedClustering
from repro.distsim import CompositeFailures, CrashFailures, MessageDropFailures
from repro.graphs import Graph, MmapStorage, cycle_of_cliques, planted_partition

SEED = 42
THREAD_COUNTS = (1, 8)

#: (name, factory) — a fresh model per run, since binding stores per-run
#: state (the crash set) on the instance.
FAILURE_CONFIGS = (
    ("none", lambda: None),
    ("drop-0.05", lambda: MessageDropFailures(0.05)),
    ("crash-0.05", lambda: CrashFailures(0.05, crash_round=1)),
    (
        "drop+crash",
        lambda: CompositeFailures(
            MessageDropFailures(0.05), CrashFailures(0.01)
        ),
    ),
)


def _instances():
    return {
        "cycle_of_cliques": cycle_of_cliques(3, 14, seed=5),
        "sbm": planted_partition(96, 3, 0.5, 0.02, seed=3, ensure_connected=True),
    }


@pytest.fixture(scope="module", params=list(_instances()))
def scenario(request):
    instance = _instances()[request.param]
    params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
    return request.param, instance, params


def _parallel_options(threads: int) -> dict:
    options: dict = {"threads": threads}
    if not HAVE_NUMBA:
        options["use_numba"] = False
    return options


def _run(graph, params, backend, failures, **options):
    return DistributedClustering(
        graph, params, seed=SEED, backend=backend, failures=failures, **options
    ).run()


def _fingerprint(result):
    return (
        result.labels.tobytes(),
        result.seeds.tobytes(),
        result.seed_ids.tobytes(),
        result.loads.tobytes(),
        tuple(result.diagnostics["matched_edges_per_round"]),
    )


def _mmap_graph(graph, tmp: Path) -> Graph:
    indptr, indices = graph.csr_arrays()
    entry = tmp / "entry.csr"
    MmapStorage.write(entry, np.asarray(indptr), np.asarray(indices))
    return Graph.from_storage(MmapStorage(entry), name=graph.name)


@pytest.mark.parametrize("config_name,make_failures", FAILURE_CONFIGS, ids=[c[0] for c in FAILURE_CONFIGS])
def test_three_backends_bit_identical(scenario, config_name, make_failures):
    name, instance, params = scenario
    graph = instance.graph

    reference = _fingerprint(
        _run(graph, params, "masked-message-passing", make_failures())
    )
    vectorized = _fingerprint(
        _run(graph, params, "vectorized", make_failures(), rng_mode="counter")
    )
    assert vectorized == reference, (
        f"{name}/{config_name}: vectorized(counter) diverges from the "
        "masked per-node simulator"
    )
    for threads in THREAD_COUNTS:
        parallel = _fingerprint(
            _run(
                graph,
                params,
                "parallel",
                make_failures(),
                **_parallel_options(threads),
            )
        )
        assert parallel == reference, (
            f"{name}/{config_name}: parallel@{threads} diverges from the "
            "masked per-node simulator"
        )


@pytest.mark.parametrize("config_name,make_failures", FAILURE_CONFIGS[1:3], ids=[c[0] for c in FAILURE_CONFIGS[1:3]])
def test_mmap_storage_bit_identical(scenario, config_name, make_failures):
    name, instance, params = scenario
    graph = instance.graph
    reference = _fingerprint(
        _run(graph, params, "vectorized", make_failures(), rng_mode="counter")
    )
    with tempfile.TemporaryDirectory() as tmp:
        mm_graph = _mmap_graph(graph, Path(tmp))
        vectorized = _fingerprint(
            _run(mm_graph, params, "vectorized", make_failures(), rng_mode="counter")
        )
        assert vectorized == reference, (
            f"{name}/{config_name}: vectorized(counter) changed on mmap storage"
        )
        parallel = _fingerprint(
            _run(mm_graph, params, "parallel", make_failures(), **_parallel_options(1))
        )
        assert parallel == reference, (
            f"{name}/{config_name}: parallel changed on mmap storage"
        )


def test_matched_edges_equal_delivered_accepts(scenario):
    """The masked engines count a matched edge iff the accept was delivered
    — the same number the per-node simulator's message log reports."""
    _, instance, params = scenario
    result = _run(
        instance.graph,
        params,
        "masked-message-passing",
        CompositeFailures(MessageDropFailures(0.1), CrashFailures(0.02)),
    )
    matched = result.diagnostics["matched_edges_per_round"]
    accepts = [
        stats.by_kind.get("accept", 0)
        for stats in result.communication.rounds
    ]
    assert matched == accepts
