"""Robustness integration tests: failures, noise and degraded structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, CentralizedClustering, DistributedClustering
from repro.distsim import CrashFailures, MessageDropFailures
from repro.graphs import cycle_of_cliques, noisy_clustered_graph, planted_partition


class TestMessageLoss:
    @pytest.mark.parametrize("drop", [0.05, 0.2])
    def test_accuracy_degrades_gracefully(self, drop):
        instance = cycle_of_cliques(3, 12, seed=0)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        result = DistributedClustering(
            instance.graph,
            params,
            seed=1,
            failures=MessageDropFailures(drop_probability=drop),
        ).run()
        # The algorithm still completes and keeps a majority of nodes right.
        assert result.rounds == params.rounds
        assert result.error_against(instance.partition) <= 0.4

    def test_load_conservation_can_break_under_drops(self):
        """A dropped commit breaks the conservation invariant: the proposer has
        already averaged while the acceptor keeps its old state, so a seed's
        total load can drift away from 1 in either direction.  This is
        documented behaviour (the paper assumes a reliable network); here we
        measure that it actually happens, and that it does *not* happen on the
        reliable network."""
        instance = cycle_of_cliques(3, 12, seed=0)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        lossy = DistributedClustering(
            instance.graph,
            params,
            seed=2,
            failures=MessageDropFailures(drop_probability=0.3),
        ).run()
        assert not np.allclose(lossy.loads.sum(axis=0), 1.0, atol=1e-6)

        reliable = DistributedClustering(instance.graph, params, seed=2).run()
        assert np.allclose(reliable.loads.sum(axis=0), 1.0, atol=1e-9)


class TestCrashes:
    def test_survives_small_crash_fraction(self):
        instance = cycle_of_cliques(3, 14, seed=1)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        result = DistributedClustering(
            instance.graph,
            params,
            seed=3,
            failures=CrashFailures(crash_fraction=0.05, crash_round=params.rounds // 2),
        ).run()
        assert result.error_against(instance.partition) <= 0.3


class TestStructuralNoise:
    def test_error_increases_with_noise_but_not_catastrophically(self):
        base = cycle_of_cliques(4, 15, seed=2)
        params = AlgorithmParameters.from_instance(base.graph, base.partition)
        clean = CentralizedClustering(base.graph, params, seed=4).run(keep_loads=False)
        noisy = noisy_clustered_graph(base, noise_edges=60, seed=5)
        noisy_params = AlgorithmParameters.from_instance(noisy.graph, noisy.partition)
        noisy_result = CentralizedClustering(noisy.graph, noisy_params, seed=4).run(
            keep_loads=False
        )
        assert clean.error_against(base.partition) <= 0.05
        assert noisy_result.error_against(base.partition) <= 0.35

    def test_weak_cluster_structure_detected_by_upsilon(self):
        """When Υ is small the theory makes no promise — verify we can tell."""
        from repro.graphs import gap_parameter_upsilon

        strong = planted_partition(120, 3, 0.4, 0.01, seed=6, ensure_connected=True)
        weak = planted_partition(120, 3, 0.25, 0.15, seed=7, ensure_connected=True)
        assert gap_parameter_upsilon(strong.graph, strong.partition) > gap_parameter_upsilon(
            weak.graph, weak.partition
        )
