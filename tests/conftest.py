"""Shared fixtures for the test-suite.

Instances are deliberately small (tens to a couple of hundred nodes) so the
whole suite stays fast; correctness of the algorithm at scale is the
benchmarks' job, the tests check invariants and agreement between
implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters
from repro.graphs import (
    ClusteredGraph,
    Graph,
    connected_caveman,
    cycle_of_cliques,
    planted_partition,
    ring_of_expanders,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """A tiny hand-checked graph: a 4-cycle with one chord (0-2)."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name="house")


@pytest.fixture(scope="session")
def two_clique_instance() -> ClusteredGraph:
    """Two cliques of 12 nodes joined by one edge (the canonical 2-cluster case)."""
    return cycle_of_cliques(2, 12, seed=0)


@pytest.fixture(scope="session")
def four_clique_instance() -> ClusteredGraph:
    """Four cliques of 15 nodes in a cycle."""
    return cycle_of_cliques(4, 15, seed=1)


@pytest.fixture(scope="session")
def caveman_instance() -> ClusteredGraph:
    """Connected caveman graph: exactly regular, 4 clusters of 10."""
    return connected_caveman(4, 10)


@pytest.fixture(scope="session")
def expander_instance() -> ClusteredGraph:
    """Ring of three 8-regular expanders of 30 nodes each."""
    return ring_of_expanders(3, 30, 8, seed=2)


@pytest.fixture(scope="session")
def sbm_instance() -> ClusteredGraph:
    """A moderately hard planted partition (n=150, k=3)."""
    return planted_partition(150, 3, 0.30, 0.02, seed=3, ensure_connected=True)


@pytest.fixture(scope="session")
def four_clique_parameters(four_clique_instance) -> AlgorithmParameters:
    return AlgorithmParameters.from_instance(
        four_clique_instance.graph, four_clique_instance.partition
    )
