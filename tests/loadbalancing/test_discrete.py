"""Unit tests for discrete (indivisible-token) load balancing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import complete_graph, cycle_of_cliques
from repro.loadbalancing import DiscreteLoadBalancingProcess, discrete_balancing_error


class TestDiscreteProcess:
    def test_token_conservation(self, four_clique_instance):
        graph = four_clique_instance.graph
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 20, size=graph.n)
        proc = DiscreteLoadBalancingProcess(graph, tokens, seed=1)
        total = proc.total_tokens
        proc.run(50)
        assert proc.total_tokens == total

    def test_tokens_stay_integral_and_nonnegative(self, four_clique_instance):
        graph = four_clique_instance.graph
        tokens = np.zeros(graph.n, dtype=np.int64)
        tokens[0] = 1000
        proc = DiscreteLoadBalancingProcess(graph, tokens, seed=2)
        proc.run(30)
        out = proc.tokens
        assert out.dtype == np.int64
        assert np.all(out >= 0)

    def test_discrepancy_decreases_on_expander(self):
        graph = complete_graph(16)
        tokens = np.zeros(16, dtype=np.int64)
        tokens[0] = 1600
        proc = DiscreteLoadBalancingProcess(graph, tokens, seed=3)
        initial = proc.discrepancy()
        proc.run(200)
        # discrete balancing reaches a constant-discrepancy neighbourhood of
        # the average (100 per node)
        assert proc.discrepancy() <= max(4, initial // 100)

    def test_deterministic_rounding_variant(self, four_clique_instance):
        graph = four_clique_instance.graph
        tokens = np.zeros(graph.n, dtype=np.int64)
        tokens[0] = 999
        proc = DiscreteLoadBalancingProcess(graph, tokens, seed=4, randomised_rounding=False)
        proc.run(20)
        assert proc.total_tokens == 999

    def test_matched_pair_differs_by_at_most_one(self, four_clique_instance):
        graph = four_clique_instance.graph
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, 50, size=graph.n)
        proc = DiscreteLoadBalancingProcess(graph, tokens, seed=6)
        partner = proc.step()
        out = proc.tokens
        matched = np.flatnonzero(partner >= 0)
        assert np.all(np.abs(out[matched] - out[partner[matched]]) <= 1)

    def test_input_validation(self, four_clique_instance):
        graph = four_clique_instance.graph
        with pytest.raises(ValueError):
            DiscreteLoadBalancingProcess(graph, np.ones(graph.n))  # float dtype
        with pytest.raises(ValueError):
            DiscreteLoadBalancingProcess(graph, np.full(graph.n, -1, dtype=np.int64))
        with pytest.raises(ValueError):
            DiscreteLoadBalancingProcess(graph, np.ones(graph.n - 1, dtype=np.int64))


class TestDiscreteVsContinuous:
    def test_deviation_bounded_by_tokens(self):
        instance = cycle_of_cliques(3, 12, seed=0)
        tokens = np.zeros(instance.graph.n, dtype=np.int64)
        tokens[0] = 4096
        report = discrete_balancing_error(instance.graph, tokens, rounds=80, seed=1)
        # with thousands of tokens the rounding error per node stays tiny
        # relative to the budget
        assert report["max_deviation"] <= 64
        assert report["discrete_discrepancy"] >= report["continuous_discrepancy"] - 1e-9

    def test_report_keys(self):
        instance = cycle_of_cliques(2, 8, seed=1)
        tokens = np.full(instance.graph.n, 10, dtype=np.int64)
        report = discrete_balancing_error(instance.graph, tokens, rounds=5, seed=2)
        assert set(report) == {
            "discrete_discrepancy",
            "continuous_discrepancy",
            "max_deviation",
        }
