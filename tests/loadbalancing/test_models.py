"""Unit tests for the alternative averaging substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import cycle_graph, cycle_of_cliques
from repro.loadbalancing import (
    DiffusionModel,
    DimensionExchangeModel,
    MaximalMatchingModel,
    RandomMatchingModel,
    make_averaging_model,
)

ALL_MODEL_NAMES = ("random-matching", "maximal-matching", "diffusion", "dimension-exchange")


@pytest.fixture(scope="module")
def instance():
    return cycle_of_cliques(3, 12, seed=0)


class TestFactory:
    def test_factory_names(self, instance):
        for name in ALL_MODEL_NAMES:
            model = make_averaging_model(name, instance.graph)
            assert model.name == name

    def test_unknown_name(self, instance):
        with pytest.raises(ValueError):
            make_averaging_model("gossip", instance.graph)


class TestConservationAndConvergence:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_total_load_conserved(self, instance, name):
        graph = instance.graph
        model = make_averaging_model(name, graph)
        rng = np.random.default_rng(0)
        loads = rng.random((graph.n, 2))
        totals = loads.sum(axis=0)
        for _ in range(20):
            loads = model.step(loads, rng)
        assert np.allclose(loads.sum(axis=0), totals)

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_variance_contracts(self, instance, name):
        graph = instance.graph
        model = make_averaging_model(name, graph)
        rng = np.random.default_rng(1)
        loads = np.zeros(graph.n)
        loads[0] = 1.0
        before = loads.var()
        for _ in range(30):
            loads = model.step(loads, rng)
        assert loads.var() < before

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_uniform_fixed_point(self, instance, name):
        graph = instance.graph
        model = make_averaging_model(name, graph)
        rng = np.random.default_rng(2)
        loads = np.full(graph.n, 2.0)
        for _ in range(5):
            loads = model.step(loads, rng)
        assert np.allclose(loads, 2.0)


class TestDiffusion:
    def test_delta_validation(self, instance):
        with pytest.raises(ValueError):
            DiffusionModel(instance.graph, delta=0.0)
        with pytest.raises(ValueError):
            DiffusionModel(instance.graph, delta=1.5)

    def test_one_step_matches_operator_on_regular_graph(self):
        # On a d-regular graph the Laplacian diffusion reduces to (1-δ)I + δP.
        from repro.graphs import connected_caveman

        graph = connected_caveman(3, 8).graph
        model = DiffusionModel(graph, delta=0.5)
        rng = np.random.default_rng(0)
        y = np.zeros(graph.n)
        y[3] = 1.0
        p = graph.random_walk_matrix(sparse=False)
        expected = 0.5 * y + 0.5 * (p @ y)
        assert np.allclose(model.step(y, rng), expected)

    def test_conserves_load_on_irregular_graph(self, instance):
        model = DiffusionModel(instance.graph, delta=0.8)
        rng = np.random.default_rng(1)
        loads = rng.random(instance.graph.n)
        total = loads.sum()
        for _ in range(10):
            loads = model.step(loads, rng)
        assert loads.sum() == pytest.approx(total)

    def test_communication_scales_with_edges(self, instance):
        model = DiffusionModel(instance.graph)
        assert model.communication_per_round(3) == 2 * instance.graph.num_edges * 3


class TestDimensionExchange:
    def test_colouring_is_proper(self, instance):
        model = DimensionExchangeModel(instance.graph)
        # each colour class is a matching: partner arrays are involutions
        for partner in model._matchings:
            matched = np.flatnonzero(partner >= 0)
            assert all(partner[partner[v]] == v for v in matched)

    def test_colour_count_at_most_2delta_minus_1(self, instance):
        model = DimensionExchangeModel(instance.graph)
        assert model.num_colours <= 2 * instance.graph.max_degree - 1

    def test_cycle_needs_at_most_three_colours(self):
        model = DimensionExchangeModel(cycle_graph(7))
        assert 2 <= model.num_colours <= 3


class TestMatchingModels:
    def test_random_matching_tracks_edge_count(self, instance):
        model = RandomMatchingModel(instance.graph)
        rng = np.random.default_rng(3)
        model.step(np.ones(instance.graph.n), rng)
        assert 0 <= model.last_matched_edges <= instance.graph.n // 2

    def test_maximal_matching_model(self, instance):
        model = MaximalMatchingModel(instance.graph)
        rng = np.random.default_rng(4)
        model.step(np.ones(instance.graph.n), rng)
        assert model.last_matched_edges > 0

    def test_communication_independent_of_density(self, instance):
        sparse_model = RandomMatchingModel(cycle_graph(instance.graph.n))
        dense_model = RandomMatchingModel(instance.graph)
        assert sparse_model.communication_per_round(5) == dense_model.communication_per_round(5)
