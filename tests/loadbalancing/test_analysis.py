"""Unit tests for the load-balancing diagnostics and lemma validators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cycle_of_cliques,
    spectral_decomposition,
    theoretical_round_count,
)
from repro.loadbalancing import (
    convergence_time,
    estimate_expected_projection_distance,
    is_doubly_stochastic,
    is_projection_matrix,
    lemma41_bound,
    projection_distance,
)


class TestMatrixPredicates:
    def test_identity_is_projection_and_stochastic(self):
        assert is_projection_matrix(np.eye(4))
        assert is_doubly_stochastic(np.eye(4))

    def test_rank_one_average_is_projection(self):
        m = np.full((4, 4), 0.25)
        assert is_projection_matrix(m)
        assert is_doubly_stochastic(m)

    def test_non_projection(self):
        assert not is_projection_matrix(0.5 * np.eye(3))

    def test_non_stochastic(self):
        assert not is_doubly_stochastic(np.array([[0.5, 0.4], [0.5, 0.6]]))
        assert not is_doubly_stochastic(np.array([[1.5, -0.5], [-0.5, 1.5]]))


class TestProjectionDistance:
    def test_zero_when_already_projected(self, four_clique_instance):
        graph = four_clique_instance.graph
        dec = spectral_decomposition(graph, num=4)
        q = dec.projection_matrix(4)
        y0 = np.ones(graph.n) / graph.n  # stationary vector is in the span of f_1
        assert projection_distance(q, y0, q @ y0) == pytest.approx(0.0, abs=1e-12)

    def test_bound_formula(self):
        q = np.eye(3)
        y0 = np.array([1.0, 0.0, 0.0])
        assert lemma41_bound(4, 0.75, q, y0) == pytest.approx(2 * np.sqrt(4 * 0.25))

    def test_bound_rejects_negative_t(self):
        with pytest.raises(ValueError):
            lemma41_bound(-1, 0.5, np.eye(2), np.ones(2))


class TestLemma41Estimate:
    def test_estimate_within_bound_on_well_clustered_graph(self):
        instance = cycle_of_cliques(3, 15, seed=0)
        graph = instance.graph
        y0 = np.zeros(graph.n)
        y0[0] = 1.0
        t = theoretical_round_count(graph, 3)
        estimate = estimate_expected_projection_distance(graph, y0, 3, t, trials=6, seed=1)
        assert estimate.within_bound
        assert estimate.mean_distance < 0.25
        assert estimate.trials == 6

    def test_distance_grows_for_large_t(self):
        """Remark 1: the error term increases once t is far beyond T."""
        instance = cycle_of_cliques(3, 15, seed=0)
        graph = instance.graph
        y0 = np.zeros(graph.n)
        y0[0] = 1.0
        t = theoretical_round_count(graph, 3)
        near = estimate_expected_projection_distance(graph, y0, 3, t, trials=5, seed=2)
        far = estimate_expected_projection_distance(graph, y0, 3, 40 * t, trials=5, seed=2)
        assert far.mean_distance > near.mean_distance

    def test_invalid_samples(self):
        from repro.loadbalancing import empirical_expected_matching_matrix

        with pytest.raises(ValueError):
            empirical_expected_matching_matrix(complete_graph(4), 0)


class TestConvergenceTime:
    def test_complete_graph_converges_fast(self):
        graph = complete_graph(16)
        y0 = np.zeros(16)
        y0[0] = 1.0
        t = convergence_time(graph, y0, tolerance=1e-2, seed=0)
        assert t < 400

    def test_clustered_graph_converges_slowly(self):
        """Global balancing takes much longer than the local time T on a
        well-clustered graph — the gap the algorithm exploits."""
        instance = cycle_of_cliques(3, 12, seed=0)
        graph = instance.graph
        y0 = np.zeros(graph.n)
        y0[0] = 1.0
        t_local = theoretical_round_count(graph, 3)
        t_global = convergence_time(graph, y0, tolerance=1e-3, max_rounds=20_000, seed=1)
        assert t_global > t_local
