"""Unit tests for the random matching protocol and matching matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import complete_graph, connected_caveman, cycle_graph, Graph
from repro.loadbalancing import (
    apply_matching,
    dbar,
    expected_matching_matrix,
    is_doubly_stochastic,
    is_projection_matrix,
    matching_matrix,
    matching_to_edge_list,
    sample_maximal_matching,
    sample_random_matching,
)


class TestDbar:
    def test_d_equals_one(self):
        assert dbar(1) == 1.0

    def test_monotone_decreasing_towards_limit(self):
        values = [dbar(d) for d in range(1, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] > np.exp(-0.5) - 0.01

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            dbar(0)


class TestSampleRandomMatching:
    def test_is_valid_matching(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        for _ in range(20):
            partner = sample_random_matching(graph, rng)
            matched = np.flatnonzero(partner >= 0)
            # involution
            assert all(partner[partner[v]] == v for v in matched)
            # no self matches
            assert all(partner[v] != v for v in matched)
            # matched pairs are edges of the graph
            for u, v in matching_to_edge_list(partner):
                assert graph.has_edge(int(u), int(v))

    def test_at_most_half_the_nodes_matched(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        for _ in range(10):
            partner = sample_random_matching(graph, rng)
            assert matching_to_edge_list(partner).shape[0] <= graph.n // 2

    def test_edge_inclusion_probability(self):
        # Lemma 2.1 proof: P[{u,v} in matching] = d̄/(2d) for a d-regular graph.
        graph = complete_graph(6)  # 5-regular
        rng = np.random.default_rng(0)
        target_edge = (0, 1)
        hits = 0
        trials = 8000
        for _ in range(trials):
            partner = sample_random_matching(graph, rng)
            if partner[target_edge[0]] == target_edge[1]:
                hits += 1
        expected = dbar(5) / (2 * 5)
        assert hits / trials == pytest.approx(expected, abs=0.01)

    def test_isolated_nodes_never_matched(self, rng):
        g = Graph(4, [(0, 1)])
        for _ in range(10):
            partner = sample_random_matching(g, rng)
            assert partner[2] == -1 and partner[3] == -1

    def test_self_loops_never_matched(self, rng):
        g = Graph(3, [(0, 1), (2, 2)])
        for _ in range(20):
            partner = sample_random_matching(g, rng)
            assert partner[2] == -1


class TestMaximalMatching:
    def test_maximality(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        partner = sample_maximal_matching(graph, rng)
        # no edge has both endpoints unmatched
        for u, v in graph.edges():
            if u != v:
                assert partner[u] >= 0 or partner[v] >= 0

    def test_is_valid_matching(self, four_clique_instance, rng):
        partner = sample_maximal_matching(four_clique_instance.graph, rng)
        matched = np.flatnonzero(partner >= 0)
        assert all(partner[partner[v]] == v for v in matched)

    def test_matches_more_than_random_protocol(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        random_sizes = [
            matching_to_edge_list(sample_random_matching(graph, rng)).shape[0] for _ in range(20)
        ]
        maximal_sizes = [
            matching_to_edge_list(sample_maximal_matching(graph, rng)).shape[0] for _ in range(20)
        ]
        assert np.mean(maximal_sizes) > np.mean(random_sizes)


class TestMatchingMatrix:
    def test_lemma21_projection_and_stochastic(self, caveman_instance, rng):
        graph = caveman_instance.graph
        for _ in range(10):
            partner = sample_random_matching(graph, rng)
            m = matching_matrix(graph.n, partner, sparse=False)
            assert is_projection_matrix(m)
            assert is_doubly_stochastic(m)

    def test_unmatched_identity(self):
        partner = np.full(4, -1, dtype=np.int64)
        m = matching_matrix(4, partner, sparse=False)
        assert np.array_equal(m, np.eye(4))

    def test_matched_pair_entries(self):
        partner = np.array([1, 0, -1], dtype=np.int64)
        m = matching_matrix(3, partner, sparse=False)
        assert m[0, 0] == m[1, 1] == m[0, 1] == m[1, 0] == 0.5
        assert m[2, 2] == 1.0

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            matching_matrix(3, np.array([0, 1]))

    def test_expected_matching_matrix_formula_regular(self):
        graph = connected_caveman(3, 8).graph  # 7-regular
        m = expected_matching_matrix(graph, sparse=False)
        d = 7
        p = graph.random_walk_matrix(sparse=False)
        expected = (1 - dbar(d) / 4) * np.eye(graph.n) + (dbar(d) / 4) * p
        assert np.allclose(m, expected)

    def test_expected_matching_matrix_monte_carlo(self):
        """Lemma 2.1(1): the closed form matches the protocol's empirical mean."""
        from repro.loadbalancing import empirical_expected_matching_matrix

        graph = connected_caveman(3, 6).graph
        empirical = empirical_expected_matching_matrix(graph, 4000, seed=0)
        theoretical = expected_matching_matrix(graph, sparse=False)
        assert np.abs(empirical - theoretical).max() < 0.03

    def test_expected_matching_matrix_irregular_stochastic(self, small_graph):
        m = expected_matching_matrix(small_graph, sparse=False)
        assert np.allclose(m.sum(axis=1), 1.0)
        assert np.all(m >= 0)

    def test_expected_matching_matrix_returns_plain_ndarray(self, small_graph):
        # Regression: the irregular branch used np.asarray(m.todense()),
        # which round-trips through the deprecated np.matrix type.
        for graph in (small_graph, connected_caveman(3, 8).graph):
            dense = expected_matching_matrix(graph, sparse=False)
            assert type(dense) is np.ndarray
            assert dense.ndim == 2


class TestApplyMatching:
    def test_averages_matched_pairs(self):
        partner = np.array([1, 0, -1], dtype=np.int64)
        loads = np.array([1.0, 0.0, 5.0])
        out = apply_matching(loads, partner)
        assert np.allclose(out, [0.5, 0.5, 5.0])

    def test_matrix_version_shares_matching(self):
        partner = np.array([2, -1, 0], dtype=np.int64)
        loads = np.array([[1.0, 4.0], [2.0, 2.0], [3.0, 0.0]])
        out = apply_matching(loads, partner)
        assert np.allclose(out[0], [2.0, 2.0])
        assert np.allclose(out[2], [2.0, 2.0])
        assert np.allclose(out[1], [2.0, 2.0])  # untouched row equals original

    def test_conserves_total_load(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        loads = rng.random((graph.n, 3))
        totals = loads.sum(axis=0)
        for _ in range(5):
            partner = sample_random_matching(graph, rng)
            loads = apply_matching(loads, partner)
        assert np.allclose(loads.sum(axis=0), totals)

    def test_does_not_modify_input(self):
        partner = np.array([1, 0], dtype=np.int64)
        loads = np.array([1.0, 0.0])
        apply_matching(loads, partner)
        assert np.array_equal(loads, [1.0, 0.0])

    def test_matches_matrix_multiplication(self, caveman_instance, rng):
        graph = caveman_instance.graph
        partner = sample_random_matching(graph, rng)
        loads = rng.random(graph.n)
        direct = apply_matching(loads, partner)
        via_matrix = matching_matrix(graph.n, partner, sparse=False) @ loads
        assert np.allclose(direct, via_matrix)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_matching(np.ones(3), np.array([-1, -1], dtype=np.int64))


class TestBlockedNeighbourGather:
    """Bit-identity of the blocked gather with the unblocked fancy-indexing
    gather, across the row-block geometries that have bitten before."""

    @staticmethod
    def _gather_both(graph, proposers, slots, block_size):
        from repro.loadbalancing.matching import _blocked_neighbour_gather

        indptr = graph.storage.indptr
        unblocked = graph.storage.indices_array()[indptr[proposers] + slots]
        blocked = _blocked_neighbour_gather(
            graph.storage, indptr, proposers, slots, block_size
        )
        return unblocked, blocked

    @pytest.fixture(scope="class")
    def graph(self):
        return connected_caveman(4, 6).graph

    def test_empty_proposer_set(self, graph):
        empty = np.empty(0, dtype=np.int64)
        unblocked, blocked = self._gather_both(graph, empty, empty, 3)
        assert blocked.shape == (0,)
        assert np.array_equal(unblocked, blocked)

    def test_single_row_blocks(self, graph):
        # block_size=1 makes every row its own block: the maximal number of
        # boundaries the position runs can straddle.
        proposers = np.arange(graph.n, dtype=np.int64)
        slots = np.zeros(graph.n, dtype=np.int64)
        unblocked, blocked = self._gather_both(graph, proposers, slots, 1)
        assert np.array_equal(unblocked, blocked)

    def test_block_boundaries_inside_proposer_runs(self, graph):
        # Block sizes that are not divisors of n put boundaries mid-run:
        # consecutive proposers' positions are then served by different
        # blocks, and the binary-searched split must hand each its own rows.
        rng = np.random.default_rng(5)
        degrees = graph.degrees
        proposers = np.flatnonzero(rng.random(graph.n) < 0.7).astype(np.int64)
        slots = rng.integers(0, degrees[proposers])
        for block_size in (1, 2, 3, 5, 7, graph.n, graph.n + 13):
            unblocked, blocked = self._gather_both(graph, proposers, slots, block_size)
            assert np.array_equal(unblocked, blocked), block_size

    def test_last_slot_of_each_row(self, graph):
        # The final arc of a row sits right against the next block's first
        # position — an off-by-one in the searchsorted bounds shows up here.
        proposers = np.arange(graph.n, dtype=np.int64)
        slots = graph.degrees[proposers] - 1
        for block_size in (1, 4, 9):
            unblocked, blocked = self._gather_both(graph, proposers, slots, block_size)
            assert np.array_equal(unblocked, blocked), block_size

    def test_degree_capped_sampler_bit_identical_when_blocked(self, graph):
        from repro.loadbalancing import sample_random_matching_fast

        cap = 2 * graph.max_degree
        for block_size in (1, 3, 16):
            a = sample_random_matching_fast(
                graph, np.random.default_rng(11), degree_cap=cap
            )
            b = sample_random_matching_fast(
                graph,
                np.random.default_rng(11),
                degree_cap=cap,
                block_size=block_size,
            )
            assert np.array_equal(a, b), block_size

    def test_uncapped_sampler_bit_identical_when_blocked(self, graph):
        from repro.loadbalancing import sample_random_matching_fast

        for block_size in (1, 5):
            a = sample_random_matching_fast(graph, np.random.default_rng(23))
            b = sample_random_matching_fast(
                graph, np.random.default_rng(23), block_size=block_size
            )
            assert np.array_equal(a, b), block_size


class TestStorageGuards:
    def test_expected_matching_matrix_rejects_mmap(self, tmp_path):
        from repro.graphs import MmapStorage, planted_partition

        g = planted_partition(40, 2, 0.4, 0.05, seed=2).graph
        indptr, indices = g.csr_arrays()
        MmapStorage.write(tmp_path / "g.csr", np.asarray(indptr), np.asarray(indices))
        mm = Graph.from_storage(MmapStorage(tmp_path / "g.csr"))
        # Bare refusal points at both escape hatches: max_bytes and the
        # streaming Monte-Carlo arm.
        with pytest.raises(ValueError, match="max_bytes"):
            expected_matching_matrix(mm)
        with pytest.raises(
            ValueError, match="empirical_expected_matching_matrix"
        ):
            expected_matching_matrix(mm)
        # an insufficient budget is rejected with the shortfall spelled out
        with pytest.raises(ValueError, match="raise the budget"):
            expected_matching_matrix(mm, max_bytes=1)
        expected = expected_matching_matrix(g, sparse=False)
        # an explicit sufficient budget overrides the guard
        overridden = expected_matching_matrix(
            mm, sparse=False, max_bytes=mm.storage.nbytes
        )
        assert np.allclose(overridden, expected)
        # the materialised twin is accepted and matches the dense original
        dense = Graph.from_storage(MmapStorage(tmp_path / "g.csr").materialize())
        assert np.allclose(expected_matching_matrix(dense, sparse=False), expected)
