"""Unit tests for the 1-D and multi-dimensional load balancing processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import complete_graph, cycle_of_cliques
from repro.loadbalancing import (
    LoadBalancingProcess,
    MultiDimensionalLoadBalancing,
    run_load_balancing,
    sample_maximal_matching,
)


class TestLoadBalancingProcess:
    def test_initial_state(self, four_clique_instance):
        y0 = np.zeros(four_clique_instance.graph.n)
        y0[0] = 1.0
        proc = LoadBalancingProcess(four_clique_instance.graph, y0, seed=0)
        assert proc.round == 0
        assert proc.total_load == 1.0
        assert np.array_equal(proc.load, y0)

    def test_wrong_shape_rejected(self, four_clique_instance):
        with pytest.raises(ValueError):
            LoadBalancingProcess(four_clique_instance.graph, np.ones(3), seed=0)

    def test_load_conservation(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        y0 = rng.random(graph.n)
        proc = LoadBalancingProcess(graph, y0, seed=1)
        proc.run(60)
        assert proc.total_load == pytest.approx(float(y0.sum()), rel=1e-12)

    def test_discrepancy_decreases(self):
        graph = complete_graph(20)
        y0 = np.zeros(20)
        y0[0] = 1.0
        proc = LoadBalancingProcess(graph, y0, seed=2)
        initial = proc.discrepancy()
        proc.run(200)
        assert proc.discrepancy() < 0.05 * initial

    def test_quadratic_potential_non_increasing(self, four_clique_instance):
        graph = four_clique_instance.graph
        y0 = np.zeros(graph.n)
        y0[0] = 1.0
        proc = LoadBalancingProcess(graph, y0, seed=3)
        potentials = [proc.quadratic_potential()]
        for _ in range(40):
            proc.step()
            potentials.append(proc.quadratic_potential())
        # averaging is a contraction: the potential never increases
        assert all(a >= b - 1e-12 for a, b in zip(potentials, potentials[1:]))

    def test_history_recording(self, four_clique_instance):
        graph = four_clique_instance.graph
        y0 = np.ones(graph.n)
        proc = LoadBalancingProcess(graph, y0, seed=4, keep_history=True)
        proc.run(5)
        assert proc.history is not None
        assert proc.history.as_array().shape == (6, graph.n)
        assert len(proc.history.matched_edges) == 5

    def test_custom_matching_sampler(self, four_clique_instance):
        graph = four_clique_instance.graph
        y0 = np.zeros(graph.n)
        y0[0] = 1.0
        proc = LoadBalancingProcess(
            graph, y0, seed=5, matching_sampler=sample_maximal_matching
        )
        proc.run(30)
        assert proc.total_load == pytest.approx(1.0)

    def test_determinism(self, four_clique_instance):
        graph = four_clique_instance.graph
        y0 = np.zeros(graph.n)
        y0[0] = 1.0
        a = LoadBalancingProcess(graph, y0, seed=7).run(20)
        b = LoadBalancingProcess(graph, y0, seed=7).run(20)
        assert np.array_equal(a, b)

    def test_uniform_vector_is_fixed_point(self, four_clique_instance):
        graph = four_clique_instance.graph
        y0 = np.full(graph.n, 3.5)
        proc = LoadBalancingProcess(graph, y0, seed=8)
        proc.run(10)
        assert np.allclose(proc.load, 3.5)


class TestMultiDimensional:
    def test_column_sums_conserved(self, four_clique_instance, rng):
        graph = four_clique_instance.graph
        x0 = rng.random((graph.n, 4))
        proc = MultiDimensionalLoadBalancing(graph, x0, seed=0)
        sums_before = proc.column_sums.copy()
        proc.run(50)
        assert np.allclose(proc.column_sums, sums_before)

    def test_shared_matching_across_dimensions(self, four_clique_instance):
        """Running s vectors together equals running them separately with the same seed."""
        graph = four_clique_instance.graph
        x0 = np.zeros((graph.n, 2))
        x0[0, 0] = 1.0
        x0[17, 1] = 1.0
        joint = MultiDimensionalLoadBalancing(graph, x0, seed=9).run(25)
        separate0 = LoadBalancingProcess(graph, x0[:, 0], seed=9).run(25)
        # the same seed gives the same matchings, so dimension 0 agrees exactly
        assert np.allclose(joint[:, 0], separate0)

    def test_loads_spread_within_cluster(self):
        from repro.graphs import theoretical_round_count

        instance = cycle_of_cliques(3, 20, seed=0)
        graph, truth = instance.graph, instance.partition
        seeds = [0, 20, 40]  # one node per clique
        x0 = np.zeros((graph.n, 3))
        for i, s in enumerate(seeds):
            x0[s, i] = 1.0
        rounds = theoretical_round_count(graph, truth.k)
        final = MultiDimensionalLoadBalancing(graph, x0, seed=1).run(rounds)
        for i, s in enumerate(seeds):
            cluster = truth.cluster(truth.label_of(s))
            inside = final[cluster, i].sum()
            assert inside > 0.85, "most of the load should still be inside the seed's cluster"
            assert final[cluster, i].std() < 0.02

    def test_matched_edges_recorded(self, four_clique_instance):
        graph = four_clique_instance.graph
        proc = MultiDimensionalLoadBalancing(graph, np.ones((graph.n, 1)), seed=2)
        proc.run(7)
        assert len(proc.matched_edges_per_round) == 7
        assert all(0 <= m <= graph.n // 2 for m in proc.matched_edges_per_round)

    def test_invalid_shapes(self, four_clique_instance):
        graph = four_clique_instance.graph
        with pytest.raises(ValueError):
            MultiDimensionalLoadBalancing(graph, np.ones(graph.n), seed=0)
        with pytest.raises(ValueError):
            MultiDimensionalLoadBalancing(graph, np.ones((graph.n + 1, 2)), seed=0)


class TestRunLoadBalancing:
    def test_dispatch_1d(self, four_clique_instance):
        graph = four_clique_instance.graph
        out = run_load_balancing(graph, np.ones(graph.n), 5, seed=0)
        assert out.shape == (graph.n,)

    def test_dispatch_2d(self, four_clique_instance):
        graph = four_clique_instance.graph
        out = run_load_balancing(graph, np.ones((graph.n, 3)), 5, seed=0)
        assert out.shape == (graph.n, 3)
