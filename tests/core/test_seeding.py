"""Unit tests for the seeding procedure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, assign_seed_identifiers, sample_seeds, seed_load_matrix


def _params(n=200, beta=0.25):
    return AlgorithmParameters.from_values(n=n, beta=beta, rounds=10)


class TestSampleSeeds:
    def test_expected_number_of_seeds(self):
        params = _params(n=500, beta=0.25)
        rng = np.random.default_rng(0)
        counts = [sample_seeds(params, rng).size for _ in range(300)]
        # E[s] is slightly below s̄ (inclusion-exclusion); allow a 20% band.
        assert np.mean(counts) == pytest.approx(params.num_seeding_trials, rel=0.2)

    def test_every_cluster_hit_with_good_probability(self, four_clique_instance):
        """The proof's coverage argument: each cluster of size ≥ βn gets a seed
        with probability ≥ 1 - e^{-3} per cluster."""
        truth = four_clique_instance.partition
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, truth
        )
        rng = np.random.default_rng(1)
        trials = 200
        all_covered = 0
        for _ in range(trials):
            seeds = sample_seeds(params, rng)
            labels = set(truth.labels[seeds].tolist())
            if len(labels) == truth.k:
                all_covered += 1
        # union bound over 4 clusters: success probability ≥ 1 - 4e^{-3} ≈ 0.80
        assert all_covered / trials > 0.75

    def test_deterministic_given_rng_state(self):
        params = _params()
        a = sample_seeds(params, np.random.default_rng(5))
        b = sample_seeds(params, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_seeds_sorted_and_unique(self):
        params = _params()
        seeds = sample_seeds(params, np.random.default_rng(2))
        assert np.array_equal(seeds, np.unique(seeds))


class TestSeedIdentifiers:
    def test_identifiers_distinct_and_in_range(self):
        params = _params(n=100)
        seeds = np.arange(10)
        ids = assign_seed_identifiers(seeds, params, np.random.default_rng(3))
        assert ids.size == 10
        assert np.unique(ids).size == 10
        assert ids.min() >= 1 and ids.max() <= params.id_space

    def test_empty_seed_set(self):
        params = _params()
        ids = assign_seed_identifiers(np.empty(0, dtype=np.int64), params, np.random.default_rng(0))
        assert ids.size == 0

    def test_tiny_id_space_still_distinct(self):
        params = AlgorithmParameters.from_values(n=50, beta=0.5, rounds=5, id_space=10)
        ids = assign_seed_identifiers(np.arange(5), params, np.random.default_rng(1))
        assert np.unique(ids).size == 5


class TestSeedLoadMatrix:
    def test_columns_are_indicator_vectors(self):
        x0 = seed_load_matrix(6, np.array([1, 4]))
        assert x0.shape == (6, 2)
        assert x0[1, 0] == 1.0 and x0[4, 1] == 1.0
        assert x0.sum() == 2.0

    def test_no_seeds(self):
        x0 = seed_load_matrix(5, np.empty(0, dtype=np.int64))
        assert x0.shape == (5, 0)
