"""Unit tests for the ClusteringResult container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, ClusteringResult
from repro.graphs import Partition


def _make_result(labels, truth_n=6):
    labels = np.asarray(labels)
    return ClusteringResult(
        labels=labels,
        partition=Partition.from_labels(np.where(labels < 0, labels.max() + 1, labels)),
        seeds=np.array([0, 3]),
        seed_ids=np.array([11, 22]),
        rounds=5,
        parameters=AlgorithmParameters.from_values(n=truth_n, beta=0.5, rounds=5),
        unlabelled=labels < 0,
    )


class TestClusteringResult:
    def test_basic_properties(self):
        result = _make_result([11, 11, 11, 22, 22, 22])
        assert result.num_seeds == 2
        assert result.num_clusters_found == 2
        assert result.num_unlabelled == 0

    def test_error_against_truth(self):
        result = _make_result([11, 11, 11, 22, 22, 22])
        truth = Partition.from_labels([0, 0, 0, 1, 1, 1])
        assert result.misclassified_against(truth) == 0
        assert result.error_against(truth) == 0.0

        flipped = Partition.from_labels([0, 0, 1, 1, 1, 1])
        assert result.misclassified_against(flipped) == 1

    def test_unlabelled_counting(self):
        result = _make_result([11, -1, 11, 22, -1, 22])
        assert result.num_unlabelled == 2

    def test_total_words_without_communication(self):
        result = _make_result([11] * 6)
        assert result.total_words() == 0

    def test_summary_keys(self):
        summary = _make_result([11] * 6).summary()
        for key in ("n", "rounds", "num_seeds", "num_clusters_found", "num_unlabelled"):
            assert key in summary
