"""Unit tests for algorithm parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, query_threshold, round_count, seeding_trials


class TestHelpers:
    def test_seeding_trials_paper_formula(self):
        beta = 0.25
        assert seeding_trials(beta) == int(np.ceil((3 / beta) * np.log(1 / beta)))

    def test_seeding_trials_beta_one(self):
        assert seeding_trials(1.0) == 1

    def test_seeding_trials_invalid(self):
        with pytest.raises(ValueError):
            seeding_trials(0.0)
        with pytest.raises(ValueError):
            seeding_trials(1.5)

    def test_query_threshold_formula(self):
        assert query_threshold(0.5, 100) == pytest.approx(1.0 / (np.sqrt(1.0) * 100))
        assert query_threshold(0.125, 200) == pytest.approx(1.0 / (np.sqrt(0.25) * 200))

    def test_query_threshold_invalid(self):
        with pytest.raises(ValueError):
            query_threshold(0.0, 10)
        with pytest.raises(ValueError):
            query_threshold(0.5, 0)

    def test_round_count(self):
        assert round_count(100, 0.5, constant=2.0) == int(np.ceil(2 * np.log(100) / 0.5))
        assert round_count(2, 1.0) >= 1

    def test_round_count_requires_positive_gap(self):
        with pytest.raises(ValueError):
            round_count(100, 0.0)


class TestAlgorithmParameters:
    def test_from_values_defaults(self):
        params = AlgorithmParameters.from_values(n=100, beta=0.25, rounds=50)
        assert params.num_seeding_trials == seeding_trials(0.25)
        assert params.activation_probability == pytest.approx(0.01)
        assert params.threshold == pytest.approx(query_threshold(0.25, 100))
        assert params.id_space == 100 ** 3
        assert params.expected_seeds == pytest.approx(params.num_seeding_trials)

    def test_from_values_overrides(self):
        params = AlgorithmParameters.from_values(
            n=50, beta=0.5, rounds=10, num_seeding_trials=7, threshold=0.03, id_space=999
        )
        assert params.num_seeding_trials == 7
        assert params.threshold == 0.03
        assert params.id_space == 999

    def test_from_values_validation(self):
        with pytest.raises(ValueError):
            AlgorithmParameters.from_values(n=0, beta=0.5, rounds=5)
        with pytest.raises(ValueError):
            AlgorithmParameters.from_values(n=10, beta=0.0, rounds=5)
        with pytest.raises(ValueError):
            AlgorithmParameters.from_values(n=10, beta=0.5, rounds=-1)

    def test_from_graph_uses_spectrum(self, four_clique_instance):
        graph = four_clique_instance.graph
        params = AlgorithmParameters.from_graph(graph, 4)
        assert params.n == graph.n
        assert params.beta == pytest.approx(1 / 8)
        assert params.rounds > 0

    def test_from_instance_uses_true_balance(self, four_clique_instance):
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        )
        assert params.beta == pytest.approx(0.25)

    def test_round_constant_scales_T(self, four_clique_instance):
        graph, truth = four_clique_instance.graph, four_clique_instance.partition
        small = AlgorithmParameters.from_instance(graph, truth, round_constant=4.0)
        large = AlgorithmParameters.from_instance(graph, truth, round_constant=16.0)
        assert large.rounds == pytest.approx(4 * small.rounds, abs=4)

    def test_with_methods_return_new_objects(self):
        params = AlgorithmParameters.from_values(n=100, beta=0.25, rounds=50)
        changed = params.with_rounds(10).with_threshold(0.5).with_seeding_trials(3)
        assert changed.rounds == 10
        assert changed.threshold == 0.5
        assert changed.num_seeding_trials == 3
        # original untouched (frozen dataclass semantics)
        assert params.rounds == 50

    def test_as_dict_round_trip(self):
        params = AlgorithmParameters.from_values(n=64, beta=0.25, rounds=12)
        d = params.as_dict()
        rebuilt = AlgorithmParameters.from_values(
            n=d["n"],
            beta=d["beta"],
            rounds=d["rounds"],
            num_seeding_trials=d["num_seeding_trials"],
            activation_probability=d["activation_probability"],
            threshold=d["threshold"],
            id_space=d["id_space"],
        )
        assert rebuilt == params

    def test_graph_size_mismatch_detected_by_engines(self, four_clique_instance):
        from repro.core import CentralizedClustering, DistributedClustering

        params = AlgorithmParameters.from_values(n=10, beta=0.5, rounds=5)
        with pytest.raises(ValueError):
            CentralizedClustering(four_clique_instance.graph, params)
        with pytest.raises(ValueError):
            DistributedClustering(four_clique_instance.graph, params)
