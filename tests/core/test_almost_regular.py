"""Unit tests for the Section 4.5 almost-regular extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AlgorithmParameters,
    AlmostRegularClustering,
    sample_degree_capped_matching,
)
from repro.graphs import almost_regular_clustered_graph, connected_caveman
from repro.loadbalancing import matching_to_edge_list, sample_random_matching


@pytest.fixture(scope="module")
def almost_regular_instance():
    return almost_regular_clustered_graph(3, 30, 6, 10, seed=0)


class TestDegreeCappedMatching:
    def test_valid_matching(self, almost_regular_instance, rng):
        graph = almost_regular_instance.graph
        cap = graph.max_degree
        for _ in range(10):
            partner = sample_degree_capped_matching(graph, cap, rng)
            matched = np.flatnonzero(partner >= 0)
            assert all(partner[partner[v]] == v for v in matched)
            for u, v in matching_to_edge_list(partner):
                assert graph.has_edge(int(u), int(v))

    def test_cap_below_max_degree_rejected(self, almost_regular_instance, rng):
        graph = almost_regular_instance.graph
        with pytest.raises(ValueError):
            sample_degree_capped_matching(graph, graph.max_degree - 1, rng)

    def test_reduces_to_standard_protocol_statistics_on_regular_graph(self):
        """With D = d on a d-regular graph the capped protocol has the same
        per-edge inclusion probability as the standard protocol."""
        graph = connected_caveman(3, 8).graph  # 7-regular
        rng = np.random.default_rng(0)
        trials = 4000
        capped_hits = sum(
            sample_degree_capped_matching(graph, 7, rng)[0] >= 0 for _ in range(trials)
        )
        standard_hits = sum(
            sample_random_matching(graph, rng)[0] >= 0 for _ in range(trials)
        )
        assert capped_hits / trials == pytest.approx(standard_hits / trials, abs=0.05)

    def test_higher_cap_matches_fewer_nodes(self, almost_regular_instance, rng):
        graph = almost_regular_instance.graph
        trials = 300
        def mean_matched(cap):
            total = 0
            for _ in range(trials):
                partner = sample_degree_capped_matching(graph, cap, rng)
                total += int((partner >= 0).sum())
            return total / trials

        assert mean_matched(3 * graph.max_degree) < mean_matched(graph.max_degree)


class TestAlmostRegularClustering:
    def test_recovers_clusters(self, almost_regular_instance):
        params = AlgorithmParameters.from_instance(
            almost_regular_instance.graph, almost_regular_instance.partition
        )
        result = AlmostRegularClustering(
            almost_regular_instance.graph, params, seed=1
        ).run(keep_loads=False)
        assert result.error_against(almost_regular_instance.partition) <= 0.10
        assert result.diagnostics["degree_cap"] == almost_regular_instance.graph.max_degree

    def test_explicit_degree_cap(self, almost_regular_instance):
        params = AlgorithmParameters.from_instance(
            almost_regular_instance.graph, almost_regular_instance.partition
        )
        cap = almost_regular_instance.graph.max_degree + 2
        engine = AlmostRegularClustering(
            almost_regular_instance.graph, params, degree_cap=cap, seed=2
        )
        assert engine.degree_cap == cap
        result = engine.run(keep_loads=False)
        assert result.error_against(almost_regular_instance.partition) <= 0.15

    def test_cap_below_max_degree_rejected(self, almost_regular_instance):
        params = AlgorithmParameters.from_instance(
            almost_regular_instance.graph, almost_regular_instance.partition
        )
        with pytest.raises(ValueError):
            AlmostRegularClustering(
                almost_regular_instance.graph,
                params,
                degree_cap=almost_regular_instance.graph.max_degree - 1,
            )
