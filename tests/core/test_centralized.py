"""Unit tests for the centralised implementation of the algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, CentralizedClustering, cluster_graph
from repro.graphs import cycle_of_cliques, misclassification_rate
from repro.loadbalancing import make_averaging_model


class TestCentralizedClustering:
    def test_recovers_clique_clusters(self, four_clique_instance, four_clique_parameters):
        result = CentralizedClustering(
            four_clique_instance.graph, four_clique_parameters, seed=0
        ).run()
        assert result.error_against(four_clique_instance.partition) <= 0.05
        assert result.num_clusters_found == 4

    def test_recovers_two_clusters(self, two_clique_instance):
        params = AlgorithmParameters.from_instance(
            two_clique_instance.graph, two_clique_instance.partition
        )
        result = CentralizedClustering(two_clique_instance.graph, params, seed=1).run()
        assert result.error_against(two_clique_instance.partition) <= 0.05

    def test_recovers_expander_clusters(self, expander_instance):
        params = AlgorithmParameters.from_instance(
            expander_instance.graph, expander_instance.partition
        )
        result = CentralizedClustering(expander_instance.graph, params, seed=2).run()
        assert result.error_against(expander_instance.partition) <= 0.10

    def test_deterministic_given_seed(self, four_clique_instance, four_clique_parameters):
        a = CentralizedClustering(four_clique_instance.graph, four_clique_parameters, seed=3).run()
        b = CentralizedClustering(four_clique_instance.graph, four_clique_parameters, seed=3).run()
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.seeds, b.seeds)

    def test_result_fields_consistent(self, four_clique_instance, four_clique_parameters):
        result = CentralizedClustering(
            four_clique_instance.graph, four_clique_parameters, seed=4
        ).run()
        n = four_clique_instance.graph.n
        assert result.labels.shape == (n,)
        assert result.loads.shape == (n, result.num_seeds)
        assert result.seed_ids.shape == (result.num_seeds,)
        assert result.rounds == four_clique_parameters.rounds
        assert result.partition.n == n
        # every label is one of the seed identifiers (argmax fallback)
        assert set(result.labels.tolist()) <= set(result.seed_ids.tolist())

    def test_load_conservation_per_seed(self, four_clique_instance, four_clique_parameters):
        result = CentralizedClustering(
            four_clique_instance.graph, four_clique_parameters, seed=5
        ).run()
        # each seed vector started with total load exactly 1
        assert np.allclose(result.loads.sum(axis=0), 1.0)

    def test_keep_loads_false(self, four_clique_instance, four_clique_parameters):
        result = CentralizedClustering(
            four_clique_instance.graph, four_clique_parameters, seed=6
        ).run(keep_loads=False)
        assert result.loads is None

    def test_round_callback(self, four_clique_instance, four_clique_parameters):
        seen = []
        CentralizedClustering(four_clique_instance.graph, four_clique_parameters, seed=7).run(
            round_callback=lambda t, loads: seen.append((t, loads.shape))
        )
        assert len(seen) == four_clique_parameters.rounds
        assert seen[0][0] == 0

    def test_zero_rounds_keeps_seed_loads(self, four_clique_instance, four_clique_parameters):
        params = four_clique_parameters.with_rounds(0)
        result = CentralizedClustering(four_clique_instance.graph, params, seed=8).run()
        # without averaging only the seeds themselves carry load
        assert np.allclose(result.loads.sum(axis=0), 1.0)
        assert result.rounds == 0

    def test_no_seeds_degenerate_case(self, four_clique_instance):
        # activation probability 0 => no node ever becomes active
        params = AlgorithmParameters.from_values(
            n=four_clique_instance.graph.n, beta=0.25, rounds=5, activation_probability=0.0
        )
        result = CentralizedClustering(four_clique_instance.graph, params, seed=9).run()
        assert result.num_seeds == 0
        assert result.num_unlabelled == four_clique_instance.graph.n
        assert result.partition.k == 1

    def test_fallback_none_marks_unlabelled(self, four_clique_instance):
        # absurdly high threshold: nobody qualifies, fallback "none" keeps -1
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        ).with_threshold(10.0)
        result = CentralizedClustering(
            four_clique_instance.graph, params, seed=10, fallback="none"
        ).run()
        assert result.num_unlabelled == four_clique_instance.graph.n
        assert np.all(result.labels == -1)

    def test_custom_averaging_model(self, four_clique_instance, four_clique_parameters):
        model = make_averaging_model("diffusion", four_clique_instance.graph)
        result = CentralizedClustering(
            four_clique_instance.graph, four_clique_parameters, seed=11, averaging_model=model
        ).run()
        assert result.error_against(four_clique_instance.partition) <= 0.05


class TestClusterGraphAPI:
    def test_one_call_api(self, four_clique_instance):
        result = cluster_graph(four_clique_instance.graph, k=4, seed=12)
        assert result.error_against(four_clique_instance.partition) <= 0.10

    def test_rounds_override(self, four_clique_instance):
        result = cluster_graph(four_clique_instance.graph, k=4, rounds=3, seed=13)
        assert result.rounds == 3

    def test_beta_override(self, four_clique_instance):
        result = cluster_graph(four_clique_instance.graph, k=4, beta=0.25, seed=14)
        assert result.parameters.beta == 0.25

    def test_misclassification_via_module_function(self, four_clique_instance):
        result = cluster_graph(four_clique_instance.graph, k=4, seed=15)
        assert misclassification_rate(
            result.partition, four_clique_instance.partition
        ) == result.error_against(four_clique_instance.partition)
