"""Unit tests for the structure-theory module (Lemma 4.2, good nodes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    alpha_values,
    error_bound_E,
    good_node_threshold,
    good_nodes_mask,
    structure_theory_report,
    structure_vectors,
)
from repro.graphs import planted_partition, spectral_decomposition


class TestStructureVectors:
    def test_chi_hat_orthonormal(self, four_clique_instance):
        _, chi_hat = structure_vectors(
            four_clique_instance.graph, four_clique_instance.partition
        )
        gram = chi_hat.T @ chi_hat
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_chi_hat_in_span_of_indicators(self, four_clique_instance):
        truth = four_clique_instance.partition
        _, chi_hat = structure_vectors(four_clique_instance.graph, truth)
        # each χ̂_i must be constant on every cluster
        for i in range(truth.k):
            for c in range(truth.k):
                values = chi_hat[truth.cluster(c), i]
                assert values.std() < 1e-9

    def test_chi_hat_close_to_eigenvectors_on_well_clustered_graph(self, four_clique_instance):
        graph, truth = four_clique_instance.graph, four_clique_instance.partition
        dec = spectral_decomposition(graph, num=truth.k)
        _, chi_hat = structure_vectors(graph, truth)
        distances = np.linalg.norm(chi_hat - dec.top_k(truth.k), axis=0)
        assert distances.max() < 0.2

    def test_chi_tilde_is_projection_of_eigenvectors(self, four_clique_instance):
        graph, truth = four_clique_instance.graph, four_clique_instance.partition
        chi_tilde, _ = structure_vectors(graph, truth)
        # the projection cannot be longer than the original unit eigenvector
        norms = np.linalg.norm(chi_tilde, axis=0)
        assert np.all(norms <= 1.0 + 1e-9)


class TestAlphaAndGoodNodes:
    def test_alpha_nonnegative_and_sums_to_total_error(self, four_clique_instance):
        graph, truth = four_clique_instance.graph, four_clique_instance.partition
        alphas = alpha_values(graph, truth)
        assert np.all(alphas >= 0)
        dec = spectral_decomposition(graph, num=truth.k)
        _, chi_hat = structure_vectors(graph, truth)
        total = np.sum((dec.top_k(truth.k) - chi_hat) ** 2)
        assert np.sum(alphas ** 2) == pytest.approx(total)

    def test_most_nodes_good_on_well_clustered_graph(self, four_clique_instance):
        mask = good_nodes_mask(four_clique_instance.graph, four_clique_instance.partition)
        assert mask.mean() > 0.9

    def test_good_node_threshold_monotone_in_upsilon(self):
        lo = good_node_threshold(100, 3, 0.3, upsilon=10)
        hi = good_node_threshold(100, 3, 0.3, upsilon=1000)
        assert hi < lo  # larger gap => smaller E => tighter cutoff

    def test_error_bound_E(self):
        assert error_bound_E(3, 300.0) == pytest.approx(3 * np.sqrt(3 / 300.0))
        assert error_bound_E(3, 0.0) == float("inf")


class TestStructureTheoryReport:
    def test_report_on_well_clustered_graph(self, four_clique_instance):
        report = structure_theory_report(
            four_clique_instance.graph, four_clique_instance.partition
        )
        assert report.lemma42_holds
        assert report.num_good_nodes + report.num_bad_nodes == four_clique_instance.graph.n
        d = report.as_dict()
        assert d["upsilon"] > 10
        assert d["error_bound_E"] > 0

    def test_report_degrades_for_weak_structure(self):
        weak = planted_partition(90, 3, 0.25, 0.15, seed=0, ensure_connected=True)
        strong_report = structure_theory_report(
            planted_partition(90, 3, 0.4, 0.01, seed=1, ensure_connected=True).graph,
            planted_partition(90, 3, 0.4, 0.01, seed=1, ensure_connected=True).partition,
        )
        weak_report = structure_theory_report(weak.graph, weak.partition)
        assert weak_report.upsilon < strong_report.upsilon
        assert weak_report.max_eigenvector_distance > strong_report.max_eigenvector_distance
