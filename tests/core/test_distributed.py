"""Unit tests for the message-passing implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters, DistributedClustering
from repro.distsim import MessageDropFailures
from repro.graphs import cycle_of_cliques


@pytest.fixture(scope="module")
def small_instance():
    return cycle_of_cliques(3, 12, seed=0)


@pytest.fixture(scope="module")
def small_params(small_instance):
    return AlgorithmParameters.from_instance(small_instance.graph, small_instance.partition)


@pytest.fixture(scope="module")
def distributed_result(small_instance, small_params):
    return DistributedClustering(small_instance.graph, small_params, seed=1).run()


class TestDistributedClustering:
    def test_recovers_clusters(self, small_instance, distributed_result):
        assert distributed_result.error_against(small_instance.partition) <= 0.10

    def test_rounds_executed(self, small_params, distributed_result):
        assert distributed_result.rounds == small_params.rounds

    def test_communication_recorded(self, distributed_result, small_params, small_instance):
        comm = distributed_result.communication
        assert comm is not None
        assert comm.num_rounds == small_params.rounds
        assert comm.total_words > 0
        assert distributed_result.total_words() == comm.total_words

    def test_message_complexity_within_bound(self, distributed_result, small_instance, small_params):
        k = small_instance.partition.k
        bound = small_params.rounds * small_instance.graph.n * k * max(np.log2(k), 1)
        assert distributed_result.total_words() <= bound

    def test_matched_edges_bounded_by_half_n(self, distributed_result, small_instance):
        matched = distributed_result.diagnostics["matched_edges_per_round"]
        assert len(matched) == distributed_result.rounds
        assert max(matched) <= small_instance.graph.n // 2

    def test_loads_reconstruction_consistent(self, distributed_result, small_instance):
        loads = distributed_result.loads
        assert loads.shape == (small_instance.graph.n, distributed_result.num_seeds)
        # each seed's total load stays 1 (conservation through message exchange)
        assert np.allclose(loads.sum(axis=0), 1.0, atol=1e-9)

    def test_seed_ids_match_seed_nodes(self, distributed_result):
        assert distributed_result.seeds.shape == distributed_result.seed_ids.shape
        assert np.unique(distributed_result.seed_ids).size == distributed_result.num_seeds

    def test_determinism(self, small_instance, small_params):
        a = DistributedClustering(small_instance.graph, small_params, seed=7).run()
        b = DistributedClustering(small_instance.graph, small_params, seed=7).run()
        assert np.array_equal(a.labels, b.labels)
        assert a.total_words() == b.total_words()

    def test_different_seeds_differ(self, small_instance, small_params):
        a = DistributedClustering(small_instance.graph, small_params, seed=1).run()
        b = DistributedClustering(small_instance.graph, small_params, seed=2).run()
        assert not np.array_equal(a.seeds, b.seeds) or not np.array_equal(a.labels, b.labels)

    def test_message_kinds(self, distributed_result):
        kinds = distributed_result.communication.words_by_kind()
        assert set(kinds) <= {"propose", "accept", "commit"}
        # every accepted proposal generates exactly one commit
        assert kinds.get("accept", 0) == kinds.get("commit", 0)
        assert kinds.get("propose", 0) >= kinds.get("accept", 0)

    def test_with_message_drops_still_terminates(self, small_instance, small_params):
        result = DistributedClustering(
            small_instance.graph,
            small_params,
            seed=3,
            failures=MessageDropFailures(drop_probability=0.2),
        ).run()
        assert result.rounds == small_params.rounds
        # accuracy degrades gracefully rather than collapsing
        assert result.error_against(small_instance.partition) <= 0.5

    def test_degree_cap_option(self, small_instance, small_params):
        result = DistributedClustering(
            small_instance.graph,
            small_params,
            seed=4,
            degree_cap=small_instance.graph.max_degree,
        ).run()
        assert result.error_against(small_instance.partition) <= 0.15
