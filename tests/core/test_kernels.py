"""Unit tests for the counter-based RNG and the fused parallel kernels.

The determinism contract of the ``parallel`` backend lives here: the
counter-based stream is pinned to hardcoded values (any change to the mixing
constants or the float conversion is a breaking change to every seeded
experiment on that backend), the reference round is held to the three-step
protocol, and the numba kernels — when numba is installed — must agree with
the reference path bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._accel import HAVE_NUMBA
from repro.core.kernels import (
    STREAM_ACTIVITY,
    STREAM_SLOT,
    ParallelMatchingKernel,
    counter_uniforms,
    matching_round_reference,
    mix64,
    stream_key,
)
from repro.graphs import cycle_of_cliques, ring_of_expanders
from repro.loadbalancing import apply_matching, count_matched_edges


@pytest.fixture(scope="module")
def instance():
    return cycle_of_cliques(4, 12, seed=9)


def _csr(graph):
    storage = graph.storage.materialize()
    return storage.indptr, storage.indices_array(), graph.degrees


class TestCounterRNG:
    def test_mix64_pinned(self):
        # splitmix64 finaliser: changing any constant or shift breaks these.
        assert mix64(0) == 0x0
        assert mix64(1) == 0x5692161D100B05E5
        assert mix64(0x123456789ABCDEF) == 0xB2C058E4EBB5112C
        assert mix64((1 << 64) - 1) == 0xB4D055FCF2CBBD7B

    def test_mix64_wraps_to_64_bits(self):
        assert mix64(1 << 64) == mix64(0)
        assert 0 <= mix64(987654321) < 1 << 64

    def test_stream_key_pinned(self):
        assert stream_key(0, 0, STREAM_ACTIVITY) == 0x33FE8BD4F9C57863
        assert stream_key(0, 0, STREAM_SLOT) == 0x903816F0EB83C47F
        assert stream_key(123, 7, 1) == 0x1909DBADFC58CEAA

    def test_stream_key_separates_inputs(self):
        keys = {
            stream_key(seed, rnd, stream)
            for seed in range(4)
            for rnd in range(4)
            for stream in (STREAM_ACTIVITY, STREAM_SLOT)
        }
        assert len(keys) == 4 * 4 * 2

    def test_counter_uniforms_pinned(self):
        # Exact float64 values: the conversion is (hash >> 11) * 2^-53, so
        # equality must be bitwise, not approximate.
        u = counter_uniforms(stream_key(42, 3, STREAM_ACTIVITY), 5)
        expected = np.array(
            [
                0.4847417848811997,
                0.6713887708069676,
                0.23568651794076245,
                0.8582148811067032,
                0.5652642446716056,
            ]
        )
        assert u.dtype == np.float64
        assert np.array_equal(u, expected)

    def test_counter_uniforms_matches_scalar_mix(self):
        # The array path must perform the same integer mixing as a scalar
        # evaluation of mix64(key + (v+1)·γ) — this is the equivalence that
        # makes the numba kernels (scalar code) bit-identical by construction.
        key = stream_key(7, 11, STREAM_SLOT)
        n = 257
        u = counter_uniforms(key, n)
        gamma = 0x9E3779B97F4A7C15
        mask = (1 << 64) - 1
        for v in range(0, n, 13):
            x = (key + (v + 1) * gamma) & mask
            x ^= x >> 30
            x = (x * 0xBF58476D1CE4E5B9) & mask
            x ^= x >> 27
            x = (x * 0x94D049BB133111EB) & mask
            x ^= x >> 31
            assert u[v] == (x >> 11) * 2.0**-53

    def test_counter_uniforms_unit_interval_and_mean(self):
        u = counter_uniforms(stream_key(1, 0, 0), 20_000)
        assert np.all((0.0 <= u) & (u < 1.0))
        assert abs(float(u.mean()) - 0.5) < 0.02


class TestMatchingRoundReference:
    def test_valid_matching_on_edges(self, instance):
        graph = instance.graph
        indptr, indices, degrees = _csr(graph)
        for t in range(10):
            partner = matching_round_reference(
                indptr,
                indices,
                degrees,
                stream_key(3, t, STREAM_ACTIVITY),
                stream_key(3, t, STREAM_SLOT),
            )
            matched = np.flatnonzero(partner >= 0)
            assert np.array_equal(partner[partner[matched]], matched)
            for v in matched[:20]:
                assert graph.has_edge(int(v), int(partner[v]))

    def test_deterministic(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        args = (
            stream_key(5, 2, STREAM_ACTIVITY),
            stream_key(5, 2, STREAM_SLOT),
        )
        a = matching_round_reference(indptr, indices, degrees, *args)
        b = matching_round_reference(indptr, indices, degrees, *args)
        assert np.array_equal(a, b)

    def test_rounds_differ(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        rounds = [
            matching_round_reference(
                indptr,
                indices,
                degrees,
                stream_key(5, t, STREAM_ACTIVITY),
                stream_key(5, t, STREAM_SLOT),
            )
            for t in range(4)
        ]
        assert any(not np.array_equal(rounds[0], r) for r in rounds[1:])

    def test_degree_cap_thins_matchings(self):
        instance = ring_of_expanders(4, 16, 6, seed=2)
        indptr, indices, degrees = _csr(instance.graph)
        cap = 4 * instance.graph.max_degree
        uncapped = 0
        capped = 0
        for t in range(60):
            keys = (
                stream_key(11, t, STREAM_ACTIVITY),
                stream_key(11, t, STREAM_SLOT),
            )
            uncapped += count_matched_edges(
                matching_round_reference(indptr, indices, degrees, *keys)
            )
            capped += count_matched_edges(
                matching_round_reference(indptr, indices, degrees, *keys, cap)
            )
        # With D = 4·max_degree most virtual slots are self-loops, so far
        # fewer proposals survive.
        assert 0 < capped < uncapped

    def test_matched_pairs_are_active_nonactive(self, instance):
        # Step 3 of the protocol: a matched pair is one active proposer and
        # one non-active target.
        indptr, indices, degrees = _csr(instance.graph)
        key_active = stream_key(17, 0, STREAM_ACTIVITY)
        key_slot = stream_key(17, 0, STREAM_SLOT)
        partner = matching_round_reference(
            indptr, indices, degrees, key_active, key_slot
        )
        active = counter_uniforms(key_active, instance.graph.n) < 0.5
        for v in np.flatnonzero(partner >= 0):
            assert active[int(v)] != active[int(partner[v])]


class TestParallelMatchingKernel:
    def test_invalid_use_numba_rejected(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        with pytest.raises(ValueError, match="use_numba"):
            ParallelMatchingKernel(
                indptr, indices, degrees, seed=1, use_numba="yes"
            )

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_use_numba_true_requires_numba(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        with pytest.raises(ValueError, match="numba is not installed"):
            ParallelMatchingKernel(
                indptr, indices, degrees, seed=1, use_numba=True
            )

    def test_repeat_rounds_bit_identical(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        a = ParallelMatchingKernel(indptr, indices, degrees, seed=33)
        b = ParallelMatchingKernel(indptr, indices, degrees, seed=33)
        for t in range(5):
            assert np.array_equal(a.round(t).copy(), b.round(t).copy())

    def test_round_matches_reference_function(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        kernel = ParallelMatchingKernel(indptr, indices, degrees, seed=21)
        for t in range(5):
            expected = matching_round_reference(
                kernel.indptr,
                kernel.indices,
                kernel.degrees,
                stream_key(21, t, STREAM_ACTIVITY),
                stream_key(21, t, STREAM_SLOT),
            )
            assert np.array_equal(kernel.round(t).copy(), expected)

    def test_average_matches_apply_matching(self, instance):
        graph = instance.graph
        indptr, indices, degrees = _csr(graph)
        kernel = ParallelMatchingKernel(indptr, indices, degrees, seed=4)
        rng = np.random.default_rng(0)
        loads = rng.random((graph.n, 3))
        partner = kernel.round(0).copy()
        expected = apply_matching(loads, partner)
        kernel.average(loads, partner)
        assert np.array_equal(loads, expected)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_matches_reference_bitwise(self, instance):
        # The contract the whole backend rests on: compiled and reference
        # paths perform the same IEEE-754 operations per node.
        graph = instance.graph
        indptr, indices, degrees = _csr(graph)
        for degree_cap in (None, 2 * graph.max_degree):
            jit = ParallelMatchingKernel(
                indptr, indices, degrees, seed=77, degree_cap=degree_cap,
                use_numba=True,
            )
            ref = ParallelMatchingKernel(
                indptr, indices, degrees, seed=77, degree_cap=degree_cap,
                use_numba=False,
            )
            assert jit.using_numba and not ref.using_numba
            rng = np.random.default_rng(1)
            loads_jit = rng.random((graph.n, 2))
            loads_ref = loads_jit.copy()
            for t in range(8):
                p_jit = jit.round(t)
                p_ref = ref.round(t)
                assert np.array_equal(p_jit, p_ref)
                jit.average(loads_jit, p_jit)
                ref.average(loads_ref, p_ref)
                assert np.array_equal(loads_jit, loads_ref)

    def test_seeds_decorrelate(self, instance):
        indptr, indices, degrees = _csr(instance.graph)
        a = ParallelMatchingKernel(indptr, indices, degrees, seed=1).round(0)
        b = ParallelMatchingKernel(indptr, indices, degrees, seed=2).round(0)
        assert not np.array_equal(a, b)
