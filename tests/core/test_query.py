"""Unit tests for the query procedure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import assign_labels_from_loads


class TestAssignLabels:
    def test_smallest_qualifying_identifier_wins(self):
        loads = np.array([[0.4, 0.5]])
        seed_ids = np.array([90, 10])
        labels, unlabelled = assign_labels_from_loads(loads, seed_ids, threshold=0.3)
        assert labels[0] == 10
        assert not unlabelled[0]

    def test_smallest_id_even_with_smaller_load(self):
        # Both qualify; the *identifier*, not the load, breaks the tie (paper rule).
        loads = np.array([[0.9, 0.31]])
        seed_ids = np.array([50, 7])
        labels, _ = assign_labels_from_loads(loads, seed_ids, threshold=0.3)
        assert labels[0] == 7

    def test_below_threshold_argmax_fallback(self):
        loads = np.array([[0.01, 0.02]])
        seed_ids = np.array([5, 9])
        labels, unlabelled = assign_labels_from_loads(loads, seed_ids, threshold=0.3)
        assert unlabelled[0]
        assert labels[0] == 9  # argmax fallback

    def test_below_threshold_none_fallback(self):
        loads = np.array([[0.01, 0.02]])
        seed_ids = np.array([5, 9])
        labels, unlabelled = assign_labels_from_loads(
            loads, seed_ids, threshold=0.3, fallback="none"
        )
        assert labels[0] == -1
        assert unlabelled[0]

    def test_threshold_inclusive(self):
        loads = np.array([[0.3]])
        labels, unlabelled = assign_labels_from_loads(loads, np.array([4]), threshold=0.3)
        assert labels[0] == 4 and not unlabelled[0]

    def test_many_nodes_vectorised_consistency(self):
        rng = np.random.default_rng(0)
        loads = rng.random((50, 4))
        seed_ids = np.array([40, 10, 30, 20])
        threshold = 0.5
        labels, unlabelled = assign_labels_from_loads(loads, seed_ids, threshold=threshold)
        for v in range(50):
            qualifying = [seed_ids[i] for i in range(4) if loads[v, i] >= threshold]
            if qualifying:
                assert labels[v] == min(qualifying)
                assert not unlabelled[v]
            else:
                assert unlabelled[v]
                assert labels[v] == seed_ids[np.argmax(loads[v])]

    def test_zero_seeds(self):
        labels, unlabelled = assign_labels_from_loads(
            np.zeros((3, 0)), np.empty(0, dtype=np.int64), threshold=0.1
        )
        assert np.all(labels == -1)
        assert np.all(unlabelled)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            assign_labels_from_loads(np.zeros((3, 2)), np.array([1]), threshold=0.1)
        with pytest.raises(ValueError):
            assign_labels_from_loads(np.zeros(3), np.array([1]), threshold=0.1)

    def test_invalid_fallback(self):
        with pytest.raises(ValueError):
            assign_labels_from_loads(
                np.zeros((2, 1)), np.array([1]), threshold=0.1, fallback="random"
            )
