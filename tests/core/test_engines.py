"""Unit tests for the round-engine abstraction and the three backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro._accel import HAVE_NUMBA
from repro.core import (
    AlgorithmParameters,
    DistributedClustering,
    MessagePassingEngine,
    ParallelEngine,
    VectorizedEngine,
    build_clustering_result,
    make_engine,
)
from repro.distsim import MessageDropFailures, RoundEngine, available_engines
from repro.graphs import MmapStorage, cached_instance, cycle_of_cliques, ring_of_expanders
from repro.loadbalancing import (
    apply_matching,
    count_matched_edges,
    sample_random_matching_fast,
    sample_random_matchings,
)


@pytest.fixture(scope="module")
def instance():
    return cycle_of_cliques(3, 14, seed=5)


@pytest.fixture(scope="module")
def params(instance):
    return AlgorithmParameters.from_instance(instance.graph, instance.partition)


class TestFastSampler:
    def test_partner_is_involution_on_edges(self, instance):
        graph = instance.graph
        rng = np.random.default_rng(0)
        for _ in range(20):
            partner = sample_random_matching_fast(graph, rng)
            matched = np.flatnonzero(partner >= 0)
            assert np.array_equal(partner[partner[matched]], matched)
            for v in matched:
                assert graph.has_edge(int(v), int(partner[v]))
                assert int(partner[v]) != int(v)

    def test_matches_protocol_rate_of_legacy_sampler(self, instance):
        from repro.loadbalancing import sample_random_matching

        graph = instance.graph
        trials = 300
        fast = np.mean([
            count_matched_edges(sample_random_matching_fast(graph, np.random.default_rng(1000 + t)))
            for t in range(trials)
        ])
        legacy = np.mean([
            count_matched_edges(sample_random_matching(graph, np.random.default_rng(5000 + t)))
            for t in range(trials)
        ])
        # Same protocol distribution: expected matched edges agree within noise.
        assert fast == pytest.approx(legacy, rel=0.15)

    def test_degree_cap_is_valid_and_thins_matchings(self):
        instance = ring_of_expanders(2, 24, 4, seed=3)
        graph = instance.graph
        cap = 4 * graph.max_degree
        rng = np.random.default_rng(7)
        capped = []
        uncapped = []
        for t in range(200):
            partner = sample_random_matching_fast(graph, rng, degree_cap=cap)
            matched = np.flatnonzero(partner >= 0)
            assert np.array_equal(partner[partner[matched]], matched)
            capped.append(matched.size // 2)
            uncapped.append(
                count_matched_edges(sample_random_matching_fast(graph, rng))
            )
        # Virtual self-loops swallow most proposals at D = 4Δ.
        assert np.mean(capped) < 0.6 * np.mean(uncapped)

    def test_degree_cap_below_max_degree_rejected(self, instance):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="degree cap"):
            sample_random_matching_fast(instance.graph, rng, degree_cap=1)


class TestBatchSampling:
    def test_shape_and_validity(self, instance):
        graph = instance.graph
        rng = np.random.default_rng(2)
        batch = sample_random_matchings(graph, rng, 10)
        assert batch.shape == (10, graph.n)
        assert batch.dtype == np.int64
        for t in range(10):
            matched = np.flatnonzero(batch[t] >= 0)
            assert np.array_equal(batch[t][batch[t][matched]], matched)

    def test_zero_rounds(self, instance):
        batch = sample_random_matchings(instance.graph, np.random.default_rng(0), 0)
        assert batch.shape == (0, instance.graph.n)

    def test_negative_rounds_rejected(self, instance):
        with pytest.raises(ValueError):
            sample_random_matchings(instance.graph, np.random.default_rng(0), -1)


class TestApplyMatchingOut:
    def test_out_none_leaves_input(self):
        loads = np.eye(4)
        partner = np.asarray([1, 0, -1, -1])
        result = apply_matching(loads, partner)
        assert result is not loads
        assert np.array_equal(loads, np.eye(4))
        assert np.allclose(result[0], result[1])

    def test_in_place_matches_copy(self):
        rng = np.random.default_rng(3)
        loads = rng.random((8, 3))
        partner = np.asarray([3, 2, 1, 0, -1, 6, 5, -1])
        expected = apply_matching(loads, partner)
        returned = apply_matching(loads, partner, out=loads)
        assert returned is loads
        assert np.array_equal(loads, expected)

    def test_out_shape_mismatch_rejected(self):
        loads = np.ones((4, 2))
        with pytest.raises(ValueError):
            apply_matching(loads, np.full(4, -1), out=np.ones((4, 3)))

    def test_integer_out_rejected(self):
        # Averages are halves; an integer out buffer would silently truncate.
        int_loads = np.eye(4, dtype=np.int64)
        with pytest.raises(ValueError, match="floating-point"):
            apply_matching(int_loads, np.asarray([1, 0, -1, -1]), out=int_loads)


class TestEngineFactory:
    def test_backends_registered(self):
        names = available_engines()
        assert "message-passing" in names
        assert "vectorized" in names

    def test_aliases(self, instance, params):
        assert isinstance(
            make_engine("array", instance.graph, params), VectorizedEngine
        )
        assert isinstance(
            make_engine("per-node", instance.graph, params), MessagePassingEngine
        )

    def test_unknown_backend(self, instance, params):
        with pytest.raises(ValueError, match="unknown round engine"):
            make_engine("quantum", instance.graph, params)

    def test_engine_instance_passthrough(self, instance, params):
        engine = VectorizedEngine(instance.graph, params, seed=0)
        assert make_engine(engine) is engine

    def test_prebuilt_engine_rejects_construction_options(self, instance, params):
        engine = VectorizedEngine(instance.graph, params, seed=0)
        with pytest.raises(ValueError, match="pre-built engine"):
            make_engine(engine, seed=999)
        with pytest.raises(ValueError, match="pre-built engine"):
            DistributedClustering(
                instance.graph, params, seed=999, backend=engine
            ).run()
        # An explicit driver fallback is fine for the vectorized engine: its
        # query runs centrally at result assembly, where the request applies.
        short = params.with_rounds(2)
        engine2 = VectorizedEngine(instance.graph, short, seed=3)
        overridden = DistributedClustering(
            instance.graph, short, backend=engine2, fallback="none"
        ).run()
        assert overridden.num_unlabelled > 0
        assert np.all(overridden.labels[overridden.unlabelled] == -1)

    def test_engines_are_single_use(self, instance, params):
        # A second run would continue from consumed random streams and
        # silently produce different, non-reproducible results.
        engine = VectorizedEngine(instance.graph, params, seed=0)
        engine.run()
        with pytest.raises(RuntimeError, match="single-use"):
            engine.run()
        driver = DistributedClustering(
            instance.graph,
            params,
            backend=MessagePassingEngine(instance.graph, params, seed=0),
        )
        driver.run()
        with pytest.raises(RuntimeError, match="single-use"):
            driver.run()
        # By-name drivers build a fresh engine per run and stay repeatable.
        by_name = DistributedClustering(
            instance.graph, params, seed=0, backend="vectorized"
        )
        assert np.array_equal(by_name.run().labels, by_name.run().labels)

    def test_prebuilt_engine_must_match_graph_and_parameters(self, instance, params):
        other = cycle_of_cliques(3, 14, seed=99)
        engine = VectorizedEngine(other.graph, params, seed=0)
        with pytest.raises(ValueError, match="different graph"):
            DistributedClustering(instance.graph, params, backend=engine).run()
        engine2 = VectorizedEngine(instance.graph, params.with_rounds(3), seed=0)
        with pytest.raises(ValueError, match="different parameters"):
            DistributedClustering(instance.graph, params, backend=engine2).run()

    def test_prebuilt_engine_declared_fallback_is_honoured(self, instance, params):
        # An engine configured with fallback="none" keeps that policy when
        # the driver leaves the fallback unspecified: below-threshold nodes
        # stay unlabelled (-1) instead of getting argmax labels.
        short = params.with_rounds(2)  # under-mixed: some nodes below threshold
        engine = VectorizedEngine(instance.graph, short, seed=3, fallback="none")
        result = DistributedClustering(instance.graph, short, backend=engine).run()
        assert result.num_unlabelled > 0
        assert np.all(result.labels[result.unlabelled] == -1)

    def test_prebuilt_message_engine_rejects_conflicting_fallback(
        self, instance, params
    ):
        # The message-passing nodes compute labels locally with the engine's
        # own fallback; a differing driver request must not be silently
        # overridden by the node-computed labels.
        engine = MessagePassingEngine(instance.graph, params, seed=0)
        with pytest.raises(ValueError, match="pre-built engine"):
            DistributedClustering(
                instance.graph, params, backend=engine, fallback="none"
            ).run()
        engine_none = MessagePassingEngine(
            instance.graph, params, seed=0, fallback="none"
        )
        result = DistributedClustering(
            instance.graph, params, backend=engine_none, fallback="none"
        ).run()
        assert result.labels.size == instance.graph.n
        # Unspecified driver fallback adopts the engine's declaration.
        adopted = DistributedClustering(
            instance.graph, params, backend=MessagePassingEngine(
                instance.graph, params, seed=0, fallback="none"
            )
        ).run()
        assert np.array_equal(adopted.labels, result.labels)

    def test_degree_cap_with_averaging_model_rejected(self, instance, params):
        from repro.loadbalancing import RandomMatchingModel

        with pytest.raises(ValueError, match="averaging_model"):
            VectorizedEngine(
                instance.graph,
                params,
                averaging_model=RandomMatchingModel(instance.graph),
                degree_cap=instance.graph.max_degree,
            )

    def test_degree_cap_with_custom_sampler_rejected(self, instance, params):
        from repro.loadbalancing import sample_random_matching

        with pytest.raises(ValueError, match="custom"):
            VectorizedEngine(
                instance.graph,
                params,
                matching_sampler=sample_random_matching,
                degree_cap=instance.graph.max_degree,
            )
        with pytest.raises(ValueError, match="custom"):
            sample_random_matchings(
                instance.graph,
                np.random.default_rng(0),
                3,
                sampler=sample_random_matching,
                degree_cap=instance.graph.max_degree,
            )

    def test_vectorized_accepts_failures(self, instance, params):
        engine = VectorizedEngine(
            instance.graph,
            params,
            seed=0,
            failures=MessageDropFailures(drop_probability=0.1),
        )
        result = engine.run()
        assert result.metadata["failures"] == "MessageDropFailures"
        assert len(result.matched_edges_per_round) == params.rounds

    def test_every_backend_accepts_failures_via_make_engine(self, instance, params):
        # PR 8 regression: failure injection is a first-class option of every
        # registered backend, not a message-passing privilege.
        import warnings

        for backend in available_engines():
            with warnings.catch_warnings():
                # Without numba the parallel factory falls back with a
                # RuntimeWarning; acceptance of the option is what's pinned.
                warnings.simplefilter("ignore", RuntimeWarning)
                engine = make_engine(
                    backend,
                    instance.graph,
                    params,
                    seed=0,
                    failures=MessageDropFailures(drop_probability=0.05),
                )
            result = engine.run()
            assert len(result.matched_edges_per_round) == params.rounds, backend

    def test_unknown_engine_options_still_rejected_loudly(self, instance, params):
        import warnings

        for backend in ("vectorized", "message-passing", "parallel", "masked"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with pytest.raises(TypeError, match="unexpected keyword"):
                    make_engine(
                        backend, instance.graph, params, seed=0, frobnicate=True
                    )

    def test_distributed_driver_runs_failures_on_vectorized(self, instance, params):
        result = DistributedClustering(
            instance.graph,
            params,
            seed=0,
            backend="vectorized",
            failures=MessageDropFailures(drop_probability=0.1),
        ).run()
        assert result.labels.size == instance.graph.n


class TestVectorizedEngine:
    def test_result_fields_and_conservation(self, instance, params):
        engine = VectorizedEngine(instance.graph, params, seed=11)
        result = engine.run()
        assert isinstance(engine, RoundEngine)
        assert result.rounds_executed == params.rounds
        assert result.loads.shape == (instance.graph.n, result.num_seeds)
        assert result.labels is None  # query runs centrally
        assert result.communication is None
        assert len(result.matched_edges_per_round) == params.rounds
        # Each seed's unit of load is conserved by every matching round.
        assert np.allclose(result.loads.sum(axis=0), 1.0)

    def test_round_callback_sees_every_round(self, instance, params):
        seen = []
        VectorizedEngine(instance.graph, params, seed=1).run(
            round_callback=lambda t, loads: seen.append((t, loads.shape))
        )
        assert [t for t, _ in seen] == list(range(params.rounds))
        assert all(shape[0] == instance.graph.n for _, shape in seen)

    def test_round_callback_receives_snapshots(self, instance, params):
        # Callers recording per-round history must get independent arrays,
        # not T references to the engine's in-place buffer.
        history = []
        VectorizedEngine(instance.graph, params, seed=1).run(
            round_callback=lambda t, loads: history.append(loads)
        )
        assert len(history) == params.rounds
        assert history[0] is not history[-1]
        assert not np.array_equal(history[0], history[-1])

    def test_batch_size_does_not_change_results(self, instance, params):
        runs = [
            VectorizedEngine(instance.graph, params, seed=9, batch_rounds=b).run()
            for b in (1, 7, 256)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0].loads, other.loads)
            assert np.array_equal(runs[0].seeds, other.seeds)

    def test_invalid_batch_rounds(self, instance, params):
        with pytest.raises(ValueError):
            VectorizedEngine(instance.graph, params, batch_rounds=0)

    def test_no_seeds_degenerate(self, instance):
        params = AlgorithmParameters.from_values(
            instance.graph.n, 0.25, 10, activation_probability=0.0
        )
        result = VectorizedEngine(instance.graph, params, seed=0).run()
        assert result.rounds_executed == 0
        assert result.num_seeds == 0
        clustering = build_clustering_result(result, params)
        assert clustering.rounds == 0
        assert clustering.num_unlabelled == instance.graph.n
        assert np.array_equal(clustering.labels, np.zeros(instance.graph.n, dtype=np.int64))


class TestMessagePassingEngine:
    def test_result_carries_communication_and_local_labels(self, instance, params):
        result = MessagePassingEngine(instance.graph, params, seed=11).run()
        assert result.labels is not None
        assert result.unlabelled is not None
        assert result.communication is not None
        assert result.trace is not None
        assert result.communication.total_messages > 0
        assert result.rounds_executed == params.rounds
        assert np.allclose(result.loads.sum(axis=0), 1.0)

    def test_round_callback_reconstructs_loads(self, instance, params):
        small = params.with_rounds(3)
        seen = []
        MessagePassingEngine(instance.graph, small, seed=2).run(
            round_callback=lambda t, loads: seen.append((t, float(loads.sum())))
        )
        assert [t for t, _ in seen] == [0, 1, 2]
        # Total load equals the number of seeds in every round (conservation).
        totals = {round(total) for _, total in seen}
        assert len(totals) == 1

    def test_matches_legacy_distributed_driver(self, instance, params):
        # The default DistributedClustering backend must be the simulator,
        # bit-for-bit: same seed, same labels, same message count.
        engine_result = MessagePassingEngine(instance.graph, params, seed=4).run()
        driver_result = DistributedClustering(instance.graph, params, seed=4).run()
        assert np.array_equal(engine_result.labels, driver_result.labels)
        assert (
            engine_result.communication.total_words
            == driver_result.communication.total_words
        )


class TestParallelEngine:
    def test_result_fields_conservation_and_metadata(self, instance, params):
        engine = ParallelEngine(instance.graph, params, seed=11)
        result = engine.run()
        assert isinstance(engine, RoundEngine)
        assert result.rounds_executed == params.rounds
        assert result.loads.shape == (instance.graph.n, result.num_seeds)
        assert result.labels is None  # query runs centrally
        assert result.communication is None
        assert len(result.matched_edges_per_round) == params.rounds
        assert np.allclose(result.loads.sum(axis=0), 1.0)
        metadata = result.metadata
        assert metadata["backend"] == "parallel"
        assert metadata["kernel"] == (
            "numba-parallel" if HAVE_NUMBA else "numpy-reference"
        )
        assert metadata["threads"] >= 1

    def test_repeat_runs_bit_identical(self, instance, params):
        a = ParallelEngine(instance.graph, params, seed=42).run()
        b = ParallelEngine(instance.graph, params, seed=42).run()
        assert np.array_equal(a.seeds, b.seeds)
        assert np.array_equal(a.seed_ids, b.seed_ids)
        assert np.array_equal(a.loads, b.loads)
        assert a.matched_edges_per_round == b.matched_edges_per_round

    def test_thread_request_does_not_change_results(self, instance, params):
        # threads is a pure performance knob: counter-based draws make the
        # result independent of it (and of the machine's pool size).
        runs = [
            ParallelEngine(instance.graph, params, seed=9, threads=t).run()
            for t in (1, 2, 8)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0].loads, other.loads)
            assert runs[0].matched_edges_per_round == other.matched_edges_per_round

    def test_round_callback_receives_snapshots(self, instance, params):
        history = []
        ParallelEngine(instance.graph, params, seed=1).run(
            round_callback=lambda t, loads: history.append(loads)
        )
        assert len(history) == params.rounds
        assert history[0] is not history[-1]
        assert not np.array_equal(history[0], history[-1])

    def test_accepts_failures(self, instance, params):
        engine = ParallelEngine(
            instance.graph,
            params,
            seed=4,
            failures=MessageDropFailures(drop_probability=0.5),
            **({} if HAVE_NUMBA else {"use_numba": False}),
        )
        result = engine.run()
        assert result.metadata["failures"] == "MessageDropFailures"
        # Half the proposals and half the accepts are dropped, so matching
        # counts fall well below the reliable run's.
        reliable = ParallelEngine(
            instance.graph,
            params,
            seed=4,
            **({} if HAVE_NUMBA else {"use_numba": False}),
        ).run()
        assert sum(result.matched_edges_per_round) < sum(
            reliable.matched_edges_per_round
        )

    def test_rejects_low_degree_cap(self, instance, params):
        with pytest.raises(ValueError, match="degree cap"):
            ParallelEngine(
                instance.graph, params, degree_cap=instance.graph.max_degree - 1
            )

    def test_rejects_invalid_threads(self, instance, params):
        with pytest.raises(ValueError, match="threads"):
            ParallelEngine(instance.graph, params, threads=0)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_use_numba_true_requires_numba(self, instance, params):
        with pytest.raises(ValueError, match="numba is not installed"):
            ParallelEngine(instance.graph, params, use_numba=True)

    def test_mmap_storage_runs_blocked_and_bit_identical(self, tmp_path, params):
        # PR 7: the fused kernels run block-sliced over iter_row_blocks for
        # out-of-core storage — same bits as the in-memory monolithic path.
        dense = cached_instance(
            "cycle_of_cliques", k=3, clique_size=14, seed=5,
            cache_dir=tmp_path, mmap=False,
        )
        mmapped = cached_instance(
            "cycle_of_cliques", k=3, clique_size=14, seed=5,
            cache_dir=tmp_path, mmap=True, shard_arcs=500,
        )
        assert isinstance(mmapped.graph.storage, MmapStorage)
        use_numba = "auto" if HAVE_NUMBA else False
        a = ParallelEngine(
            dense.graph, params, seed=5, use_numba=use_numba
        ).run()
        b = ParallelEngine(
            mmapped.graph, params, seed=5, use_numba=use_numba
        ).run()
        assert not a.metadata["blocked"] and b.metadata["blocked"]
        assert np.array_equal(a.seeds, b.seeds)
        assert np.array_equal(a.loads, b.loads)
        assert a.matched_edges_per_round == b.matched_edges_per_round

    def test_factory_builds_parallel_engine_for_mmap_storage(self, tmp_path, params):
        instance = cached_instance(
            "cycle_of_cliques",
            k=3,
            clique_size=14,
            seed=5,
            cache_dir=tmp_path,
            mmap=True,
            shard_arcs=500,
        )
        # Memory-mapped storage no longer triggers a vectorized fallback;
        # only a missing numba install does (forced off here via use_numba).
        engine = make_engine(
            "parallel",
            instance.graph,
            params,
            seed=3,
            threads=4,
            use_numba="auto" if HAVE_NUMBA else False,
        )
        assert isinstance(engine, ParallelEngine)
        assert engine.run().rounds_executed == params.rounds

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_factory_falls_back_without_numba(self, instance, params):
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            engine = make_engine("parallel", instance.graph, params, seed=3)
        assert isinstance(engine, VectorizedEngine)

    def test_factory_honours_forced_reference_path(self, instance, params):
        # use_numba=False bypasses the numba availability check entirely:
        # the caller asked for the reference path, which always exists.
        engine = make_engine(
            "parallel", instance.graph, params, seed=3, use_numba=False
        )
        assert isinstance(engine, ParallelEngine)
        assert engine.run().metadata["kernel"] == "numpy-reference"

    def test_aliases_reach_parallel_factory(self, instance, params):
        for alias in ("threaded", "jit"):
            engine = make_engine(
                alias, instance.graph, params, seed=1, use_numba=False
            )
            assert isinstance(engine, ParallelEngine)

    def test_no_seeds_degenerate(self, instance):
        params = AlgorithmParameters.from_values(
            instance.graph.n, 0.25, 10, activation_probability=0.0
        )
        result = ParallelEngine(instance.graph, params, seed=0).run()
        assert result.rounds_executed == 0
        assert result.num_seeds == 0

    def test_distributed_driver_runs_parallel_backend(self, instance, params):
        result = DistributedClustering(
            instance.graph,
            params,
            seed=6,
            backend="parallel",
            use_numba="auto" if HAVE_NUMBA else False,
        ).run()
        assert result.rounds == params.rounds
        assert result.labels.shape == (instance.graph.n,)
        metadata = result.diagnostics["simulation_metadata"]
        assert metadata["backend"] == "parallel"
