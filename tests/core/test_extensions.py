"""Unit tests for the extensions beyond the paper: adaptive T and token clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AdaptiveClustering,
    AlgorithmParameters,
    CentralizedClustering,
    TokenClustering,
)
from repro.graphs import cycle_of_cliques


class TestAdaptiveClustering:
    def test_recovers_clusters_without_spectral_oracle(self, four_clique_instance):
        engine = AdaptiveClustering(four_clique_instance.graph, beta=0.25, seed=0)
        result = engine.run()
        assert result.error_against(four_clique_instance.partition) <= 0.05
        info = result.diagnostics["adaptive"]
        assert info.stopped_early
        assert result.rounds == info.rounds_executed

    def test_stops_well_before_the_hard_cap(self, four_clique_instance):
        engine = AdaptiveClustering(four_clique_instance.graph, beta=0.25, seed=1)
        result = engine.run()
        assert result.rounds < engine.max_rounds / 2

    def test_rounds_comparable_to_oracle_T(self, four_clique_instance):
        oracle = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        ).rounds
        result = AdaptiveClustering(four_clique_instance.graph, beta=0.25, seed=2).run()
        # the stopping rule should not overshoot the oracle prescription by
        # more than a small constant factor
        assert result.rounds <= 4 * oracle

    def test_label_change_history_recorded(self, two_clique_instance):
        result = AdaptiveClustering(two_clique_instance.graph, beta=0.5, seed=3).run()
        info = result.diagnostics["adaptive"]
        assert len(info.label_change_history) >= 1
        assert all(0.0 <= c <= 1.0 for c in info.label_change_history)

    def test_parameter_validation(self, two_clique_instance):
        graph = two_clique_instance.graph
        with pytest.raises(ValueError):
            AdaptiveClustering(graph, beta=0.0)
        with pytest.raises(ValueError):
            AdaptiveClustering(graph, beta=0.5, stable_blocks=0)
        with pytest.raises(ValueError):
            AdaptiveClustering(graph, beta=0.5, stability_tolerance=1.0)
        with pytest.raises(ValueError):
            AdaptiveClustering(graph, beta=0.5, block_size=0)

    def test_determinism(self, two_clique_instance):
        a = AdaptiveClustering(two_clique_instance.graph, beta=0.5, seed=9).run()
        b = AdaptiveClustering(two_clique_instance.graph, beta=0.5, seed=9).run()
        assert np.array_equal(a.labels, b.labels)
        assert a.rounds == b.rounds


class TestTokenClustering:
    def test_recovers_clusters_with_moderate_budget(self, four_clique_instance):
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        )
        result = TokenClustering(
            four_clique_instance.graph, params, tokens_per_seed=512, seed=0
        ).run()
        assert result.error_against(four_clique_instance.partition) <= 0.10

    def test_token_conservation(self, four_clique_instance):
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        )
        budget = 256
        result = TokenClustering(
            four_clique_instance.graph, params, tokens_per_seed=budget, seed=1
        ).run()
        # loads are reported in units of the budget → every column sums to 1
        assert np.allclose(result.loads.sum(axis=0), 1.0)

    def test_accuracy_improves_with_budget(self):
        instance = cycle_of_cliques(3, 20, seed=2)
        params = AlgorithmParameters.from_instance(instance.graph, instance.partition)
        errors = {}
        for budget in (8, 1024):
            errs = []
            for seed in range(3):
                result = TokenClustering(
                    instance.graph, params, tokens_per_seed=budget, seed=seed
                ).run()
                errs.append(result.error_against(instance.partition))
            errors[budget] = float(np.mean(errs))
        assert errors[1024] <= errors[8] + 1e-9

    def test_large_budget_matches_continuous_algorithm(self, four_clique_instance):
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        )
        token_result = TokenClustering(
            four_clique_instance.graph, params, tokens_per_seed=4096, seed=3
        ).run()
        continuous = CentralizedClustering(four_clique_instance.graph, params, seed=3).run()
        assert abs(
            token_result.error_against(four_clique_instance.partition)
            - continuous.error_against(four_clique_instance.partition)
        ) <= 0.05

    def test_validation(self, four_clique_instance):
        params = AlgorithmParameters.from_instance(
            four_clique_instance.graph, four_clique_instance.partition
        )
        with pytest.raises(ValueError):
            TokenClustering(four_clique_instance.graph, params, tokens_per_seed=0)
