"""Unit tests for the node state and its averaging rule."""

from __future__ import annotations

import pytest

from repro.core import NodeState


class TestConstruction:
    def test_empty(self):
        state = NodeState.empty()
        assert len(state) == 0
        assert state.total_load == 0.0
        assert state.label(0.1) is None
        assert state.heaviest_prefix() is None

    def test_seeded(self):
        state = NodeState.seeded(42)
        assert state.value(42) == 1.0
        assert state.total_load == 1.0
        assert list(state.prefixes()) == [42]


class TestAveraging:
    def test_common_prefix_averaged(self):
        a = NodeState({7: 0.8})
        b = NodeState({7: 0.2})
        merged = a.averaged_with(b)
        assert merged.value(7) == pytest.approx(0.5)

    def test_disjoint_prefixes_halved(self):
        a = NodeState({1: 1.0})
        b = NodeState({2: 0.5})
        merged = a.averaged_with(b)
        assert merged.value(1) == pytest.approx(0.5)
        assert merged.value(2) == pytest.approx(0.25)

    def test_symmetric(self):
        a = NodeState({1: 0.7, 3: 0.1})
        b = NodeState({3: 0.5, 9: 0.2})
        assert a.averaged_with(b) == b.averaged_with(a)

    def test_averaging_with_empty_halves_everything(self):
        a = NodeState({1: 0.6, 2: 0.4})
        merged = a.averaged_with(NodeState.empty())
        assert merged.value(1) == pytest.approx(0.3)
        assert merged.value(2) == pytest.approx(0.2)

    def test_total_load_conserved_pairwise(self):
        a = NodeState({1: 0.6, 2: 0.4})
        b = NodeState({2: 0.2, 5: 1.0})
        merged = a.averaged_with(b)
        # both endpoints adopt `merged`, so combined load 2*merged.total
        assert 2 * merged.total_load == pytest.approx(a.total_load + b.total_load)

    def test_original_states_untouched(self):
        a = NodeState({1: 1.0})
        b = NodeState({2: 1.0})
        a.averaged_with(b)
        assert a.value(1) == 1.0 and b.value(2) == 1.0


class TestQuery:
    def test_label_smallest_qualifying_prefix(self):
        state = NodeState({10: 0.5, 3: 0.4, 99: 0.9})
        assert state.label(0.3) == 3
        assert state.label(0.45) == 10
        assert state.label(0.95) is None

    def test_threshold_boundary_inclusive(self):
        state = NodeState({5: 0.25})
        assert state.label(0.25) == 5

    def test_heaviest_prefix(self):
        state = NodeState({5: 0.25, 2: 0.7, 9: 0.7})
        # ties broken towards the smaller prefix
        assert state.heaviest_prefix() == 2


class TestSerialisationAndPruning:
    def test_payload_round_trip(self):
        state = NodeState({3: 0.125, 1: 0.5})
        payload = state.as_payload()
        assert payload == [(1, 0.5), (3, 0.125)]
        assert NodeState.from_payload(payload) == state

    def test_prune(self):
        state = NodeState({1: 0.5, 2: 1e-9, 3: 0.01})
        pruned = state.prune(1e-3)
        assert pruned == NodeState({1: 0.5, 3: 0.01})

    def test_prune_negative_epsilon(self):
        with pytest.raises(ValueError):
            NodeState({1: 0.5}).prune(-1.0)

    def test_iteration_sorted(self):
        state = NodeState({5: 0.1, 1: 0.2})
        assert list(state) == [(1, 0.2), (5, 0.1)]
