"""Unit tests for the experiment runner."""

from __future__ import annotations

import os
import pickle
import warnings

import numpy as np
import pytest

from repro.baselines import SpectralClustering
from repro.evaluation import (
    ExperimentResult,
    ProcessExecutor,
    SerialExecutor,
    aggregate_records,
    evaluate_baseline,
    evaluate_distributed_clustering,
    evaluate_load_balancing_clustering,
    run_trials,
    sweep,
    trial_seed,
)
from repro.graphs import cached_instance, cycle_of_cliques


class TestTrialSeeds:
    def test_pinned_seed_values(self):
        """Regression: trial seeds are a stable digest of the algorithm name.

        The seed derivation used ``hash(name)``, which PYTHONHASHSEED
        randomises across processes, so records differed run-to-run.  These
        values pin the CRC32-based formula: if they ever change, previously
        recorded experiment JSONs no longer correspond to the code.
        """
        assert trial_seed("ours", 0) == 873
        assert trial_seed("ours", 2, base_seed=5) == 2878
        assert trial_seed("spectral", 0) == 153
        assert trial_seed("label-propagation", 1) == 1888
        assert trial_seed("becchetti", 0, base_seed=100) == 592

    def test_stable_across_processes(self):
        """The formula must not involve PYTHONHASHSEED-dependent state."""
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        code = "from repro.evaluation import trial_seed; print(trial_seed('ours', 1))"
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": src},
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for hash_seed in ("0", "1", "42")
        }
        assert outs == {str(trial_seed("ours", 1))}

    def test_run_trials_uses_trial_seed(self):
        seen = []

        def record_seed(instance, seed):
            seen.append(seed)
            return {"error": 0.0}

        instances = list(sweep([2], lambda k: cycle_of_cliques(k, 6, seed=k), key="k"))
        run_trials(instances, {"ours": record_seed}, trials=2, base_seed=7)
        assert seen == [trial_seed("ours", 0, 7), trial_seed("ours", 1, 7)]


class TestExperimentResult:
    def test_aggregation_means_and_std(self):
        result = ExperimentResult()
        result.add({"n": 10}, 0, {"error": 0.2, "name": "x"})
        result.add({"n": 10}, 1, {"error": 0.4, "name": "x"})
        result.add({"n": 20}, 0, {"error": 0.1, "name": "x"})
        rows = result.aggregated(["n"])
        by_n = {row["n"]: row for row in rows}
        assert by_n[10]["error"] == pytest.approx(0.3)
        assert by_n[10]["error_std"] == pytest.approx(np.std([0.2, 0.4], ddof=1))
        assert by_n[10]["trials"] == 2
        assert by_n[20]["error"] == pytest.approx(0.1)
        assert by_n[10]["name"] == "x"

    def test_table_rendering(self):
        result = ExperimentResult()
        result.add({"k": 2}, 0, {"error": 0.0})
        out = result.table(["k"], ["k", "error"], title="tbl")
        assert "tbl" in out and "error" in out

    def test_aggregate_records_helper(self):
        rows = aggregate_records(
            [{"alg": "a", "score": 1.0}, {"alg": "a", "score": 3.0}, {"alg": "b", "score": 2.0}],
            ["alg"],
        )
        by_alg = {r["alg"]: r for r in rows}
        assert by_alg["a"]["score"] == pytest.approx(2.0)
        assert by_alg["b"]["trials"] == 1


class TestSweepAndRunTrials:
    def test_sweep_yields_config_pairs(self):
        pairs = list(sweep([2, 3], lambda k: cycle_of_cliques(k, 8, seed=k), key="k"))
        assert [cfg["k"] for cfg, _ in pairs] == [2, 3]
        assert pairs[0][1].graph.n == 16

    def test_run_trials_end_to_end(self):
        instances = list(sweep([2], lambda k: cycle_of_cliques(k, 15, seed=k), key="k"))
        algorithms = {
            "ours": evaluate_load_balancing_clustering(),
            "spectral": evaluate_baseline(SpectralClustering()),
        }
        result = run_trials(instances, algorithms, trials=2, base_seed=1)
        rows = result.aggregated(["k", "algorithm"])
        assert len(rows) == 2
        by_algorithm = {row["algorithm"]: row for row in rows}
        for row in rows:
            assert row["trials"] == 2
            assert "ari" in row and "rounds" in row
        # Theorem 1.1 only promises success with constant probability per
        # trial (a tiny instance can fail to seed one clique), so the bound on
        # our algorithm's mean error is loose; spectral is deterministic here.
        assert by_algorithm["spectral"]["error"] <= 0.05
        assert by_algorithm["ours"]["error"] <= 0.5

    def test_adapter_overrides(self):
        instance = cycle_of_cliques(2, 10, seed=0)
        record = evaluate_load_balancing_clustering(rounds=3)(instance, seed=0)
        assert record["rounds"] == 3
        record_beta = evaluate_load_balancing_clustering(beta=0.5)(instance, seed=0)
        assert "error" in record_beta

    def test_sweep_forwards_cache_dir(self, tmp_path):
        def make_instance(size, cache_dir=None):
            return cached_instance(
                cycle_of_cliques, k=2, clique_size=size, seed=size, cache_dir=cache_dir
            )

        pairs = list(sweep([8, 10], make_instance, key="size", cache_dir=str(tmp_path)))
        assert [cfg["size"] for cfg, _ in pairs] == [8, 10]
        assert len(list(tmp_path.glob("*.npz"))) == 2
        # Without cache_dir, make_instance is called with the value only.
        plain = list(sweep([8], make_instance, key="size"))
        assert plain[0][1].graph == pairs[0][1].graph


class TestParallelExecution:
    """The process executor must be a pure performance knob: same records."""

    def _instances(self):
        return list(sweep([2, 3], lambda k: cycle_of_cliques(k, 12, seed=k), key="k"))

    def _algorithms(self):
        return {
            "ours": evaluate_load_balancing_clustering(),
            "vectorized": evaluate_distributed_clustering(rounds=20),
            "spectral": evaluate_baseline(SpectralClustering()),
        }

    @staticmethod
    def _flat(result):
        return [(r.config, r.trial, r.values) for r in result.records]

    def test_process_records_bit_identical_to_serial(self):
        instances, algorithms = self._instances(), self._algorithms()
        serial = run_trials(instances, algorithms, trials=2, base_seed=11)
        parallel = run_trials(
            instances, algorithms, trials=2, base_seed=11, executor="process", workers=2
        )
        # Exact equality, including float bit patterns inside the values.
        assert self._flat(serial) == self._flat(parallel)

    def test_executor_instance_accepted(self):
        instances, algorithms = self._instances(), self._algorithms()
        a = run_trials(instances, algorithms, trials=1, executor=SerialExecutor())
        b = run_trials(instances, algorithms, trials=1, executor=ProcessExecutor(2))
        assert self._flat(a) == self._flat(b)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_trials([], {}, executor="threads")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(-2)
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(0)
        assert ProcessExecutor(None).workers >= 1  # None = all cores

    def test_adapters_are_picklable(self):
        for adapter in self._algorithms().values():
            clone = pickle.loads(pickle.dumps(adapter))
            instance = cycle_of_cliques(2, 8, seed=0)
            assert clone(instance, 3) == adapter(instance, 3)

    def test_empty_grid(self):
        result = run_trials([], {}, trials=3, executor="process", workers=2)
        assert result.records == []


class TestWorkerThreadPinning:
    """ProcessExecutor workers default threaded kernels to one thread."""

    def test_pins_unset_vars_to_one(self, monkeypatch):
        from repro.evaluation.runner import (
            _WORKER_THREAD_ENV_VARS,
            _pin_worker_threads,
        )

        for var in _WORKER_THREAD_ENV_VARS:
            monkeypatch.setenv(var, "sentinel")  # record for restore
            monkeypatch.delenv(var)
        _pin_worker_threads()
        for var in _WORKER_THREAD_ENV_VARS:
            assert os.environ[var] == "1"

    def test_explicit_settings_survive(self, monkeypatch):
        from repro.evaluation.runner import (
            _WORKER_THREAD_ENV_VARS,
            _pin_worker_threads,
        )

        for var in _WORKER_THREAD_ENV_VARS:
            monkeypatch.setenv(var, "4")
        _pin_worker_threads()
        for var in _WORKER_THREAD_ENV_VARS:
            assert os.environ[var] == "4"

    def test_covers_the_oversubscription_knobs(self):
        from repro.evaluation.runner import _WORKER_THREAD_ENV_VARS

        assert set(_WORKER_THREAD_ENV_VARS) >= {
            "OMP_NUM_THREADS",
            "NUMBA_NUM_THREADS",
            "OPENBLAS_NUM_THREADS",
        }


class TestThreadsKnob:
    """``threads`` is a parallel-engine option; elsewhere it is an error."""

    def _instance(self):
        return cycle_of_cliques(2, 10, seed=0)

    def test_threads_requires_a_parallel_backend(self):
        instance = self._instance()
        for backend in ("centralized", "vectorized", "message-passing"):
            adapter = evaluate_load_balancing_clustering(
                backend=backend, threads=2
            )
            with pytest.raises(ValueError, match="thread knob"):
                adapter(instance, seed=0)

    def test_block_size_rejected_on_parallel_aliases(self):
        instance = self._instance()
        for backend in ("parallel", "threaded", "jit"):
            adapter = evaluate_load_balancing_clustering(
                backend=backend, block_size=64
            )
            with pytest.raises(ValueError, match="picks its own blocking"):
                adapter(instance, seed=0)

    def test_threads_runs_on_parallel_backend(self):
        adapter = evaluate_load_balancing_clustering(
            backend="parallel", threads=1, rounds=20
        )
        with warnings.catch_warnings():
            # Without numba the factory downgrades to the vectorized engine
            # (and drops the thread knob) with a RuntimeWarning.
            warnings.simplefilter("ignore", RuntimeWarning)
            record = adapter(self._instance(), seed=1)
        assert record["backend"] == "parallel"
        assert "error" in record and "rounds" in record


class TestFailuresKnob:
    """``failures`` applies to round-engine backends; centralized rejects it."""

    def _instance(self):
        return cycle_of_cliques(2, 10, seed=0)

    def test_failures_rejected_on_centralized(self):
        from repro.distsim import MessageDropFailures

        adapter = evaluate_load_balancing_clustering(
            backend="centralized", failures=MessageDropFailures(0.1)
        )
        with pytest.raises(ValueError, match="no message layer"):
            adapter(self._instance(), seed=0)

    def test_failures_run_on_round_engine_backends(self):
        from repro.distsim import MessageDropFailures

        for backend in ("vectorized", "message-passing", "masked-message-passing"):
            adapter = evaluate_load_balancing_clustering(
                backend=backend, failures=MessageDropFailures(0.1), rounds=10
            )
            record = adapter(self._instance(), seed=1)
            assert record["backend"] == backend
            assert "error" in record and record["rounds"] == 10

    def test_failure_adapter_is_picklable(self):
        import pickle

        from repro.distsim import CompositeFailures, CrashFailures, MessageDropFailures

        adapter = evaluate_load_balancing_clustering(
            backend="vectorized",
            rounds=10,
            failures=CompositeFailures(
                MessageDropFailures(0.05), CrashFailures(0.02)
            ),
        )
        clone = pickle.loads(pickle.dumps(adapter))
        instance = self._instance()
        assert clone(instance, seed=3) == adapter(instance, seed=3)
