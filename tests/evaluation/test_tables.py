"""Unit tests for result tables."""

from __future__ import annotations

from repro.evaluation import format_markdown_table, format_table, records_to_rows


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"], [["a", 1.23456], ["bcd", 2]], title="My table", float_format=".3g"
        )
        lines = out.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in out and "bcd" in out

    def test_boolean_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(["x", "y"], [[1, 2.5]])
        lines = out.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2].startswith("| 1 | 2.5")


class TestRecordsToRows:
    def test_projection_with_missing_fields(self):
        records = [{"a": 1, "b": 2}, {"a": 3}]
        rows = records_to_rows(records, ["a", "b"])
        assert rows == [[1, 2], [3, ""]]
