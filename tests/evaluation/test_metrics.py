"""Unit tests for clustering metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    adjusted_rand_index,
    clustering_report,
    normalized_mutual_information,
    purity,
)
from repro.graphs import Partition


def _p(labels):
    return Partition.from_labels(labels)


class TestARI:
    def test_perfect_agreement(self):
        p = _p([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(p, p) == pytest.approx(1.0)

    def test_agreement_under_relabelling(self):
        a = _p([0, 0, 1, 1])
        b = _p([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = _p(rng.integers(0, 4, size=2000))
        b = _p(rng.integers(0, 4, size=2000))
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_single_cluster_vs_split(self):
        ari = adjusted_rand_index(_p([0, 0, 0, 0]), _p([0, 0, 1, 1]))
        assert ari <= 0.0 + 1e-9

    def test_known_value(self):
        # Example with hand-computable contingency.
        truth = _p([0, 0, 0, 1, 1, 1])
        predicted = _p([0, 0, 1, 1, 1, 1])
        ari = adjusted_rand_index(predicted, truth)
        assert 0.0 < ari < 1.0


class TestNMI:
    def test_perfect_agreement(self):
        p = _p([0, 1, 0, 1, 2])
        assert normalized_mutual_information(p, p) == pytest.approx(1.0)

    def test_bounds(self):
        rng = np.random.default_rng(1)
        a = _p(rng.integers(0, 3, size=200))
        b = _p(rng.integers(0, 5, size=200))
        nmi = normalized_mutual_information(a, b)
        assert 0.0 <= nmi <= 1.0

    def test_trivial_vs_structured(self):
        truth = _p([0, 0, 1, 1])
        assert normalized_mutual_information(Partition.trivial(4), truth) == pytest.approx(0.0)

    def test_symmetry(self):
        a = _p([0, 0, 1, 1, 2, 2])
        b = _p([0, 1, 1, 2, 2, 2])
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )


class TestPurity:
    def test_perfect(self):
        p = _p([0, 0, 1, 1])
        assert purity(p, p) == 1.0

    def test_half(self):
        predicted = Partition.trivial(4)
        truth = _p([0, 0, 1, 1])
        assert purity(predicted, truth) == 0.5

    def test_singletons_always_pure(self):
        truth = _p([0, 0, 1, 1])
        assert purity(Partition.singletons(4), truth) == 1.0


class TestClusteringReport:
    def test_keys_and_consistency(self):
        predicted = _p([0, 0, 1, 1, 1, 2])
        truth = _p([0, 0, 1, 1, 2, 2])
        report = clustering_report(predicted, truth)
        assert set(report) == {"misclassified", "error", "ari", "nmi", "purity", "clusters_found"}
        assert report["error"] == pytest.approx(report["misclassified"] / 6)
        assert report["clusters_found"] == 3
